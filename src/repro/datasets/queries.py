"""Query workload generation (paper Section 7.1).

The paper builds 5 query sets per dataset (1–5 keywords, 50 queries each): for every
query a query area of a target size is picked "following the network distribution"
(i.e. centred on a random node, so dense areas are queried more often), and the
keywords are drawn from the terms that occur inside that area, proportionally to their
in-area frequency. :class:`QueryWorkloadGenerator` reproduces that procedure and lets
the benchmarks vary the three query arguments (|ψ|, ∆, Λ) exactly like Figures 15/16.

Determinism policy: as in :mod:`repro.datasets.synthetic`, no module-level RNG state
is used — every draw flows through one :class:`random.Random` seeded from
:attr:`WorkloadSpec.seed` (or injected explicitly), so a workload is a pure function
of ``(dataset, spec)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.query import LCMSRQuery
from repro.datasets.synthetic import SyntheticDataset
from repro.exceptions import DatasetError
from repro.network.subgraph import Rectangle


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one query set.

    Attributes:
        num_queries: Number of queries in the set (the paper uses 50).
        num_keywords: Keywords per query (the paper sweeps 1–5, default 3).
        delta: Length constraint ``Q.∆`` in meters.
        area: Area of the query region ``Q.Λ`` in square meters.
        seed: Seed making the workload reproducible.
    """

    num_queries: int = 50
    num_keywords: int = 3
    delta: float = 10_000.0
    area: float = 100.0 * 1e6
    seed: int = 7


class QueryWorkloadGenerator:
    """Generates LCMSR query workloads over a :class:`SyntheticDataset`."""

    def __init__(self, dataset: SyntheticDataset) -> None:
        self._dataset = dataset
        self._nodes = list(dataset.network.nodes())
        if not self._nodes:
            raise DatasetError("cannot generate queries over an empty network")

    def generate(
        self, spec: WorkloadSpec, rng: Optional[random.Random] = None
    ) -> List[LCMSRQuery]:
        """Generate one query set according to ``spec``.

        Query areas whose objects expose fewer distinct keywords than requested are
        re-drawn (up to a bounded number of attempts), mirroring the paper's implicit
        requirement that each query's keywords actually occur inside its area.

        Args:
            spec: The workload parameters.
            rng: Optional explicit generator; overrides ``spec.seed`` when given
                (all randomness flows through it — no module-level RNG state).
        """
        rng = rng if rng is not None else random.Random(spec.seed)
        queries: List[LCMSRQuery] = []
        attempts = 0
        max_attempts = 50 * spec.num_queries
        while len(queries) < spec.num_queries and attempts < max_attempts:
            attempts += 1
            region = self._sample_region(rng, spec.area)
            keywords = self._sample_keywords(rng, region, spec.num_keywords)
            if keywords is None:
                continue
            queries.append(
                LCMSRQuery.create(keywords, delta=spec.delta, region=region)
            )
        if len(queries) < spec.num_queries:
            raise DatasetError(
                f"could only generate {len(queries)} of {spec.num_queries} queries; "
                "the dataset may be too small for the requested query area"
            )
        return queries

    # ------------------------------------------------------------------ helpers
    def _sample_region(self, rng: random.Random, area: float) -> Rectangle:
        """Pick a square query area centred on a random node (network distribution)."""
        centre = rng.choice(self._nodes)
        candidate = Rectangle.square_of_area(centre.x, centre.y, area)
        # Clamp to the dataset extent so windows at the border do not fall off the map
        # (the clamped window keeps its area by shifting inward when possible).
        extent = self._dataset.extent
        side = candidate.width
        min_x = min(max(candidate.min_x, extent.min_x), max(extent.max_x - side, extent.min_x))
        min_y = min(max(candidate.min_y, extent.min_y), max(extent.max_y - side, extent.min_y))
        return Rectangle(min_x, min_y, min_x + side, min_y + side)

    def _sample_keywords(
        self, rng: random.Random, region: Rectangle, count: int
    ) -> Optional[List[str]]:
        """Draw ``count`` distinct keywords by in-area frequency, or ``None`` if scarce."""
        frequencies = self._dataset.corpus.terms_in_rectangle(region)
        if len(frequencies) < count:
            return None
        terms = list(frequencies.keys())
        weights = [frequencies[t] for t in terms]
        chosen: List[str] = []
        available = list(zip(terms, weights))
        for _ in range(count):
            total = sum(weight for _, weight in available)
            if total <= 0:
                return None
            pick = rng.uniform(0, total)
            running = 0.0
            for index, (term, weight) in enumerate(available):
                running += weight
                if running >= pick:
                    chosen.append(term)
                    del available[index]
                    break
        return chosen if len(chosen) == count else None


def generate_workload(
    dataset: SyntheticDataset,
    num_queries: int = 50,
    num_keywords: int = 3,
    delta: float = 10_000.0,
    area_km2: float = 100.0,
    seed: int = 7,
) -> List[LCMSRQuery]:
    """Convenience wrapper around :class:`QueryWorkloadGenerator`.

    Args:
        area_km2: Query-area size in km² (the unit the paper reports); converted to m².
    """
    generator = QueryWorkloadGenerator(dataset)
    spec = WorkloadSpec(
        num_queries=num_queries,
        num_keywords=num_keywords,
        delta=delta,
        area=area_km2 * 1e6,
        seed=seed,
    )
    return generator.generate(spec)
