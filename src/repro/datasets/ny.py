"""The New-York-like dataset (stand-in for the paper's NY workload).

The paper's NY dataset is the DIMACS New York City road network (264,346 nodes,
733,846 arcs) with 0.5 M Google Places objects mapped to their nearest nodes. This
builder generates a scaled-down Manhattan-style street grid with Places-like objects
whose co-location and keyword-skew properties match the original's (DESIGN.md §3). The
default size (≈ 2,500 nodes, ≈ 7,000 objects) keeps a full benchmark run in CPython in
the minutes range; pass larger ``rows``/``cols``/``num_objects`` to stress-test.

To run on the real data instead, load it with :func:`repro.network.io.load_dimacs` and
build the corpus from your own crawl, then call
:func:`repro.datasets.synthetic.assemble_dataset`.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.datasets.synthetic import (
    SyntheticDataset,
    assemble_dataset,
    generate_objects_on_network,
    iter_objects_on_network,
)
from repro.datasets.vocab import PLACES_VOCABULARY, Vocabulary
from repro.network.builders import manhattan_network
from repro.network.graph import RoadNetwork
from repro.objects.geoobject import GeoTextualObject


def build_ny_like(
    rows: int = 50,
    cols: int = 50,
    block_size: float = 120.0,
    num_objects: int = 7000,
    num_clusters: int = 30,
    seed: int = 42,
    vocabulary: Vocabulary = PLACES_VOCABULARY,
) -> SyntheticDataset:
    """Build the NY-like dataset.

    Args:
        rows / cols: Street-grid dimensions (default 50 × 50 ≈ 2,500 junctions).
        block_size: Block edge length in meters (the extent is ≈ 6 km × 6 km by
            default — dense-downtown scale, which matches the per-query window sizes
            used in the benchmarks once scaled; see EXPERIMENTS.md).
        num_objects: Number of geo-textual objects.
        num_clusters: Number of PoI hot spots (restaurant rows, shopping streets, ...).
        seed: Seed controlling the whole dataset deterministically.
        vocabulary: Keyword universe; defaults to the Places-like vocabulary.

    Returns:
        A ready-to-query :class:`~repro.datasets.synthetic.SyntheticDataset` named
        ``"NY-like"``.
    """
    network = manhattan_network(
        rows=rows,
        cols=cols,
        spacing=block_size,
        diagonal_fraction=0.04,
        removal_fraction=0.02,
        seed=seed,
    )
    corpus = generate_objects_on_network(
        network,
        num_objects=num_objects,
        vocabulary=vocabulary,
        cluster_fraction=0.65,
        num_clusters=num_clusters,
        cluster_radius=3.0 * block_size,
        jitter=block_size / 4.0,
        seed=seed + 1,
    )
    return assemble_dataset("NY-like", network, corpus, vocabulary)


def ny_like_parts(
    rows: int = 50,
    cols: int = 50,
    block_size: float = 120.0,
    num_objects: int = 7000,
    num_clusters: int = 30,
    seed: int = 42,
    vocabulary: Vocabulary = PLACES_VOCABULARY,
) -> Tuple[RoadNetwork, Iterator[GeoTextualObject]]:
    """Return the NY-like dataset's raw parts for a streaming build.

    Same parameters, seeds and object stream as :func:`build_ny_like`, but the
    objects come back as a lazy iterator instead of an assembled dataset —
    feed both parts to :meth:`IndexBundle.build_streaming
    <repro.service.bundle.IndexBundle.build_streaming>` to index million-object
    configurations in bounded memory (the path behind ``python -m repro build
    --dataset ny --stream``). The resulting scoring columns are bit-identical
    to the eager build's.
    """
    network = manhattan_network(
        rows=rows,
        cols=cols,
        spacing=block_size,
        diagonal_fraction=0.04,
        removal_fraction=0.02,
        seed=seed,
    )
    objects = iter_objects_on_network(
        network,
        num_objects=num_objects,
        vocabulary=vocabulary,
        cluster_fraction=0.65,
        num_clusters=num_clusters,
        cluster_radius=3.0 * block_size,
        jitter=block_size / 4.0,
        seed=seed + 1,
    )
    return network, objects
