"""Keyword vocabularies with Zipfian frequency profiles.

The paper's NY objects carry Google Places names and category labels (55,230 distinct
keywords over 0.5 M objects) and the USANW objects carry Flickr tags (107,956 distinct
keywords, noisy). Term frequencies in both kinds of corpora are heavily skewed, which
matters to the experiments: the number of query keywords controls how many nodes are
relevant. The :class:`Vocabulary` class models a term universe with a Zipf rank-
frequency law plus a small head of named categories ("restaurant", "cafe", ...) so the
paper's example queries are expressible verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import DatasetError

PLACES_CATEGORY_TERMS: Tuple[str, ...] = (
    "restaurant", "cafe", "coffee", "bar", "pizza", "bakery", "sushi", "deli",
    "burger", "noodle", "italian", "mexican", "chinese", "thai", "indian",
    "pharmacy", "grocery", "supermarket", "bank", "atm", "hotel", "hostel",
    "museum", "gallery", "theater", "cinema", "park", "gym", "spa", "salon",
    "bookstore", "library", "school", "clinic", "hospital", "dentist",
    "clothing", "shoes", "jeans", "electronics", "hardware", "florist",
    "butcher", "seafood", "vegan", "dessert", "icecream", "wine", "pub", "club",
)
"""Head terms for the Google-Places-like vocabulary (the paper's example queries use
terms such as "restaurant", "cafe", "coffee", "shoes" and "jeans")."""

FLICKR_TAG_TERMS: Tuple[str, ...] = (
    "sunset", "beach", "mountain", "lake", "forest", "bridge", "skyline", "nature",
    "hiking", "camping", "waterfall", "river", "island", "lighthouse", "harbor",
    "festival", "concert", "streetart", "graffiti", "architecture", "downtown",
    "nightlife", "food", "coffee", "brunch", "market", "vintage", "rain", "snow",
    "autumn", "spring", "wildlife", "birds", "flowers", "garden", "trail", "ferry",
    "train", "airport", "stadium", "campus", "roadtrip", "landscape", "panorama",
)
"""Head terms for the Flickr-like tag vocabulary used by the USANW stand-in."""


@dataclass
class Vocabulary:
    """A term universe with a Zipfian frequency profile.

    Attributes:
        head_terms: Named high-frequency terms placed at the top Zipf ranks (so the
            paper's example keywords exist and are frequent).
        num_tail_terms: Number of synthetic tail terms (``term0001`` ...) appended
            after the head.
        zipf_exponent: Zipf rank exponent ``s`` (frequency ∝ 1/rank^s).
    """

    head_terms: Sequence[str]
    num_tail_terms: int = 2000
    zipf_exponent: float = 1.05
    _terms: List[str] = field(init=False, repr=False)
    _cumulative: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_tail_terms < 0:
            raise DatasetError("num_tail_terms must be non-negative")
        tail = [f"term{i:05d}" for i in range(self.num_tail_terms)]
        self._terms = list(dict.fromkeys(self.head_terms)) + tail
        if not self._terms:
            raise DatasetError("a vocabulary needs at least one term")
        weights = [1.0 / (rank ** self.zipf_exponent) for rank in range(1, len(self._terms) + 1)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        self._cumulative = cumulative

    # ------------------------------------------------------------------ access
    @property
    def size(self) -> int:
        """Number of distinct terms."""
        return len(self._terms)

    @property
    def terms(self) -> List[str]:
        """All terms, most frequent first."""
        return list(self._terms)

    def rank_of(self, term: str) -> int:
        """Return the Zipf rank (0-based) of ``term``; raises if unknown."""
        try:
            return self._terms.index(term)
        except ValueError:
            raise DatasetError(f"unknown term {term!r}") from None

    # ------------------------------------------------------------------ sampling
    def sample_term(self, rng: random.Random) -> str:
        """Draw one term according to the Zipf distribution."""
        u = rng.random()
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < u:
                low = mid + 1
            else:
                high = mid
        return self._terms[low]

    def sample_description(
        self, rng: random.Random, min_terms: int = 2, max_terms: int = 6
    ) -> List[str]:
        """Draw a short description: a few Zipf-sampled terms (repeats possible)."""
        if min_terms < 1 or max_terms < min_terms:
            raise DatasetError("invalid description length bounds")
        count = rng.randint(min_terms, max_terms)
        return [self.sample_term(rng) for _ in range(count)]


PLACES_VOCABULARY = Vocabulary(head_terms=PLACES_CATEGORY_TERMS, num_tail_terms=3000)
"""Default Google-Places-like vocabulary (NY stand-in)."""

FLICKR_VOCABULARY = Vocabulary(head_terms=FLICKR_TAG_TERMS, num_tail_terms=6000, zipf_exponent=0.95)
"""Default Flickr-tag-like vocabulary (USANW stand-in): longer, noisier tail."""
