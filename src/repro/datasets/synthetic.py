"""Synthetic geo-textual datasets over synthetic road networks.

:class:`SyntheticDataset` bundles everything one experiment needs: the road network,
the object corpus, the object → node mapping, the grid index and the relevance scorer.
The object generator places PoIs on (or jittered around) road-network nodes with a
configurable degree of *co-location*: a fraction of objects is placed inside a small
number of hot-spot clusters whose members share category terms, reproducing the
"cities have regions with high concentrations of bars, restaurants, shops" phenomenon
the LCMSR query is designed to exploit.

Determinism policy: no function in this module touches module-level RNG state (the
global :mod:`random` generator or :data:`numpy.random`) — every random draw flows
through one explicit :class:`random.Random` instance derived from the caller's
``seed`` (or injected directly via ``rng``), or through a
:class:`numpy.random.Generator` seeded deterministically *from* that instance
(the chunked background-placement draws). Two builds with the same seed
therefore produce identical corpora, and — because the persistence layer is
deterministic too — byte-identical on-disk artifacts (regression-tested in
``tests/service/test_persist.py``).

Scale policy: :func:`iter_objects_on_network` is a generator — it yields
objects one at a time and holds nothing corpus-sized, so
:meth:`IndexBundle.build_streaming
<repro.service.bundle.IndexBundle.build_streaming>` can index millions of
objects without this module ever materialising the corpus. Background
placements are drawn in vectorised numpy chunks (node index, jitter and rating
arrays per chunk) rather than three Python-level RNG calls per object, which
keeps generation from dominating a 1M-object build.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.index.grid import GridIndex
from repro.network.graph import RoadNetwork
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import NodeObjectMap, map_objects_to_network
from repro.textindex.relevance import RelevanceScorer, ScoringMode
from repro.textindex.vector_space import VectorSpaceModel
from repro.datasets.vocab import Vocabulary, PLACES_VOCABULARY


@dataclass
class SyntheticDataset:
    """A ready-to-query dataset: network + objects + index + scorer.

    Attributes:
        name: Human-readable dataset name ("NY-like", "USANW-like", ...).
        network: The road network.
        corpus: The geo-textual objects.
        mapping: Object → nearest-node assignment.
        grid: The grid + inverted-list index over the corpus.
        scorer: A direct relevance scorer over the same corpus (index-free scoring
            path, used for cross-checks).
        vocabulary: The vocabulary objects were generated from.
    """

    name: str
    network: RoadNetwork
    corpus: ObjectCorpus
    mapping: NodeObjectMap
    grid: GridIndex
    scorer: RelevanceScorer
    vocabulary: Vocabulary

    @property
    def extent(self) -> Rectangle:
        """The spatial extent of the road network."""
        min_x, min_y, max_x, max_y = self.network.bounding_box()
        return Rectangle(min_x, min_y, max_x, max_y)

    def describe(self) -> Dict[str, float]:
        """Return headline statistics (used by EXPERIMENTS.md and reports)."""
        return {
            "nodes": float(self.network.num_nodes),
            "edges": float(self.network.num_edges),
            "objects": float(len(self.corpus)),
            "distinct_keywords": float(self.corpus.vocabulary_size()),
        }


def generate_objects_on_network(
    network: RoadNetwork,
    num_objects: int,
    vocabulary: Vocabulary = PLACES_VOCABULARY,
    cluster_fraction: float = 0.6,
    num_clusters: int = 20,
    cluster_radius: float = 400.0,
    hub_fraction: float = 0.08,
    num_hubs: int = 25,
    jitter: float = 25.0,
    seed: int = 17,
    rng: Optional[random.Random] = None,
) -> ObjectCorpus:
    """Generate geo-textual objects along a road network, fully materialised.

    A thin wrapper around :func:`iter_objects_on_network` (same parameters,
    same objects in the same order) that collects the stream into an
    :class:`ObjectCorpus`. Callers indexing at the million-object scale should
    consume the iterator directly through :meth:`IndexBundle.build_streaming
    <repro.service.bundle.IndexBundle.build_streaming>` instead.
    """
    corpus = ObjectCorpus()
    corpus.add_all(
        iter_objects_on_network(
            network,
            num_objects,
            vocabulary=vocabulary,
            cluster_fraction=cluster_fraction,
            num_clusters=num_clusters,
            cluster_radius=cluster_radius,
            hub_fraction=hub_fraction,
            num_hubs=num_hubs,
            jitter=jitter,
            seed=seed,
            rng=rng,
        )
    )
    return corpus


def iter_objects_on_network(
    network: RoadNetwork,
    num_objects: int,
    vocabulary: Vocabulary = PLACES_VOCABULARY,
    cluster_fraction: float = 0.6,
    num_clusters: int = 20,
    cluster_radius: float = 400.0,
    hub_fraction: float = 0.08,
    num_hubs: int = 25,
    jitter: float = 25.0,
    seed: int = 17,
    rng: Optional[random.Random] = None,
) -> Iterator[GeoTextualObject]:
    """Yield geo-textual objects along a road network, one at a time.

    Three kinds of objects are generated:

    * **hot-spot objects** (``cluster_fraction`` of the total): placed in
      ``num_clusters`` spatially extended hot spots whose members share two signature
      category terms — the co-located, topically coherent street regions the LCMSR
      query looks for;
    * **hub objects** (``hub_fraction``): small, very dense pockets (food courts,
      malls) of category-sharing objects concentrated on essentially a single node,
      isolated from the extended hot spots. Hubs create individual nodes with large
      weight but poor surroundings — the situation in which a greedy expansion from
      the heaviest node wastes its budget while APP/TGEN find a better street region;
    * **background objects** (the rest): spread uniformly over the network's nodes
      with fully Zipfian descriptions.

    Args:
        network: The road network to attach objects to.
        num_objects: Total number of objects.
        vocabulary: Term universe for descriptions.
        cluster_fraction: Fraction of objects placed in extended hot spots.
        num_clusters: Number of extended hot spots.
        cluster_radius: Euclidean radius of a hot spot, in meters.
        hub_fraction: Fraction of objects placed in isolated single-node hubs.
        num_hubs: Number of isolated hubs.
        jitter: Coordinate jitter applied to every object, in meters.
        seed: Random seed (the whole dataset is deterministic given the seed).
        rng: Optional explicit generator; overrides ``seed`` when given. Every
            random draw of the generation flows through this single generator
            or through a numpy generator seeded from it — there is no hidden
            module-level RNG state.

    Returns:
        An iterator of :class:`~repro.objects.geoobject.GeoTextualObject`
        (hot-spot objects first, then hub objects, then background objects;
        ids ascend from 0 in yield order). Validation errors raise eagerly at
        call time, before the first object is requested.
    """
    if num_objects < 1:
        raise DatasetError("num_objects must be positive")
    if not 0.0 <= cluster_fraction <= 1.0:
        raise DatasetError("cluster_fraction must be in [0, 1]")
    if not 0.0 <= hub_fraction <= 1.0 or cluster_fraction + hub_fraction > 1.0:
        raise DatasetError("cluster_fraction + hub_fraction must stay within [0, 1]")
    rng = rng if rng is not None else random.Random(seed)
    nodes = list(network.nodes())
    if not nodes:
        raise DatasetError("cannot place objects on an empty network")

    # Pick hot-spot street walks and their signature terms from the vocabulary head.
    # PoIs in cities line up along streets, so each extended hot spot is a random walk
    # over the road network rather than a disk: this produces the irregular, elongated
    # relevant regions (the paper's "L-shaped" example) that fixed shapes cannot cover
    # and that make naive greedy expansion take wrong turns.
    head = [t for t in vocabulary.terms[: max(10, num_clusters * 2)]]
    mean_edge = (network.total_length() / network.num_edges) if network.num_edges else 1.0
    walk_length = max(4, int(round(2.0 * cluster_radius / mean_edge)))
    hotspots: List[Tuple[List[Tuple[float, float]], Tuple[str, str]]] = []
    for index in range(num_clusters):
        centre = rng.choice(nodes)
        walk = _street_walk(network, centre.node_id, walk_length, rng)
        term_a = head[(2 * index) % len(head)]
        term_b = head[(2 * index + 1) % len(head)]
        hotspots.append((walk, (term_a, term_b)))
    hubs: List[Tuple[float, float, Tuple[str, str]]] = []
    for index in range(max(0, num_hubs)):
        centre = rng.choice(nodes)
        term_a = head[(2 * index + 1) % len(head)]
        term_b = head[(2 * index) % len(head)]
        hubs.append((centre.x, centre.y, (term_a, term_b)))

    num_clustered = int(round(cluster_fraction * num_objects))
    num_hub_objects = int(round(hub_fraction * num_objects)) if hubs else 0
    num_background = num_objects - num_clustered - num_hub_objects
    # Background *placements* (node pick, jitter, rating) are drawn in chunks
    # from a numpy generator seeded off the dataset rng: three vectorised draws
    # per ~8k objects instead of four Python-level RNG calls per object, which
    # is what keeps 1M-object generation from dominating the build. Seeding
    # happens here — before any object is emitted — so the derived stream is a
    # pure function of the caller's seed regardless of consumption pattern.
    placement_rng = np.random.default_rng(rng.getrandbits(64))
    node_xs = np.fromiter((n.x for n in nodes), dtype=np.float64, count=len(nodes))
    node_ys = np.fromiter((n.y for n in nodes), dtype=np.float64, count=len(nodes))

    def emit() -> Iterator[GeoTextualObject]:
        object_id = 0
        for _ in range(num_clustered):
            walk, signature = hotspots[rng.randrange(len(hotspots))]
            cx, cy = walk[rng.randrange(len(walk))]
            x = cx + rng.uniform(-jitter * 2, jitter * 2)
            y = cy + rng.uniform(-jitter * 2, jitter * 2)
            terms = list(signature)
            if rng.random() < 0.7:
                terms.append(rng.choice(signature))
            terms.extend(vocabulary.sample_description(rng, 1, 3))
            yield GeoTextualObject.create(
                object_id, x, y, terms, rating=1.0 + rng.random() * 4.0
            )
            object_id += 1
        for _ in range(num_hub_objects):
            hx, hy, signature = hubs[rng.randrange(len(hubs))]
            terms = list(signature)
            terms.append(rng.choice(signature))
            terms.extend(vocabulary.sample_description(rng, 1, 2))
            yield GeoTextualObject.create(
                object_id,
                hx + rng.uniform(-jitter, jitter),
                hy + rng.uniform(-jitter, jitter),
                terms,
                rating=1.0 + rng.random() * 4.0,
            )
            object_id += 1
        chunk_size = 8192
        remaining = num_background
        while remaining > 0:
            count = min(chunk_size, remaining)
            picks = placement_rng.integers(0, len(nodes), size=count)
            xs = node_xs[picks] + placement_rng.uniform(-jitter, jitter, size=count)
            ys = node_ys[picks] + placement_rng.uniform(-jitter, jitter, size=count)
            ratings = 1.0 + placement_rng.random(count) * 4.0
            for i in range(count):
                terms = vocabulary.sample_description(rng, 2, 5)
                yield GeoTextualObject.create(
                    object_id,
                    float(xs[i]),
                    float(ys[i]),
                    terms,
                    rating=float(ratings[i]),
                )
                object_id += 1
            remaining -= count

    return emit()


def _street_walk(
    network: RoadNetwork, start: int, length: int, rng: random.Random
) -> List[Tuple[float, float]]:
    """Return the coordinates of a non-backtracking random walk along the network."""
    current = start
    previous: Optional[int] = None
    coordinates: List[Tuple[float, float]] = [network.node(current).coords()]
    for _ in range(length):
        neighbors = [n for n in network.neighbors(current) if n != previous]
        if not neighbors:
            neighbors = list(network.neighbors(current))
            if not neighbors:
                break
        previous, current = current, rng.choice(neighbors)
        coordinates.append(network.node(current).coords())
    return coordinates


def assemble_dataset(
    name: str,
    network: RoadNetwork,
    corpus: ObjectCorpus,
    vocabulary: Vocabulary,
    grid_resolution: int = 48,
) -> SyntheticDataset:
    """Wire a network and corpus into a ready-to-query :class:`SyntheticDataset`."""
    mapping = map_objects_to_network(network, corpus)
    vsm = VectorSpaceModel(corpus)
    grid = GridIndex(corpus, resolution=grid_resolution, vsm=vsm)
    # The scorer shares the grid's VSM: one model in memory, and one model in a
    # persisted artifact (IndexBundle.from_dataset wraps these structures as-is).
    scorer = RelevanceScorer(corpus, mapping, mode=ScoringMode.TEXT_RELEVANCE, vsm=vsm)
    return SyntheticDataset(
        name=name,
        network=network,
        corpus=corpus,
        mapping=mapping,
        grid=grid,
        scorer=scorer,
        vocabulary=vocabulary,
    )
