"""The USANW-like dataset (stand-in for the paper's north-west USA workload).

The paper's second dataset is the DIMACS north-west USA road network (1,207,945 nodes,
2,840,208 arcs) with one synthetic object per node whose description is a set of
Flickr photo tags. Relative to NY, the USANW network is much sparser (long rural
segments, small towns), and the keyword distribution is noisier with a far larger
vocabulary. The builder reproduces those contrasts at laptop scale: a random geometric
network with town clusters, one object per node region following the network density,
and the Flickr-like vocabulary (DESIGN.md §3).
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from repro.datasets.synthetic import (
    SyntheticDataset,
    assemble_dataset,
    generate_objects_on_network,
    iter_objects_on_network,
)
from repro.datasets.vocab import FLICKR_VOCABULARY, Vocabulary
from repro.network.builders import random_geometric_network
from repro.network.graph import RoadNetwork
from repro.objects.geoobject import GeoTextualObject


def build_usanw_like(
    num_nodes: int = 3000,
    extent: float = 20000.0,
    num_objects: int = 3000,
    num_clusters: int = 25,
    seed: int = 97,
    vocabulary: Vocabulary = FLICKR_VOCABULARY,
) -> SyntheticDataset:
    """Build the USANW-like dataset.

    Args:
        num_nodes: Number of road-network nodes (default 3,000; the real network has
            1.2 M — the scale-down is documented in DESIGN.md §3).
        extent: Side length of the covered square area in meters (default 20 km).
        num_objects: Number of geo-textual objects; the paper uses one object per
            node, generated following the network distribution, and so do we by
            default.
        num_clusters: Number of photo hot spots (viewpoints, town centres, ...).
        seed: Seed controlling the whole dataset deterministically.
        vocabulary: Keyword universe; defaults to the Flickr-like vocabulary.

    Returns:
        A ready-to-query :class:`~repro.datasets.synthetic.SyntheticDataset` named
        ``"USANW-like"``.
    """
    network = random_geometric_network(
        num_nodes=num_nodes,
        extent=extent,
        target_degree=2.8,
        seed=seed,
    )
    corpus = generate_objects_on_network(
        network,
        num_objects=num_objects,
        vocabulary=vocabulary,
        cluster_fraction=0.45,
        num_clusters=num_clusters,
        cluster_radius=extent / 40.0,
        jitter=extent / 400.0,
        seed=seed + 1,
    )
    return assemble_dataset("USANW-like", network, corpus, vocabulary)


def usanw_like_parts(
    num_nodes: int = 3000,
    extent: float = 20000.0,
    num_objects: int = 3000,
    num_clusters: int = 25,
    seed: int = 97,
    vocabulary: Vocabulary = FLICKR_VOCABULARY,
) -> Tuple[RoadNetwork, Iterator[GeoTextualObject]]:
    """Return the USANW-like dataset's raw parts for a streaming build.

    Same parameters, seeds and object stream as :func:`build_usanw_like`, with
    the objects as a lazy iterator — see
    :func:`repro.datasets.ny.ny_like_parts` for the streaming-build contract.
    """
    network = random_geometric_network(
        num_nodes=num_nodes,
        extent=extent,
        target_degree=2.8,
        seed=seed,
    )
    objects = iter_objects_on_network(
        network,
        num_objects=num_objects,
        vocabulary=vocabulary,
        cluster_fraction=0.45,
        num_clusters=num_clusters,
        cluster_radius=extent / 40.0,
        jitter=extent / 400.0,
        seed=seed + 1,
    )
    return network, objects
