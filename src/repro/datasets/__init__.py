"""Datasets: synthetic stand-ins for the paper's NY and USANW workloads.

The paper evaluates on (a) the New York City road network with 0.5 M Google Places
objects and (b) a north-west USA road network with Flickr-tag objects. Neither dataset
ships with this reproduction, so this subpackage generates synthetic equivalents that
preserve the properties the algorithms are sensitive to — street-aligned, co-located
PoIs; Zipfian keyword frequencies; grid-like dense cores vs. sparse fringes — at a
scale a laptop reproduces in seconds. Real data can still be plugged in through
:mod:`repro.network.io` and :class:`repro.objects.corpus.ObjectCorpus`.

See DESIGN.md §3 for the substitution rationale and
:mod:`repro.datasets.queries` for the paper's query-workload generator (Section 7.1).
"""

from repro.datasets.vocab import Vocabulary, PLACES_VOCABULARY, FLICKR_VOCABULARY
from repro.datasets.synthetic import SyntheticDataset, generate_objects_on_network
from repro.datasets.ny import build_ny_like
from repro.datasets.usanw import build_usanw_like
from repro.datasets.queries import QueryWorkloadGenerator, generate_workload

__all__ = [
    "Vocabulary",
    "PLACES_VOCABULARY",
    "FLICKR_VOCABULARY",
    "SyntheticDataset",
    "generate_objects_on_network",
    "build_ny_like",
    "build_usanw_like",
    "QueryWorkloadGenerator",
    "generate_workload",
]
