"""Greedy region expansion (paper Section 6.1).

The greedy algorithm seeds the explored region with the heaviest node inside ``Q.Λ``
and repeatedly attaches the neighbouring node with the best combined rank

    ρ(v) = µ · (1 − τ(v, attach)/τmax) + (1 − µ) · σ_v / σmax,

where ``τ(v, attach)`` is the length of the shortest edge connecting the candidate to
the explored region, ``τmax`` is the longest edge in ``Q.Λ`` and ``σmax`` the largest
node weight in ``Q.Λ``. Expansion stops when no neighbouring node can be added without
exceeding the length constraint. The parameter µ trades off proximity against weight;
the pure-weight (µ = 0) and pure-length (µ = 1) variants the paper discusses are the
endpoints of the same knob.

Note on the paper's formula: the paper's text prints the weight term as
``σ_{vj}/σmax`` (the weight of the already-included anchor node); ranking candidates
by the anchor's weight cannot differentiate them, so — consistent with the algorithm's
stated intent ("the node weight ... of the selecting node") — we use the candidate's
weight ``σ_{vi}``. This interpretation is recorded here and in DESIGN.md.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.instance import ProblemInstance
from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.exceptions import SolverError
from repro.network.graph import edge_key


class GreedySolver:
    """The paper's Greedy algorithm.

    Args:
        mu: The balance parameter µ ∈ [0, 1]; the paper settles on 0.2 for NY and 0.4
            for USANW.
    """

    name = "Greedy"

    def __init__(self, mu: float = 0.2) -> None:
        if not 0.0 <= mu <= 1.0:
            raise SolverError(f"mu must be in [0, 1], got {mu}")
        self.mu = mu

    # ------------------------------------------------------------------ public API
    def solve(self, instance: ProblemInstance) -> RegionResult:
        """Answer an LCMSR query by greedy region expansion.

        Args:
            instance: The windowed, weighted problem instance to solve.

        Returns:
            The grown region (no approximation guarantee); an empty result when no
            node in the window is relevant.
        """
        start = time.perf_counter()
        region = self._grow(instance, excluded=set())
        runtime = time.perf_counter() - start
        stats = {"nodes_expanded": float(region.num_nodes)} if region else {}
        return RegionResult(region or Region.empty(), self.name, runtime, stats=stats)

    def solve_topk(self, instance: ProblemInstance, k: Optional[int] = None) -> TopKResult:
        """Top-k variant (Section 6.2): regrow repeatedly, excluding earlier regions.

        Args:
            instance: The windowed, weighted problem instance to solve.
            k: Number of distinct regions to return; ``instance.query.k`` when
                omitted.

        Returns:
            Up to ``k`` node-disjoint regions in the order they were grown.
        """
        start = time.perf_counter()
        k = k or instance.query.k
        excluded: Set[int] = set()
        results: List[RegionResult] = []
        for _ in range(k):
            region = self._grow(instance, excluded=excluded)
            if region is None or region.is_empty:
                break
            results.append(RegionResult(region, self.name))
            excluded |= set(region.nodes)
        runtime = time.perf_counter() - start
        results = [
            RegionResult(r.region, self.name, runtime, stats=r.stats) for r in results
        ]
        return TopKResult(results, self.name, runtime)

    # ------------------------------------------------------------------ expansion
    def _grow(self, instance: ProblemInstance, excluded: Set[int]) -> Optional[Region]:
        graph = instance.graph
        weights = instance.weights
        delta = instance.query.delta
        seeds = [
            (weight, node_id)
            for node_id, weight in weights.items()
            if node_id not in excluded and node_id in graph
        ]
        if not seeds:
            return None
        sigma_max = max(weight for weight, _ in seeds)
        if sigma_max <= 0:
            return None
        tau_max = graph.max_edge_length() or 1.0
        _, seed = max(seeds)

        region_nodes: Set[int] = {seed}
        region_edges: Set[Tuple[int, int]] = set()
        total_length = 0.0

        while True:
            best_candidate: Optional[Tuple[float, int, int, float]] = None
            for member in region_nodes:
                for neighbor, edge_length in graph.neighbor_items(member):
                    if neighbor in region_nodes or neighbor in excluded:
                        continue
                    if total_length + edge_length > delta + 1e-12:
                        continue
                    weight = weights.get(neighbor, 0.0)
                    rank = (
                        self.mu * (1.0 - edge_length / tau_max)
                        + (1.0 - self.mu) * weight / sigma_max
                    )
                    candidate = (rank, neighbor, member, edge_length)
                    if best_candidate is None or candidate[0] > best_candidate[0] or (
                        abs(candidate[0] - best_candidate[0]) <= 1e-12
                        and candidate[1] < best_candidate[1]
                    ):
                        best_candidate = candidate
            if best_candidate is None:
                break
            _, neighbor, member, edge_length = best_candidate
            region_nodes.add(neighbor)
            region_edges.add(edge_key(member, neighbor))
            total_length += edge_length

        weight_total = sum(weights.get(node_id, 0.0) for node_id in region_nodes)
        return Region(
            nodes=frozenset(region_nodes),
            edges=frozenset(region_edges),
            length=total_length,
            weight=weight_total,
        )
