"""Greedy region expansion (paper Section 6.1).

The greedy algorithm seeds the explored region with the heaviest node inside ``Q.Λ``
and repeatedly attaches the neighbouring node with the best combined rank

    ρ(v) = µ · (1 − τ(v, attach)/τmax) + (1 − µ) · σ_v / σmax,

where ``τ(v, attach)`` is the length of the shortest edge connecting the candidate to
the explored region, ``τmax`` is the longest edge in ``Q.Λ`` and ``σmax`` the largest
node weight in ``Q.Λ``. Expansion stops when no neighbouring node can be added without
exceeding the length constraint. The parameter µ trades off proximity against weight;
the pure-weight (µ = 0) and pure-length (µ = 1) variants the paper discusses are the
endpoints of the same knob.

Note on the paper's formula: the paper's text prints the weight term as
``σ_{vj}/σmax`` (the weight of the already-included anchor node); ranking candidates
by the anchor's weight cannot differentiate them, so — consistent with the algorithm's
stated intent ("the node weight ... of the selecting node") — we use the candidate's
weight ``σ_{vi}``. This interpretation is recorded here and in DESIGN.md.

Candidate enumeration order is part of the determinism contract: each round scans
the region's members in *insertion order* and each member's neighbours in graph
iteration order. The dense backend (:class:`~repro.core.dense.DenseInstance`)
replays exactly that sequence — members append their CSR rows (with ranks
precomputed once) to one flat candidate table as they join, so one list-indexed
scan selects the same attachment, bit for bit, as the dict loops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.anytime import annotate_anytime_stats
from repro.core.dense import DenseInstance
from repro.core.instance import ProblemInstance
from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.exceptions import SolverError
from repro.network.graph import edge_key


class GreedySolver:
    """The paper's Greedy algorithm.

    Args:
        mu: The balance parameter µ ∈ [0, 1]; the paper settles on 0.2 for NY and 0.4
            for USANW.
    """

    name = "Greedy"

    def __init__(self, mu: float = 0.2) -> None:
        if not 0.0 <= mu <= 1.0:
            raise SolverError(f"mu must be in [0, 1], got {mu}")
        self.mu = mu

    # ------------------------------------------------------------------ public API
    def solve(self, instance: ProblemInstance) -> RegionResult:
        """Answer an LCMSR query by greedy region expansion.

        Args:
            instance: The windowed, weighted problem instance to solve.

        Returns:
            The grown region (no approximation guarantee); an empty result when no
            node in the window is relevant.
        """
        start = time.perf_counter()
        dense = instance.dense_view()
        prune_stats: Dict[str, float] = {}
        if dense is not None:
            region = self._grow_dense(
                dense,
                instance.query.delta,
                bytearray(dense.num_nodes),
                pruning=instance.pruning_enabled,
                stats=prune_stats,
                budget=instance.budget,
            )
        else:
            region = self._grow(
                instance, excluded=set(), budget=instance.budget, stats=prune_stats
            )
        runtime = time.perf_counter() - start
        stats = {"nodes_expanded": float(region.num_nodes)} if region else {}
        stats.update(prune_stats)
        annotate_anytime_stats(instance, region.weight if region else 0.0, stats)
        return RegionResult(region or Region.empty(), self.name, runtime, stats=stats)

    def solve_topk(self, instance: ProblemInstance, k: Optional[int] = None) -> TopKResult:
        """Top-k variant (Section 6.2): regrow repeatedly, excluding earlier regions.

        Args:
            instance: The windowed, weighted problem instance to solve.
            k: Number of distinct regions to return; ``instance.query.k`` when
                omitted.

        Returns:
            Up to ``k`` node-disjoint regions in the order they were grown.
        """
        start = time.perf_counter()
        k = k or instance.query.k
        dense = instance.dense_view()
        results: List[RegionResult] = []
        prune_stats: Dict[str, float] = {}
        budget = instance.budget
        if dense is not None:
            excluded_mask = bytearray(dense.num_nodes)
            position_of = dense.position_of()
            for _ in range(k):
                region = self._grow_dense(
                    dense,
                    instance.query.delta,
                    excluded_mask,
                    pruning=instance.pruning_enabled,
                    stats=prune_stats,
                    budget=budget,
                )
                if region is None or region.is_empty:
                    break
                results.append(RegionResult(region, self.name))
                for node_id in region.nodes:
                    excluded_mask[position_of[node_id]] = 1
                if budget is not None and budget.expired_now():
                    prune_stats["budget_expired"] = 1.0
                    break
        else:
            excluded: Set[int] = set()
            for _ in range(k):
                region = self._grow(
                    instance, excluded=excluded, budget=budget, stats=prune_stats
                )
                if region is None or region.is_empty:
                    break
                results.append(RegionResult(region, self.name))
                excluded |= set(region.nodes)
                if budget is not None and budget.expired_now():
                    prune_stats["budget_expired"] = 1.0
                    break
        runtime = time.perf_counter() - start
        annotate_anytime_stats(
            instance, sum(r.region.weight for r in results), prune_stats
        )
        results = [
            RegionResult(r.region, self.name, runtime, stats=r.stats) for r in results
        ]
        return TopKResult(results, self.name, runtime, stats=prune_stats)

    # ------------------------------------------------------------------ expansion
    def _grow(
        self,
        instance: ProblemInstance,
        excluded: Set[int],
        budget=None,
        stats: Optional[Dict[str, float]] = None,
    ) -> Optional[Region]:
        graph = instance.graph
        weights = instance.weights
        delta = instance.query.delta
        seeds = [
            (weight, node_id)
            for node_id, weight in weights.items()
            if node_id not in excluded and node_id in graph
        ]
        if not seeds:
            return None
        sigma_max = max(weight for weight, _ in seeds)
        if sigma_max <= 0:
            return None
        tau_max = graph.max_edge_length() or 1.0
        _, seed = max(seeds)

        region_order: List[int] = [seed]
        region_nodes: Set[int] = {seed}
        region_edges: Set[Tuple[int, int]] = set()
        total_length = 0.0

        while True:
            # Cooperative deadline: stop between expansion rounds and return
            # the region grown so far (budget=None skips the check entirely).
            if budget is not None and budget.expired():
                if stats is not None:
                    stats["budget_expired"] = 1.0
                break
            best_candidate: Optional[Tuple[float, int, int, float]] = None
            for member in region_order:
                for neighbor, edge_length in graph.neighbor_items(member):
                    if neighbor in region_nodes or neighbor in excluded:
                        continue
                    if total_length + edge_length > delta + 1e-12:
                        continue
                    weight = weights.get(neighbor, 0.0)
                    rank = (
                        self.mu * (1.0 - edge_length / tau_max)
                        + (1.0 - self.mu) * weight / sigma_max
                    )
                    candidate = (rank, neighbor, member, edge_length)
                    if best_candidate is None or candidate[0] > best_candidate[0] or (
                        abs(candidate[0] - best_candidate[0]) <= 1e-12
                        and candidate[1] < best_candidate[1]
                    ):
                        best_candidate = candidate
            if best_candidate is None:
                break
            _, neighbor, member, edge_length = best_candidate
            region_order.append(neighbor)
            region_nodes.add(neighbor)
            region_edges.add(edge_key(member, neighbor))
            total_length += edge_length

        weight_total = sum(weights.get(node_id, 0.0) for node_id in region_order)
        return Region(
            nodes=frozenset(region_nodes),
            edges=frozenset(region_edges),
            length=total_length,
            weight=weight_total,
        )

    def _grow_dense(
        self,
        dense: DenseInstance,
        delta: float,
        excluded: bytearray,
        pruning: bool = False,
        stats: Optional[Dict[str, float]] = None,
        budget=None,
    ) -> Optional[Region]:
        """Array-first twin of :meth:`_grow` over local node positions.

        Candidate ranks are constants per (member, neighbour) edge, so each new
        member appends its CSR row — rank precomputed once — to one flat
        candidate table; per round a single scan over that table applies the
        reference comparison with list indexing only (no per-candidate dict
        hashing, set probing or rank re-derivation). The scan order equals the
        dict loop's member-insertion × neighbour-row order and the rank
        arithmetic keeps the reference expression tree, so the selected
        attachment is identical, bit for bit.

        With ``pruning`` enabled the table is periodically *compacted*: entries
        that are permanently dead — their target already joined the region or is
        excluded, or the (monotonically growing) used length can no longer admit
        their edge — are dropped once they make up over half the table. The
        reference scan merely ``continue``s over exactly those entries, and the
        survivors keep their order, so the selected attachment is unchanged.
        ``stats`` (when given) accumulates the ``greedy_candidates_scanned`` /
        ``greedy_candidates_compacted`` counters.
        """
        sigma = dense.sigma
        relevant = dense.relevant_order
        if relevant.size == 0:
            return None
        # Zero-copy view of the exclusion byte mask for the vectorised seed pick.
        excluded_view = np.frombuffer(excluded, dtype=np.uint8)
        available = relevant[excluded_view[relevant] == 0]
        if available.size == 0:
            return None
        available_weights = sigma[available]
        sigma_max = float(available_weights.max())
        if sigma_max <= 0:
            return None
        tau_max = dense.tau_max or 1.0
        # The reference seeds at max (weight, id): heaviest weight, largest id on ties.
        heaviest = available[available_weights == sigma_max]
        seed = int(heaviest[np.argmax(dense.ids[heaviest])])

        indptr, columns, neighbor_ids, lengths, ids_list = (
            dense.graph_view().adjacency_arrays()
        )
        sigma_list = dense.sigma_list()
        mu = self.mu
        one_minus_mu = 1.0 - mu
        delta_eps = delta + 1e-12

        in_region = bytearray(dense.num_nodes)
        in_region[seed] = 1
        region_order: List[int] = [seed]
        region_edges: List[Tuple[int, int]] = []
        total_length = 0.0
        scanned = 0
        compacted = 0

        # Flat candidate table, appended to as members join (see docstring).
        cand_pos: List[int] = []
        cand_member: List[int] = []
        cand_length: List[float] = []
        cand_rank: List[float] = []
        cand_id: List[int] = []

        member = seed
        while True:
            if budget is not None and budget.expired():
                if stats is not None:
                    stats["budget_expired"] = 1.0
                break
            for slot in range(indptr[member], indptr[member + 1]):
                position = columns[slot]
                edge_length = lengths[slot]
                cand_pos.append(position)
                cand_member.append(member)
                cand_length.append(edge_length)
                # Same expression tree as the reference rank computation.
                cand_rank.append(
                    mu * (1.0 - edge_length / tau_max)
                    + one_minus_mu * sigma_list[position] / sigma_max
                )
                cand_id.append(neighbor_ids[slot])

            best_slot = -1
            best_rank = 0.0
            best_id = -1
            dead = 0
            for slot in range(len(cand_pos)):
                position = cand_pos[slot]
                if in_region[position] or excluded[position]:
                    dead += 1
                    continue
                if total_length + cand_length[slot] > delta_eps:
                    dead += 1
                    continue
                rank = cand_rank[slot]
                if best_slot < 0 or rank > best_rank or (
                    abs(rank - best_rank) <= 1e-12 and cand_id[slot] < best_id
                ):
                    best_slot = slot
                    best_rank = rank
                    best_id = cand_id[slot]
            scanned += len(cand_pos)
            if best_slot < 0:
                break
            neighbor = cand_pos[best_slot]
            in_region[neighbor] = 1
            region_order.append(neighbor)
            region_edges.append((cand_member[best_slot], neighbor))
            total_length += cand_length[best_slot]
            member = neighbor

            if pruning and dead * 2 > len(cand_pos) and len(cand_pos) > 64:
                # Compact the table, re-evaluating deadness against the *post-
                # selection* state (in_region just grew, total_length just
                # rose): every dropped entry is one the reference scan would
                # forever skip, and survivors keep their relative order, so
                # future selections are bit-identical.
                keep = [
                    slot
                    for slot in range(len(cand_pos))
                    if not (
                        in_region[cand_pos[slot]]
                        or excluded[cand_pos[slot]]
                        or total_length + cand_length[slot] > delta_eps
                    )
                ]
                compacted += len(cand_pos) - len(keep)
                cand_pos = [cand_pos[slot] for slot in keep]
                cand_member = [cand_member[slot] for slot in keep]
                cand_length = [cand_length[slot] for slot in keep]
                cand_rank = [cand_rank[slot] for slot in keep]
                cand_id = [cand_id[slot] for slot in keep]

        if stats is not None:
            stats["greedy_candidates_scanned"] = (
                stats.get("greedy_candidates_scanned", 0.0) + scanned
            )
            stats["greedy_candidates_compacted"] = (
                stats.get("greedy_candidates_compacted", 0.0) + compacted
            )
        weight_total = sum(sigma_list[pos] for pos in region_order)
        return Region(
            nodes=frozenset(ids_list[pos] for pos in region_order),
            edges=frozenset(
                edge_key(ids_list[a], ids_list[b]) for a, b in region_edges
            ),
            length=total_length,
            weight=weight_total,
        )
