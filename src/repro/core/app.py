"""APP: the (5 + ε)-approximation algorithm (paper Section 4).

The algorithm has three stages (Figure 5 / Algorithm 1 of the paper):

1. **Weight scaling** — node weights are scaled to integers with
   ``θ = α·σmax/|VQ|`` (:mod:`repro.core.scaling`), losing at most a factor ``1 - α``
   of the optimal weight (Theorem 2).
2. **Binary search with a k-MST solver** — find a quota ``X`` such that the
   node-weighted k-MST solver returns a candidate tree ``TC`` of length at most
   ``3·Q.∆`` under quota ``X`` but exceeds ``3·Q.∆`` under quota ``(1+β)·X``
   (Lemmas 2–5, Function ``binarySearch``). The returned ``TC`` then carries at least
   ``1/(1+β)`` of the optimal scaled weight.
3. **findOptTree** — a pseudo-polynomial dynamic program over ``TC`` (Lemmas 6–7,
   Definition 5) that extracts the feasible (length ≤ ``Q.∆``) sub-region of ``TC``
   with the largest scaled weight. Lemma 8 guarantees such a sub-region retains at
   least a fifth of ``TC``'s weight, which yields the overall ``(5 + ε)`` bound
   (Theorem 4).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.instance import ProblemInstance
from repro.core.kmst import CandidateTree, QuotaTreeSolver
from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.core.scaling import ScalingContext
from repro.core.tuples import RegionTuple, TupleArray
from repro.exceptions import SolverError
from repro.network.compact import GraphView


@dataclass
class BinarySearchStep:
    """One row of the paper's Table 1: the state of a binary-search iteration."""

    lower: float
    upper: float
    quota: float
    tree_length: Optional[float]
    boosted_quota: Optional[float] = None
    boosted_tree_length: Optional[float] = None


@dataclass
class BinarySearchTrace:
    """The full binary-search trace (reproduces the paper's Table 1 mechanics)."""

    steps: List[BinarySearchStep] = field(default_factory=list)

    def add(self, step: BinarySearchStep) -> None:
        """Append one iteration's record."""
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def rows(self) -> List[Dict[str, Optional[float]]]:
        """Return the trace as dictionaries, one per iteration (for table printing)."""
        return [
            {
                "step": index + 1,
                "L": step.lower,
                "U": step.upper,
                "X": step.quota,
                "TC.l": step.tree_length,
                "(1+beta)X": step.boosted_quota,
                "TC'.l": step.boosted_tree_length,
            }
            for index, step in enumerate(self.steps)
        ]


class APPSolver:
    """The paper's APP algorithm.

    Args:
        alpha: Scaling parameter α ∈ (0, 1] controlling the integer weight resolution
            (paper default for NY experiments: 0.5).
        beta: Binary-search slack β > 0 (paper default 0.1). Smaller β tightens the
            approximation ratio ``(1 - α)/(5 + 5β)`` at the cost of more iterations.
        max_iterations: Hard cap on binary-search iterations (the paper's analysis
            bounds them by ``O(log_{1+β} |VQ|)``; the cap is a safety net).
        closure_neighbors / lambda_factors: Forwarded to the
            :class:`~repro.core.kmst.QuotaTreeSolver`.
    """

    name = "APP"

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.1,
        max_iterations: int = 60,
        closure_neighbors: int = 8,
        lambda_factors: Optional[Sequence[float]] = None,
    ) -> None:
        if alpha <= 0:
            raise SolverError(f"alpha must be positive, got {alpha}")
        if beta <= 0:
            raise SolverError(f"beta must be positive, got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.max_iterations = max_iterations
        self.closure_neighbors = closure_neighbors
        self.lambda_factors = lambda_factors

    # ------------------------------------------------------------------ public API
    def solve(self, instance: ProblemInstance) -> RegionResult:
        """Answer an LCMSR query with the (5 + ε)-approximation pipeline.

        Args:
            instance: The windowed, weighted problem instance to solve.

        Returns:
            The best region found (with binary-search / GW-run statistics in
            ``stats``); an empty result when no node in the window is relevant.
        """
        start = time.perf_counter()
        prepared = self._prepare(instance)
        if prepared is None:
            return RegionResult(Region.empty(), self.name, time.perf_counter() - start)
        scaling, scaled_weights, quota_solver = prepared

        candidate_tree, trace = self._binary_search(instance, scaled_weights, scaling, quota_solver)
        stats: Dict[str, float] = {
            "binary_search_iterations": float(len(trace)),
            "gw_runs": float(quota_solver.num_gw_runs),
        }
        if candidate_tree is None:
            runtime = time.perf_counter() - start
            return RegionResult(Region.empty(), self.name, runtime, stats=stats)

        delta = instance.query.delta
        if candidate_tree.length <= delta:
            best_tuple = RegionTuple(
                length=candidate_tree.length,
                weight=candidate_tree.weight,
                scaled_weight=candidate_tree.scaled_weight,
                nodes=candidate_tree.nodes,
                edges=candidate_tree.edges,
            )
        else:
            best_tuple, _ = find_opt_tree(
                candidate_tree, instance.graph, instance.weights, scaled_weights, delta
            )
        runtime = time.perf_counter() - start
        stats["candidate_tree_length"] = candidate_tree.length
        stats["candidate_tree_nodes"] = float(candidate_tree.num_nodes)
        if best_tuple is None:
            return RegionResult(Region.empty(), self.name, runtime, stats=stats)
        return RegionResult(
            region=best_tuple.to_region(),
            algorithm=self.name,
            runtime_seconds=runtime,
            scaled_weight=best_tuple.scaled_weight,
            stats=stats,
        )

    def solve_topk(self, instance: ProblemInstance, k: Optional[int] = None) -> TopKResult:
        """Answer a top-k LCMSR query (paper Section 6.2).

        After the candidate tree is found, findOptTree computes the tuple arrays of all
        its nodes, and the k best distinct feasible regions are read off the arrays.

        Args:
            instance: The windowed, weighted problem instance to solve.
            k: Number of distinct regions to return; ``instance.query.k`` when
                omitted.

        Returns:
            Up to ``k`` distinct regions in decreasing score order (fewer when the
            window does not hold ``k`` distinct feasible regions).
        """
        start = time.perf_counter()
        k = k or instance.query.k
        prepared = self._prepare(instance)
        if prepared is None:
            return TopKResult([], self.name, time.perf_counter() - start)
        scaling, scaled_weights, quota_solver = prepared
        candidate_tree, trace = self._binary_search(instance, scaled_weights, scaling, quota_solver)
        if candidate_tree is None:
            return TopKResult([], self.name, time.perf_counter() - start)
        _, arrays = find_opt_tree(
            candidate_tree,
            instance.graph,
            instance.weights,
            scaled_weights,
            instance.query.delta,
        )
        ranked = rank_tuples_from_arrays(arrays, k)
        runtime = time.perf_counter() - start
        results = [
            RegionResult(t.to_region(), self.name, runtime, scaled_weight=t.scaled_weight)
            for t in ranked
        ]
        return TopKResult(results, self.name, runtime)

    def trace_binary_search(self, instance: ProblemInstance) -> BinarySearchTrace:
        """Run only the binary search and return its trace (Table 1 reproduction)."""
        prepared = self._prepare(instance)
        if prepared is None:
            return BinarySearchTrace()
        scaling, scaled_weights, quota_solver = prepared
        _, trace = self._binary_search(instance, scaled_weights, scaling, quota_solver)
        return trace

    # ------------------------------------------------------------------ internals
    def _prepare(
        self, instance: ProblemInstance
    ) -> Optional[Tuple[ScalingContext, Dict[int, int], QuotaTreeSolver]]:
        if not instance.has_relevant_nodes or instance.num_candidate_nodes == 0:
            return None
        dense = instance.dense_view()
        if dense is not None:
            # Dense path: θ from the precomputed σmax aggregate, σ̂ in one
            # vectorised pass; the scaled dict replays the weight-dict order, so
            # everything downstream (terminal sort, prizes) is bit-identical.
            scaling = ScalingContext.from_sigma_max(
                instance.sigma_max(), instance.num_candidate_nodes, self.alpha
            )
            scaled_list = scaling.scale_array(dense.sigma).tolist()
            ids_list = dense.ids_list()
            scaled_weights = {
                ids_list[pos]: scaled_list[pos]
                for pos in dense.relevant_order.tolist()
            }
        else:
            scaling = ScalingContext.build(
                instance.weights, instance.num_candidate_nodes, self.alpha
            )
            scaled_weights = scaling.scale_weights(instance.weights)
        kwargs = {}
        if self.lambda_factors is not None:
            kwargs["lambda_factors"] = self.lambda_factors
        quota_solver = QuotaTreeSolver(
            instance.graph,
            instance.weights,
            scaled_weights,
            closure_neighbors=self.closure_neighbors,
            dense=dense,
            **kwargs,
        )
        return scaling, scaled_weights, quota_solver

    def _binary_search(
        self,
        instance: ProblemInstance,
        scaled_weights: Dict[int, int],
        scaling: ScalingContext,
        quota_solver: QuotaTreeSolver,
    ) -> Tuple[Optional[CandidateTree], BinarySearchTrace]:
        """The paper's Function binarySearch, using ``3·Q.∆`` per Lemma 4."""
        delta = instance.query.delta
        length_budget = 3.0 * delta
        lower = float(scaling.lower_bound())
        upper = float(min(scaling.upper_bound(), max(quota_solver.total_scaled_weight(), 1)))
        if upper < lower:
            upper = lower
        trace = BinarySearchTrace()
        best_feasible: Optional[CandidateTree] = None

        for _ in range(self.max_iterations):
            quota = (lower + upper) / 2.0
            tree = quota_solver.solve(max(1, math.ceil(quota)))
            tree_length = tree.length if tree is not None else None
            step = BinarySearchStep(lower=lower, upper=upper, quota=quota, tree_length=tree_length)
            if tree is None or tree.length > length_budget:
                upper = quota
                trace.add(step)
            else:
                best_feasible = tree
                boosted = (1.0 + self.beta) * quota
                boosted_tree = quota_solver.solve(max(1, math.ceil(boosted)))
                step.boosted_quota = boosted
                step.boosted_tree_length = (
                    boosted_tree.length if boosted_tree is not None else None
                )
                trace.add(step)
                if boosted_tree is None or boosted_tree.length > length_budget:
                    break
                lower = quota
            if upper - lower <= 1.0:
                break

        if best_feasible is None:
            # The lower bound corresponds to the single heaviest node (length 0), which
            # is always feasible; fall back to it explicitly.
            best_feasible = quota_solver.solve(max(1, int(lower)))
        return best_feasible, trace


# ---------------------------------------------------------------------------- findOptTree
def find_opt_tree(
    candidate_tree: CandidateTree,
    graph: GraphView,
    weights: Mapping[int, float],
    scaled_weights: Mapping[int, int],
    delta: float,
) -> Tuple[Optional[RegionTuple], Dict[int, TupleArray]]:
    """The paper's Function findOptTree: best feasible sub-region of a tree.

    Processes the tree bottom-up from its leaves (Function ``findOptTree`` in the
    paper): every node keeps an array of region tuples rooted at it, keyed by scaled
    weight with only the shortest tuple per key (Lemma 6), and when a leaf is folded
    into its remaining neighbour the two arrays are combined through the connecting
    edge (Lemma 7). Only feasible tuples (length ≤ ``delta``) are kept.

    Args:
        candidate_tree: The tree ``TC`` returned by the binary search.
        graph: The road network (only its ``edge_length`` method is used).
        weights / scaled_weights: Node weights σ_v and σ̂_v.
        delta: The query length constraint ``Q.∆``.

    Returns:
        ``(best_tuple, arrays)`` where ``arrays`` maps every tree node to its final
        tuple array (used by the top-k extension). ``best_tuple`` is ``None`` only for
        an empty candidate tree.
    """
    nodes = list(candidate_tree.nodes)
    if not nodes:
        return None, {}

    adjacency: Dict[int, Dict[int, float]] = {v: {} for v in nodes}
    for u, v in candidate_tree.edges:
        length = graph.edge_length(u, v)
        adjacency[u][v] = length
        adjacency[v][u] = length

    arrays: Dict[int, TupleArray] = {}
    best: Optional[RegionTuple] = None
    for v in nodes:
        array = TupleArray()
        singleton = RegionTuple.singleton(v, weights.get(v, 0.0), scaled_weights.get(v, 0))
        array.update(singleton)
        arrays[v] = array
        if singleton.better_than(best):
            best = singleton

    remaining_degree = {v: len(adjacency[v]) for v in nodes}
    remaining_nodes = set(nodes)
    queue = [v for v in nodes if remaining_degree[v] <= 1]
    while queue and len(remaining_nodes) > 1:
        leaf = queue.pop()
        if leaf not in remaining_nodes:
            continue
        neighbors = [n for n in adjacency[leaf] if n in remaining_nodes]
        if not neighbors:
            remaining_nodes.discard(leaf)
            continue
        parent = neighbors[0]
        edge_length = adjacency[leaf][parent]
        parent_array = arrays[parent]
        new_tuples: List[RegionTuple] = []
        for leaf_tuple in arrays[leaf].tuples():
            for parent_tuple in parent_array.tuples():
                combined_length = leaf_tuple.length + parent_tuple.length + edge_length
                if combined_length > delta + 1e-12:
                    continue
                combined = leaf_tuple.combine(parent_tuple, leaf, parent, edge_length)
                new_tuples.append(combined)
        for combined in new_tuples:
            parent_array.update(combined)
            if combined.better_than(best):
                best = combined
        remaining_nodes.discard(leaf)
        remaining_degree[parent] -= 1
        if remaining_degree[parent] <= 1 and parent in remaining_nodes:
            queue.append(parent)
    return best, arrays


def rank_tuples_from_arrays(arrays: Mapping[int, TupleArray], k: int) -> List[RegionTuple]:
    """Return the ``k`` best distinct feasible tuples across all tuple arrays.

    Distinctness is by node set: the same region is stored in the arrays of several of
    its nodes, and returning it twice would make the top-k result useless.
    """
    seen: Set[frozenset] = set()
    pool: List[RegionTuple] = []
    for array in arrays.values():
        for candidate in array.tuples():
            if candidate.nodes in seen:
                continue
            seen.add(candidate.nodes)
            pool.append(candidate)
    pool.sort(key=lambda t: (-t.scaled_weight, -t.weight, t.length))
    return pool[:k]
