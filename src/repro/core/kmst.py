"""Node-weighted k-MST ("quota") solver used by APP (paper Section 4.2).

The paper treats Garg's 3-approximation for the node-weighted k minimum spanning tree
problem as a black box ``kMST(X)``: *return a tree whose total (scaled) node weight is
at least X, of length at most 3 times the optimum*. This module provides that solver.

Following Garg's construction, the solver is built on the Goemans–Williamson
prize-collecting Steiner tree primal–dual (:mod:`repro.core.pcst`) with a Lagrangian
search over the prize multiplier λ: larger λ makes the PCST collect more weight, so a
ladder of λ values yields a family of trees trading length against collected weight,
from which ``solve(X)`` picks the shortest tree meeting the quota and then trims
unnecessary leaves. Two engineering choices keep this practical in pure Python:

* the PCST runs on the *terminal metric closure* — the weighted (relevant) nodes only,
  connected by shortest-path distances in the query window — and the chosen closure
  edges are expanded back to real road-network paths afterwards (a standard Steiner
  reduction that can only shorten the expanded tree);
* the λ ladder is computed once per query and cached, so APP's binary search over X
  costs one scan per probe instead of one GW run per probe.

Both choices are documented in DESIGN.md and exercised by the ablation benchmark
``bench_ablation_kmst.py``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.pcst import goemans_williamson_pcst
from repro.exceptions import SolverError
from repro.network.compact import GraphView
from repro.network.graph import edge_key
from repro.network.shortest_path import dijkstra, dijkstra_positions

if TYPE_CHECKING:  # pragma: no cover - typing only (dense imports nothing from here)
    from repro.core.dense import DenseInstance

_DEFAULT_LAMBDA_FACTORS: Tuple[float, ...] = (
    0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


@dataclass(frozen=True)
class CandidateTree:
    """A tree in the road network produced by the quota solver.

    Attributes:
        nodes: The tree's node ids (terminals plus intermediate path nodes).
        edges: The tree's edges as normalised ``(u, v)`` pairs.
        length: Total edge length.
        weight: Total original node weight.
        scaled_weight: Total scaled node weight ŝ.
    """

    nodes: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]]
    length: float
    weight: float
    scaled_weight: int

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return len(self.nodes)


class QuotaTreeSolver:
    """Answer ``kMST(X)`` queries over one problem instance.

    Args:
        graph: The query-window road network.
        weights: Original node weights σ_v (only positive entries are terminals).
        scaled_weights: Scaled node weights σ̂_v from the :class:`ScalingContext`.
        closure_neighbors: How many nearest terminals each terminal is linked to in the
            metric-closure graph (the closure MST is always added on top, so the
            closure stays as connected as the underlying window graph allows).
        lambda_factors: Multipliers applied to the base λ to build the Lagrangian
            ladder; more factors give a finer length/weight trade-off at higher cost.
        dense: Optional :class:`~repro.core.dense.DenseInstance` of the same
            window. When given, the terminal set is derived from the dense arrays
            (every weight key is a window node by construction, so no per-key
            graph probe) and the metric closure runs on the local-CSR Dijkstra
            variant — position-indexed tables, no global-id dict per run. The
            produced closure (distances, paths, candidate trees) is identical.
    """

    def __init__(
        self,
        graph: GraphView,
        weights: Mapping[int, float],
        scaled_weights: Mapping[int, int],
        closure_neighbors: int = 8,
        lambda_factors: Sequence[float] = _DEFAULT_LAMBDA_FACTORS,
        dense: Optional["DenseInstance"] = None,
    ) -> None:
        self._graph = graph
        self._weights = dict(weights)
        self._scaled = {v: int(s) for v, s in scaled_weights.items()}
        self._dense = dense
        if dense is not None:
            # Dense instances only carry in-window weights, so the `v in graph`
            # membership probe (which would materialise the snapshot's id map)
            # is dropped without changing the terminal set.
            self._terminals = sorted(v for v, s in self._scaled.items() if s > 0)
        else:
            self._terminals = sorted(
                v for v, s in self._scaled.items() if s > 0 and v in graph
            )
        self._closure_neighbors = max(1, closure_neighbors)
        self._lambda_factors = tuple(lambda_factors)
        # Lazily built state.
        self._closure_built = False
        self._closure_dist: Dict[int, Dict[int, float]] = {}
        self._closure_paths: Dict[Tuple[int, int], List[int]] = {}
        self._closure_edges: List[Tuple[int, int, float]] = []
        self._candidates: Optional[List[CandidateTree]] = None
        self.num_gw_runs = 0

    # ------------------------------------------------------------------ public API
    @property
    def terminals(self) -> List[int]:
        """The weighted (relevant) nodes the solver connects."""
        return list(self._terminals)

    def total_scaled_weight(self) -> int:
        """The largest quota any tree could possibly satisfy."""
        return sum(self._scaled.get(v, 0) for v in self._terminals)

    def solve(self, quota: int) -> Optional[CandidateTree]:
        """Return a low-length tree whose scaled weight is at least ``quota``.

        Returns ``None`` when no tree can reach the quota (quota larger than the total
        scaled weight reachable in the window).
        """
        if quota <= 0:
            best_terminal = self._best_single_terminal()
            return best_terminal
        candidates = self._ensure_candidates()
        feasible = [c for c in candidates if c.scaled_weight >= quota]
        if not feasible:
            return None
        best = min(feasible, key=lambda c: (c.length, c.num_nodes))
        return self._trim_to_quota(best, quota)

    def candidate_trees(self) -> List[CandidateTree]:
        """Return the cached ladder of candidate trees (for ablations and tests)."""
        return list(self._ensure_candidates())

    # ------------------------------------------------------------------ closure graph
    def _ensure_closure(self) -> None:
        if self._closure_built:
            return
        self._closure_built = True
        terminals = self._terminals
        terminal_set = set(terminals)
        if len(terminals) <= 1:
            return
        nearest: Dict[int, List[Tuple[float, int]]] = {}
        if self._dense is not None:
            fill_path = self._collect_closure_dense(terminal_set, nearest)
        else:
            fill_path = self._collect_closure_dict(terminal_set, nearest)

        edge_set: Set[Tuple[int, int]] = set()
        for source in terminals:
            for distance, target in nearest.get(source, []):
                key = edge_key(source, target)
                if key not in edge_set:
                    edge_set.add(key)
                    self._closure_edges.append((key[0], key[1], distance))

        # Add the closure MST so the closure graph is as connected as the window graph.
        for u, v, distance in self._closure_mst_edges():
            key = edge_key(u, v)
            if key not in edge_set:
                edge_set.add(key)
                self._closure_edges.append((key[0], key[1], distance))
            if key not in self._closure_paths:
                fill_path(u, v)

    def _collect_closure_dict(
        self,
        terminal_set: Set[int],
        nearest: Dict[int, List[Tuple[float, int]]],
    ):
        """Per-terminal metric-closure probes through the id-keyed Dijkstra.

        Returns the path-fill callback used for closure-MST edges whose paths
        were not recorded by the nearest-neighbour probes.
        """
        parents: Dict[int, Dict[int, int]] = {}
        for source in self._terminals:
            dist, parent = dijkstra(
                self._graph, source, targets=set(terminal_set) - {source}
            )
            reached = {t: d for t, d in dist.items() if t in terminal_set and t != source}
            self._closure_dist[source] = reached
            ranked = sorted((d, t) for t, d in reached.items())
            nearest[source] = ranked[: self._closure_neighbors]
            parents[source] = parent
            for _, target in nearest[source]:
                key = edge_key(source, target)
                if key not in self._closure_paths:
                    self._closure_paths[key] = _reconstruct_path(parent, source, target)

        def fill_path(u: int, v: int) -> None:
            parent = parents.get(u)
            if parent is None or (v not in parent and v != u):
                # The targeted Dijkstra above may have stopped before settling v.
                _, parent = dijkstra(self._graph, u, targets={v})
            self._closure_paths[edge_key(u, v)] = _reconstruct_path(parent, u, v)

        return fill_path

    def _collect_closure_dense(
        self,
        terminal_set: Set[int],
        nearest: Dict[int, List[Tuple[float, int]]],
    ):
        """Position-indexed twin of :meth:`_collect_closure_dict`.

        Runs the local-CSR Dijkstra variant per terminal — distances, parents
        and the touch order are identical to the id-keyed path (same relaxation
        order, same id tie-breaks), so the recorded closure is too; what is
        saved is the per-run materialisation of full global-id dist/parent
        dicts (only terminal rows are converted back to ids).
        """
        dense = self._dense
        assert dense is not None
        position_of = dense.position_of()
        ids_list = dense.ids_list()
        graph = dense.graph_view()
        terminal_positions = {position_of[t] for t in terminal_set}
        parents_by_pos: Dict[int, List[int]] = {}
        for source in self._terminals:
            source_pos = position_of[source]
            dist, parent, touched = dijkstra_positions(
                graph, source_pos, terminal_positions - {source_pos}
            )
            # Touch order replays the id-keyed dict's iteration order.
            reached = {
                ids_list[pos]: dist[pos]
                for pos in touched
                if pos in terminal_positions and pos != source_pos
            }
            self._closure_dist[source] = reached
            ranked = sorted((d, t) for t, d in reached.items())
            nearest[source] = ranked[: self._closure_neighbors]
            parents_by_pos[source] = parent
            for _, target in nearest[source]:
                key = edge_key(source, target)
                if key not in self._closure_paths:
                    self._closure_paths[key] = _reconstruct_path_positions(
                        parent, source_pos, position_of[target], ids_list
                    )

        def fill_path(u: int, v: int) -> None:
            u_pos, v_pos = position_of[u], position_of[v]
            parent = parents_by_pos.get(u)
            if parent is None or (parent[v_pos] < 0 and v != u):
                # The targeted Dijkstra above may have stopped before settling v.
                _, parent, _ = dijkstra_positions(graph, u_pos, {v_pos})
            self._closure_paths[edge_key(u, v)] = _reconstruct_path_positions(
                parent, u_pos, v_pos, ids_list
            )

        return fill_path

    def _closure_mst_edges(self) -> List[Tuple[int, int, float]]:
        """Prim's MST over the full terminal-to-terminal distance matrix."""
        terminals = self._terminals
        if len(terminals) <= 1:
            return []
        in_tree: Set[int] = {terminals[0]}
        mst: List[Tuple[int, int, float]] = []
        heap: List[Tuple[float, int, int]] = []
        for target, distance in self._closure_dist.get(terminals[0], {}).items():
            heapq.heappush(heap, (distance, terminals[0], target))
        while heap and len(in_tree) < len(terminals):
            distance, source, target = heapq.heappop(heap)
            if target in in_tree:
                continue
            in_tree.add(target)
            mst.append((source, target, distance))
            for nxt, d in self._closure_dist.get(target, {}).items():
                if nxt not in in_tree:
                    heapq.heappush(heap, (d, target, nxt))
        return mst

    # ------------------------------------------------------------------ λ ladder
    def _ensure_candidates(self) -> List[CandidateTree]:
        if self._candidates is not None:
            return self._candidates
        self._ensure_closure()
        candidates: List[CandidateTree] = []
        best_single = self._best_single_terminal()
        if best_single is not None:
            candidates.append(best_single)

        if len(self._terminals) > 1 and self._closure_edges:
            base_lambda = self._base_lambda()
            seen_signatures: Set[FrozenSet[int]] = set()
            for factor in self._lambda_factors:
                lam = base_lambda * factor
                prizes = {t: lam * self._scaled[t] for t in self._terminals}
                result = goemans_williamson_pcst(self._terminals, self._closure_edges, prizes)
                self.num_gw_runs += 1
                for tree_nodes, tree_edges in result.trees:
                    if len(tree_nodes) < 2:
                        continue
                    closure_pairs = [(u, v) for u, v, _ in tree_edges]
                    candidate = self._expand(closure_pairs)
                    if candidate is None:
                        continue
                    signature = candidate.nodes
                    if signature in seen_signatures:
                        continue
                    seen_signatures.add(signature)
                    candidates.append(candidate)
            # The "take everything reachable" candidate guarantees the maximum quota the
            # window supports is always achievable.
            all_pairs = [(u, v) for u, v, _ in self._closure_mst_edges()]
            if all_pairs:
                everything = self._expand(all_pairs)
                if everything is not None and everything.nodes not in seen_signatures:
                    candidates.append(everything)
        self._candidates = candidates
        return candidates

    def _base_lambda(self) -> float:
        lengths = [cost for _, _, cost in self._closure_edges]
        mean_cost = sum(lengths) / len(lengths) if lengths else 1.0
        scaled_values = [self._scaled[t] for t in self._terminals if self._scaled[t] > 0]
        mean_scaled = sum(scaled_values) / len(scaled_values) if scaled_values else 1.0
        if mean_scaled <= 0:
            return 1.0
        return max(mean_cost / mean_scaled, 1e-12)

    def _best_single_terminal(self) -> Optional[CandidateTree]:
        if not self._terminals:
            return None
        best = max(self._terminals, key=lambda v: (self._scaled.get(v, 0), self._weights.get(v, 0.0)))
        return CandidateTree(
            nodes=frozenset({best}),
            edges=frozenset(),
            length=0.0,
            weight=self._weights.get(best, 0.0),
            scaled_weight=self._scaled.get(best, 0),
        )

    # ------------------------------------------------------------------ expansion
    def _expand(self, closure_pairs: Sequence[Tuple[int, int]]) -> Optional[CandidateTree]:
        """Expand closure edges back to road-network paths and return a spanning tree."""
        node_set: Set[int] = set()
        edge_lengths: Dict[Tuple[int, int], float] = {}
        for u, v in closure_pairs:
            path = self._closure_paths.get(edge_key(u, v))
            if path is None:
                continue
            node_set.update(path)
            for a, b in zip(path, path[1:]):
                edge_lengths[edge_key(a, b)] = self._graph.edge_length(a, b)
        if not node_set:
            return None
        # BFS spanning tree of the expanded subgraph (paths may overlap / form cycles).
        adjacency: Dict[int, List[Tuple[int, float]]] = {v: [] for v in node_set}
        for (a, b), length in edge_lengths.items():
            adjacency[a].append((b, length))
            adjacency[b].append((a, length))
        start = next(iter(node_set))
        seen = {start}
        tree_edges: Set[Tuple[int, int]] = set()
        total_length = 0.0
        queue = [start]
        while queue:
            current = queue.pop()
            for neighbor, length in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    tree_edges.add(edge_key(current, neighbor))
                    total_length += length
                    queue.append(neighbor)
        # Paths always come from one connected closure tree, so the BFS reaches all
        # nodes; guard anyway in case of disconnected closure components.
        nodes = frozenset(seen)
        weight = sum(self._weights.get(v, 0.0) for v in nodes)
        scaled = sum(self._scaled.get(v, 0) for v in nodes)
        return CandidateTree(
            nodes=nodes,
            edges=frozenset(tree_edges),
            length=total_length,
            weight=weight,
            scaled_weight=scaled,
        )

    # ------------------------------------------------------------------ trimming
    def _trim_to_quota(self, tree: CandidateTree, quota: int) -> CandidateTree:
        """Remove leaves while the tree still meets the quota, longest edges first."""
        if len(tree.nodes) <= 1:
            return tree
        adjacency: Dict[int, Dict[int, float]] = {v: {} for v in tree.nodes}
        for u, v in tree.edges:
            length = self._graph.edge_length(u, v)
            adjacency[u][v] = length
            adjacency[v][u] = length
        scaled_total = tree.scaled_weight
        weight_total = tree.weight
        length_total = tree.length
        removed: Set[int] = set()
        improved = True
        while improved:
            improved = False
            leaves = [
                v
                for v in adjacency
                if v not in removed and len([n for n in adjacency[v] if n not in removed]) == 1
            ]
            # Remove the leaf saving the most length, provided the quota still holds.
            leaves.sort(
                key=lambda v: next(
                    length for n, length in adjacency[v].items() if n not in removed
                ),
                reverse=True,
            )
            for leaf in leaves:
                leaf_scaled = self._scaled.get(leaf, 0)
                if scaled_total - leaf_scaled < quota:
                    continue
                neighbor, length = next(
                    (n, l) for n, l in adjacency[leaf].items() if n not in removed
                )
                removed.add(leaf)
                scaled_total -= leaf_scaled
                weight_total -= self._weights.get(leaf, 0.0)
                length_total -= length
                improved = True
                break
        if not removed:
            return tree
        kept_nodes = frozenset(v for v in tree.nodes if v not in removed)
        kept_edges = frozenset(
            (u, v) for u, v in tree.edges if u not in removed and v not in removed
        )
        return CandidateTree(
            nodes=kept_nodes,
            edges=kept_edges,
            length=length_total,
            weight=weight_total,
            scaled_weight=scaled_total,
        )


def _reconstruct_path(parent: Mapping[int, int], source: int, target: int) -> List[int]:
    """Rebuild the node sequence from ``source`` to ``target`` using Dijkstra parents."""
    if source == target:
        return [source]
    if target not in parent:
        raise SolverError(f"no path from {source} to {target} in the query window")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _reconstruct_path_positions(
    parent: Sequence[int], source_pos: int, target_pos: int, ids: Sequence[int]
) -> List[int]:
    """Position-indexed twin of :func:`_reconstruct_path` (returns node ids)."""
    if source_pos == target_pos:
        return [ids[source_pos]]
    if parent[target_pos] < 0:
        raise SolverError(
            f"no path from {ids[source_pos]} to {ids[target_pos]} in the query window"
        )
    path_positions = [target_pos]
    while path_positions[-1] != source_pos:
        path_positions.append(parent[path_positions[-1]])
    return [ids[pos] for pos in reversed(path_positions)]
