"""Top-k LCMSR queries (paper Section 6.2).

Every solver in this library exposes ``solve_topk``; this module adds the small amount
of shared plumbing: a solver-agnostic dispatcher and helpers for comparing top-k
result lists (used by the evaluation harness and tests). The per-algorithm behaviour
matches the paper:

* **APP** — after the candidate tree is found, the findOptTree tuple arrays of all its
  nodes are ranked and the best k distinct regions returned.
* **TGEN** — the tuples of all node arrays generated during the traversal are ranked.
* **Greedy** — the greedy expansion is repeated k times, each time seeding from the
  heaviest node not contained in any earlier answer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence

from repro.core.instance import ProblemInstance
from repro.core.result import RegionResult, TopKResult


class SupportsTopK(Protocol):
    """Structural type of a solver that can answer top-k queries.

    Every solver implementation accepts ``k`` as an optional keyword defaulting
    to ``None`` (meaning "take ``k`` from the instance's query"), so the
    protocol declares the same shape — a protocol narrower than its
    implementations would reject call sites that rely on the default.
    """

    name: str

    def solve_topk(
        self, instance: ProblemInstance, k: Optional[int] = None
    ) -> TopKResult:  # pragma: no cover
        ...


def solve_topk(
    solver: SupportsTopK, instance: ProblemInstance, k: Optional[int] = None
) -> TopKResult:
    """Dispatch a top-k query to ``solver`` (thin convenience wrapper)."""
    return solver.solve_topk(instance, k)


def total_weight(result: TopKResult) -> float:
    """Sum of the weights of all returned regions (a simple top-k quality measure)."""
    return sum(entry.weight for entry in result)


def node_overlap_fraction(result: TopKResult) -> float:
    """Fraction of node slots occupied by nodes appearing in more than one region.

    0.0 means the k regions are node-disjoint; values near 1.0 indicate the solver
    returned near-duplicates. Used by tests to check the distinctness guarantees.
    """
    all_nodes: List[int] = []
    for entry in result:
        all_nodes.extend(entry.region.nodes)
    if not all_nodes:
        return 0.0
    duplicates = len(all_nodes) - len(set(all_nodes))
    return duplicates / len(all_nodes)


def weights_are_sorted(result: TopKResult) -> bool:
    """Return ``True`` if the regions come in non-increasing weight order."""
    weights = [entry.weight for entry in result]
    return all(weights[i] >= weights[i + 1] - 1e-9 for i in range(len(weights) - 1))
