"""The LCMSR query type (paper Definition 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.exceptions import QueryError
from repro.network.subgraph import Rectangle
from repro.textindex.tokenizer import normalize_keyword_set


@dataclass(frozen=True)
class LCMSRQuery:
    """A length-constrained maximum-sum region query ``Q = <ψ, ∆, Λ>``.

    Attributes:
        keywords: The query keyword set ``Q.ψ``. Normalised at construction —
            stripped, lower-cased, de-duplicated, order preserved — whichever
            constructor path is used, so scorers, cache keys and the columnar
            weight pipeline never re-normalise per call.
        delta: The length constraint ``Q.∆``: the maximum total road-segment length of
            the returned region, in the same units as edge lengths (meters for the
            bundled datasets).
        region: The rectangular region of interest ``Q.Λ``. ``None`` means "the whole
            network", which several unit-level tests and the paper's Figure 2 example
            use.
        k: Number of regions to return for the top-k variant (Section 6.2); plain
            LCMSR queries use ``k = 1``.
    """

    keywords: Tuple[str, ...]
    delta: float
    region: Optional[Rectangle] = None
    k: int = 1

    def __post_init__(self) -> None:
        # Normalise ONCE, at construction: every downstream consumer (scorers,
        # the columnar weight pipeline, cache keys) trusts query keywords to be
        # stripped, lower-cased and de-duplicated already.
        normalised = normalize_keyword_set(self.keywords)
        if normalised != tuple(self.keywords) or not isinstance(self.keywords, tuple):
            object.__setattr__(self, "keywords", normalised)
        if not self.keywords:
            raise QueryError("an LCMSR query needs at least one keyword")
        if self.delta < 0:
            raise QueryError(f"the length constraint must be non-negative, got {self.delta}")
        if self.k < 1:
            raise QueryError(f"k must be at least 1, got {self.k}")

    @staticmethod
    def create(
        keywords: Iterable[str],
        delta: float,
        region: Optional[Rectangle] = None,
        k: int = 1,
    ) -> "LCMSRQuery":
        """Build a query from any keyword iterable (``__post_init__`` normalises)."""
        return LCMSRQuery(keywords=tuple(keywords), delta=float(delta), region=region, k=k)

    @property
    def keyword_count(self) -> int:
        """Number of distinct query keywords (the paper's ``|Q.ψ|``)."""
        return len(self.keywords)

    def with_delta(self, delta: float) -> "LCMSRQuery":
        """Return a copy with a different length constraint (used in sweeps)."""
        return LCMSRQuery(self.keywords, float(delta), self.region, self.k)

    def with_region(self, region: Optional[Rectangle]) -> "LCMSRQuery":
        """Return a copy with a different region of interest (used in sweeps)."""
        return LCMSRQuery(self.keywords, self.delta, region, self.k)

    def with_k(self, k: int) -> "LCMSRQuery":
        """Return a copy asking for the top ``k`` regions."""
        return LCMSRQuery(self.keywords, self.delta, self.region, k)
