"""The dense problem-instance substrate: position-indexed solver input.

PR 2–4 made the *inputs* to the solvers array-first (CSR network snapshots, the
columnar σ_v pipeline), but the solvers themselves still ran pure-Python loops
over ``Dict[int, float]`` weights keyed by global node ids — per-hop hashing on
every neighbour visit. :class:`DenseInstance` closes that gap: it renumbers the
query window into contiguous *local positions* and stores everything a solver's
hot loop needs as flat arrays indexed by position:

* ``ids``            — local position → global node id (int64), in window order;
* ``xs / ys``        — node coordinates (float64), aligned with ``ids``;
* ``indptr``         — CSR row pointers (int32), one entry per node plus one;
* ``indices``        — CSR columns as **local positions** (int32);
* ``lengths``        — edge lengths (float64), aligned with ``indices``;
* ``sigma``          — σ_v per position (float64; 0.0 for irrelevant nodes);
* ``relevant_order`` — positions of the weighted nodes in *weight-dict
  iteration order* (int32) — the key to the identity contract below.

On top of the arrays the instance precomputes the aggregates every solver used
to rescan the weight dict for: ``sigma_max``, ``total_weight``, the relevant
positions, and the window's ``tau_max`` (longest edge).

**Identity contract.** The dense substrate is a *representation* change, not an
algorithm change: solvers running on it must return byte-identical results to
the dict reference backend (same regions, same tie-breaks, bit-equal floats).
Three properties make that possible and are load-bearing:

1. **Order preservation** — local positions follow the window graph's node
   iteration order, and per-row neighbour order replicates ``neighbor_items``;
   traversals therefore visit nodes and edges in exactly the reference order.
2. **Dict-order replay** — ``relevant_order`` records the iteration order of
   the source weight dict (the columnar pipeline's node-table order on the hot
   path), so :meth:`weights_dict` re-materialises a dict whose items iterate
   identically, and order-sensitive float accumulations (``total_weight``)
   replay the reference summation order.
3. **Same arithmetic** — vectorised kernels keep the reference expression
   trees (IEEE-754 elementwise ops are exact), so ranks, scaled weights and
   length checks land on the same bits.

Instances are immutable after construction, cheap to share across threads, and
pickle down to their defining arrays (the serving layer caches them instead of
full :class:`~repro.core.instance.ProblemInstance` objects — smaller, and no
per-entry graph copies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

import numpy as np

from repro.exceptions import QueryError
from repro.network.compact import CompactNetwork, GraphView

if TYPE_CHECKING:  # pragma: no cover - typing only (instance imports dense)
    from repro.core.instance import ProblemInstance
    from repro.core.query import LCMSRQuery


class DenseInstance:
    """A window-local, position-indexed view of one solver input.

    Built from a frozen window snapshot plus a node-weight dict — see
    :meth:`from_graph` — and treated as read-only everywhere afterwards.
    """

    __slots__ = (
        "ids",
        "xs",
        "ys",
        "indptr",
        "indices",
        "lengths",
        "sigma",
        "relevant_order",
        "sigma_max",
        "total_weight",
        "tau_max",
        "_relevant_positions",
        "_graph",
        "_ids_list",
        "_sigma_list",
        "_position_of",
    )

    def __init__(
        self,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        lengths: np.ndarray,
        sigma: np.ndarray,
        relevant_order: np.ndarray,
        graph: Optional[CompactNetwork] = None,
    ) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.indptr = np.asarray(indptr, dtype=np.int32)
        self.indices = np.asarray(indices, dtype=np.int32)
        self.lengths = np.asarray(lengths, dtype=np.float64)
        self.sigma = np.asarray(sigma, dtype=np.float64)
        self.relevant_order = np.asarray(relevant_order, dtype=np.int32)
        n = self.ids.shape[0]
        if self.sigma.shape[0] != n:
            raise QueryError("sigma must align with the node table")
        if self.indptr.shape[0] != n + 1:
            raise QueryError("indptr must have num_nodes + 1 entries")
        # Aggregates replay the reference computations exactly: max over floats
        # is exact regardless of order; the total replays the weight-dict
        # iteration order because Python's sum() is sequential.
        if self.relevant_order.size:
            ordered = self.sigma[self.relevant_order]
            self.sigma_max = float(ordered.max())
            self.total_weight = sum(ordered.tolist())
        else:
            self.sigma_max = 0.0
            self.total_weight = 0.0
        self.tau_max = float(self.lengths.max()) if self.lengths.size else 0.0
        self._relevant_positions: Optional[np.ndarray] = None
        self._graph = graph
        self._ids_list: Optional[List[int]] = None
        self._sigma_list: Optional[List[float]] = None
        self._position_of: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_graph(
        cls, graph: GraphView, weights: Mapping[int, float]
    ) -> "DenseInstance":
        """Build the dense substrate for ``graph`` + ``weights``.

        The fast path — a :class:`~repro.network.compact.CompactNetwork` window
        view — shares the snapshot's six arrays and maps the weight keys to
        positions with one vectorised searchsorted; any other
        :class:`~repro.network.compact.GraphView` is frozen first (the fallback
        used when a dict-backed instance is explicitly switched to the dense
        backend).

        Raises:
            QueryError: If a weight key is not a node of ``graph`` (instances
                built by :func:`~repro.core.instance.build_instance` always
                satisfy this).
        """
        compact = (
            graph
            if isinstance(graph, CompactNetwork)
            else CompactNetwork.from_network(graph)
        )
        ids, xs, ys = compact.csr_node_arrays()
        indptr, indices, lengths = compact.csr_index_arrays()
        n = ids.shape[0]
        sigma = np.zeros(n, dtype=np.float64)
        if weights:
            keys = np.fromiter(weights.keys(), dtype=np.int64, count=len(weights))
            values = np.fromiter(weights.values(), dtype=np.float64, count=len(weights))
            order, sorted_ids = compact.id_sort_order()
            slots = np.searchsorted(sorted_ids, keys)
            if (slots >= n).any() or (sorted_ids[np.minimum(slots, n - 1)] != keys).any():
                raise QueryError("node weights reference nodes outside the window graph")
            positions = order[slots].astype(np.int32, copy=False)
            sigma[positions] = values
        else:
            positions = np.empty(0, dtype=np.int32)
        return cls(ids, xs, ys, indptr, indices, lengths, sigma, positions, graph=compact)

    def __reduce__(self):
        # The graph view is rebuilt from the shared arrays on unpickling; only
        # the defining arrays cross process boundaries.
        return (
            DenseInstance,
            (
                self.ids,
                self.xs,
                self.ys,
                self.indptr,
                self.indices,
                self.lengths,
                self.sigma,
                self.relevant_order,
            ),
        )

    # ------------------------------------------------------------------ inspection
    @property
    def num_nodes(self) -> int:
        """``|VQ|``: number of nodes in the window."""
        return int(self.ids.shape[0])

    @property
    def num_edges(self) -> int:
        """``|EQ|``: number of undirected edges in the window."""
        return int(self.indices.shape[0]) // 2

    def relevant_positions(self) -> np.ndarray:
        """Positions with σ_v > 0, in ascending position order (cached)."""
        if self._relevant_positions is None:
            self._relevant_positions = np.flatnonzero(self.sigma > 0.0).astype(
                np.int32, copy=False
            )
        return self._relevant_positions

    def ids_list(self) -> List[int]:
        """Flat Python mirror of :attr:`ids` (hot loops index lists, not arrays)."""
        if self._ids_list is None:
            self._ids_list = self.ids.tolist()
        return self._ids_list

    def sigma_list(self) -> List[float]:
        """Flat Python mirror of :attr:`sigma`."""
        if self._sigma_list is None:
            self._sigma_list = self.sigma.tolist()
        return self._sigma_list

    def position_of(self) -> Dict[int, int]:
        """The global-id → local-position map (built lazily)."""
        if self._position_of is None:
            self._position_of = {
                node_id: index for index, node_id in enumerate(self.ids_list())
            }
        return self._position_of

    # ------------------------------------------------------------------ views
    def graph_view(self) -> CompactNetwork:
        """The window as a :class:`CompactNetwork` (shares the arrays, cached)."""
        if self._graph is None:
            self._graph = CompactNetwork(
                self.ids,
                self.xs,
                self.ys,
                self.indptr,
                self.indices,
                self.lengths,
                validate_ids=False,  # positions were derived from unique ids
            )
        return self._graph

    def weights_dict(self) -> Dict[int, float]:
        """Re-materialise the node-weight dict, in the source dict's order.

        The returned dict iterates exactly like the dict the instance was built
        from (``relevant_order`` recorded it), which is what keeps the dict
        *reference* backend byte-identical when it runs on a rebuilt view.

        Deliberately NOT memoised on the substrate: substrates sit in the
        serving layer's LRU precisely because they carry no per-entry dict, so
        the dict view is cached on the per-query :class:`ProblemInstance`
        wrapper (its ``weights`` property) and dies with it.
        """
        ids = self.ids_list()
        sigma = self.sigma_list()
        return {ids[pos]: sigma[pos] for pos in self.relevant_order.tolist()}

    def to_problem_instance(
        self, query: "LCMSRQuery", pruning: str = "auto"
    ) -> "ProblemInstance":
        """Wrap the substrate into a full :class:`ProblemInstance` for ``query``.

        The weight dict is materialised lazily on first access; the Greedy and
        TGEN dense hot loops never touch it, while APP's quota solver and the
        Exact oracle (deliberate dict-view consumers) rebuild it per wrapper.
        This is how the serving layer's instance cache re-binds one cached
        substrate to many queries.
        """
        from repro.core.instance import ProblemInstance  # deferred: cycle guard

        return ProblemInstance(
            graph=self.graph_view(),
            weights=None,
            query=query,
            build_seconds=0.0,
            dense=self,
            pruning=pruning,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DenseInstance(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"relevant={int(self.relevant_order.size)})"
        )
