"""Result types returned by the LCMSR solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.region import Region


@dataclass(frozen=True)
class RegionResult:
    """The answer to one LCMSR query by one solver.

    Attributes:
        region: The returned region (possibly :meth:`Region.empty` when nothing in the
            query window matches the keywords).
        algorithm: Name of the solver that produced the result ("APP", "TGEN",
            "Greedy", "Exact", ...).
        runtime_seconds: Wall-clock solve time, measured inside the solver.
        scaled_weight: The region's scaled weight ŝ, when the solver scales weights
            (APP, TGEN); ``None`` for Greedy and Exact.
        stats: Free-form solver statistics (iterations, tuples generated, k-MST calls,
            ...). Values are numbers so results can be tabulated directly.
    """

    region: Region
    algorithm: str
    runtime_seconds: float = 0.0
    scaled_weight: Optional[int] = None
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def weight(self) -> float:
        """The region's total weight (0 for an empty result)."""
        return self.region.weight

    @property
    def length(self) -> float:
        """The region's total length (0 for an empty result)."""
        return self.region.length

    @property
    def is_empty(self) -> bool:
        """``True`` when no region was found."""
        return self.region.is_empty


@dataclass(frozen=True)
class TopKResult:
    """The answer to a top-k LCMSR query.

    Attributes:
        results: The k best regions found, in decreasing score order (may contain
            fewer than k entries when the window does not hold k distinct regions).
        algorithm: Name of the solver.
        runtime_seconds: Wall-clock solve time for the whole top-k computation.
        stats: Free-form solver statistics for the whole top-k computation
            (skip/visit counters from bound-based pruning, ...). Values are
            numbers so results can be tabulated directly.
    """

    results: Sequence[RegionResult]
    algorithm: str
    runtime_seconds: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> RegionResult:
        return self.results[index]

    @property
    def best(self) -> Optional[RegionResult]:
        """The highest-ranked region, or ``None`` when empty."""
        return self.results[0] if self.results else None

    def weights(self) -> List[float]:
        """The weights of the returned regions, in rank order."""
        return [result.weight for result in self.results]
