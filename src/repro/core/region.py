"""Regions: connected subgraphs of the road network (paper Definition 2).

A :class:`Region` is the result type returned to users. It records its node set, its
edge set, its total road-segment length and its total weight with respect to the query
it answers. Construction validates connectivity and length consistency, so a region
handed to application code is always well-formed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.exceptions import RegionError
from repro.network.compact import GraphView
from repro.network.graph import edge_key


@dataclass(frozen=True)
class Region:
    """A connected subgraph of the road network with query-dependent weight.

    Attributes:
        nodes: The region's node identifiers (``R.V``).
        edges: The region's undirected edges as normalised ``(u, v)`` pairs (``R.E``).
        length: Total road-segment length of the region's edges.
        weight: Total weight ``Score(R, Q)`` of the region's nodes w.r.t. the query.
    """

    nodes: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]]
    length: float
    weight: float

    # ------------------------------------------------------------------ constructors
    @staticmethod
    def from_nodes_edges(
        graph: GraphView,
        nodes: Iterable[int],
        edges: Iterable[Tuple[int, int]],
        weights: Mapping[int, float],
        validate: bool = True,
    ) -> "Region":
        """Build a region from explicit node and edge sets.

        Args:
            graph: The road network the region lives in (used for edge lengths and
                validation).
            nodes: Node identifiers of the region.
            edges: Edges of the region, as ``(u, v)`` pairs in either orientation.
            weights: Per-node query weights σ_v; missing nodes contribute 0.
            validate: When ``True`` (default), verify the region is a connected
                subgraph of ``graph`` whose edges connect region nodes.

        Raises:
            RegionError: If validation fails.
        """
        node_set = frozenset(nodes)
        edge_set = frozenset(edge_key(u, v) for u, v in edges)
        length = 0.0
        for u, v in edge_set:
            if validate and not graph.has_edge(u, v):
                raise RegionError(f"edge ({u}, {v}) is not in the road network")
            if validate and (u not in node_set or v not in node_set):
                raise RegionError(f"edge ({u}, {v}) has an endpoint outside the region")
            length += graph.edge_length(u, v)
        weight = sum(weights.get(node_id, 0.0) for node_id in node_set)
        region = Region(nodes=node_set, edges=edge_set, length=length, weight=weight)
        if validate:
            region.validate(graph)
        return region

    @staticmethod
    def single_node(node_id: int, weight: float) -> "Region":
        """Build a region consisting of a single node (length 0)."""
        return Region(frozenset({node_id}), frozenset(), 0.0, weight)

    @staticmethod
    def empty() -> "Region":
        """Build the empty region (no nodes, weight 0). Returned when nothing matches."""
        return Region(frozenset(), frozenset(), 0.0, 0.0)

    # ------------------------------------------------------------------ inspection
    @property
    def is_empty(self) -> bool:
        """``True`` if the region contains no nodes."""
        return not self.nodes

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the region."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges in the region."""
        return len(self.edges)

    def contains_node(self, node_id: int) -> bool:
        """Return ``True`` if ``node_id`` is part of the region."""
        return node_id in self.nodes

    def is_connected(self) -> bool:
        """Return ``True`` if the region's nodes are connected through its edges.

        The empty region and single-node regions are connected by convention.
        """
        if len(self.nodes) <= 1:
            return True
        adjacency: Dict[int, Set[int]] = {node: set() for node in self.nodes}
        for u, v in self.edges:
            if u in adjacency and v in adjacency:
                adjacency[u].add(v)
                adjacency[v].add(u)
        start = next(iter(self.nodes))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self.nodes)

    def is_tree(self) -> bool:
        """Return ``True`` if the region is a tree (connected and |E| = |V| - 1)."""
        if self.is_empty:
            return True
        return self.is_connected() and len(self.edges) == len(self.nodes) - 1

    def validate(self, graph: GraphView) -> None:
        """Verify the region is a connected subgraph of ``graph``.

        Raises:
            RegionError: On any violation (unknown node/edge, dangling edge endpoint,
                disconnected node set, or a length that does not match the sum of the
                edge lengths).
        """
        for node_id in self.nodes:
            if node_id not in graph:
                raise RegionError(f"region node {node_id} is not in the road network")
        total = 0.0
        for u, v in self.edges:
            if not graph.has_edge(u, v):
                raise RegionError(f"region edge ({u}, {v}) is not in the road network")
            if u not in self.nodes or v not in self.nodes:
                raise RegionError(f"region edge ({u}, {v}) has an endpoint outside the region")
            total += graph.edge_length(u, v)
        if abs(total - self.length) > 1e-6 * max(1.0, abs(total)):
            raise RegionError(
                f"region length {self.length} does not match its edges' total {total}"
            )
        if not self.is_connected():
            raise RegionError("region is not connected")

    def satisfies(self, delta: float) -> bool:
        """Return ``True`` if the region's length is within the constraint ``delta``."""
        return self.length <= delta + 1e-9

    def overlap_nodes(self, other: "Region") -> int:
        """Return the number of nodes shared with another region."""
        return len(self.nodes & other.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Region(nodes={len(self.nodes)}, edges={len(self.edges)}, "
            f"length={self.length:.3f}, weight={self.weight:.3f})"
        )
