"""Admissible upper bounds over the columnar index's per-cell aggregates.

The bound subsystem lets consumers *skip* work — windows with no score mass,
search branches that cannot beat an incumbent, edges whose endpoints carry no
scaled weight — without ever changing the arithmetic of the work that is kept.
Every bound here is **admissible**: it is greater than or equal to the true best
achievable value it bounds, for every query, so a skip licensed by a bound can
never remove a result the unpruned reference path would have produced. The
parity suite (``tests/core/test_pruning_parity.py``) checks the end-to-end
consequence — byte-identical results pruned vs unpruned — and
``tests/core/test_bounds.py`` checks admissibility of the bounds themselves on
randomized instances.

Construction of the aggregates lives in
:func:`repro.textindex.columnar._bound_aggregate_arrays` (build time, persisted
as format-version-3 columns); this module only reads them. Three per-cell
aggregates exist per scoring mode:

* ``cell_sigma_mass`` — Σ of guarded per-object potentials by *object* cell.
  Bounds the total σ-mass any query can collect from objects located in a cell.
* ``cell_sigma_max`` — max guarded per-node potential by *node* cell. Bounds
  the largest single σ_v any query can realise at a node in the cell.
* ``cell_node_mass`` — Σ of guarded per-node potentials by *node* cell. Bounds
  the total σ-mass of any node subset inside the cell.

All aggregates are non-negative, so sums of cell values over a covering cell
range are themselves computed as plain block sums — never as subtractions of
prefix sums, which could cancel catastrophically and produce a spuriously small
(inadmissible) bound. A covering range may over-include geometry near cell
boundaries; over-inclusion only raises the bound, which is safe.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import IndexError_
from repro.network.subgraph import Rectangle
from repro.textindex.columnar import BOUND_MODES, ColumnarScoringIndex


def positive_suffix_potentials(weights: Sequence[float]) -> List[float]:
    """Return ``suffix[i] = Σ_{j ≥ i} max(weights[j], 0)``, accumulated right-to-left.

    The accumulation is sequential float addition of non-negative terms, so each
    ``suffix[i] ≥ suffix[i+1]`` holds *exactly* in float arithmetic
    (``fl(a + b) ≥ b`` for ``a ≥ 0``), and ``suffix[i] == 0.0`` exactly when
    every remaining weight is ``≤ 0``. Branch-and-bound code relies on both
    properties.
    """
    suffix = [0.0] * (len(weights) + 1)
    for i in range(len(weights) - 1, -1, -1):
        w = weights[i]
        suffix[i] = suffix[i + 1] + (w if w > 0.0 else 0.0)
    return suffix


class UpperBoundIndex:
    """Read-only view over one scoring mode's cell aggregates, exposing bounds.

    Use :meth:`from_columnar` to construct one; :class:`WeightPipeline
    <repro.textindex.columnar.WeightPipeline>` caches an instance per pipeline
    under its ``bounds`` property.
    """

    def __init__(
        self,
        resolution: int,
        min_x: float,
        min_y: float,
        cell_w: float,
        cell_h: float,
        sigma_mass: np.ndarray,
        sigma_max: np.ndarray,
        node_mass: np.ndarray,
        obj_count: np.ndarray,
        post_count: np.ndarray,
        node_cell: np.ndarray,
    ) -> None:
        self.resolution = int(resolution)
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.cell_w = float(cell_w)
        self.cell_h = float(cell_h)
        shape = (self.resolution, self.resolution)
        self.sigma_mass = np.asarray(sigma_mass).reshape(shape)
        self.sigma_max = np.asarray(sigma_max).reshape(shape)
        self.node_mass = np.asarray(node_mass).reshape(shape)
        self.obj_count = np.asarray(obj_count).reshape(shape)
        self.post_count = np.asarray(post_count).reshape(shape)
        self.node_cell = np.asarray(node_cell)

    @classmethod
    def from_columnar(cls, index: ColumnarScoringIndex, mode) -> "UpperBoundIndex":
        """Build the bound view for ``mode`` from an index's persisted aggregates."""
        mode_value = getattr(mode, "value", mode)
        try:
            row = BOUND_MODES.index(mode_value)
        except ValueError:
            raise IndexError_(
                f"no bound aggregates for scoring mode {mode_value!r}; "
                f"expected one of {BOUND_MODES}"
            ) from None
        meta = np.asarray(index.bound_meta, dtype=np.float64)
        return cls(
            resolution=int(meta[0]),
            min_x=float(meta[1]),
            min_y=float(meta[2]),
            cell_w=float(meta[3]),
            cell_h=float(meta[4]),
            sigma_mass=index.cell_sigma_mass[row],
            sigma_max=index.cell_sigma_max[row],
            node_mass=index.cell_node_mass[row],
            obj_count=index.cell_obj_count,
            post_count=index.cell_post_count,
            node_cell=index.node_cell,
        )

    # ------------------------------------------------------------------ geometry
    def _cell_span(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> Tuple[int, int, int, int]:
        """Return the clamped ``(r0, r1, c0, c1)`` cell range covering a rectangle.

        The range is a *superset* of the cells any covered point can land in:
        the clamping mirrors the build-time ``np.clip``, which folds
        out-of-extent geometry into the border cells, so block aggregates over
        the span are admissible.
        """
        last = self.resolution - 1
        c0 = min(max(int((min_x - self.min_x) / self.cell_w), 0), last)
        c1 = min(max(int((max_x - self.min_x) / self.cell_w), 0), last)
        r0 = min(max(int((min_y - self.min_y) / self.cell_h), 0), last)
        r1 = min(max(int((max_y - self.min_y) / self.cell_h), 0), last)
        return r0, r1, c0, c1

    # ------------------------------------------------------------------ bounds
    def window_mass_bound(self, window: Rectangle) -> float:
        """Upper bound on the total σ-mass of objects inside ``window``.

        A direct block sum of non-negative cell masses over the covering cell
        range — in particular it is exactly ``0.0`` iff every covered cell holds
        only zero-potential objects, which licences the instance builder's
        zero-mass window skip.
        """
        r0, r1, c0, c1 = self._cell_span(
            window.min_x, window.min_y, window.max_x, window.max_y
        )
        return float(self.sigma_mass[r0 : r1 + 1, c0 : c1 + 1].sum())

    def window_max_bound(self, window: Rectangle) -> float:
        """Upper bound on the largest single node weight σ_v inside ``window``."""
        r0, r1, c0, c1 = self._cell_span(
            window.min_x, window.min_y, window.max_x, window.max_y
        )
        block = self.sigma_max[r0 : r1 + 1, c0 : c1 + 1]
        return float(block.max()) if block.size else 0.0

    def ball_mass_bound(self, x: float, y: float, radius: float) -> float:
        """Upper bound on the total σ-mass of *nodes* within ``radius`` of a point.

        Uses the bounding square of the δ-ball (a superset) over the node-mass
        aggregate; any region whose nodes all lie within network distance
        ``radius`` of ``(x, y)`` also lies within Euclidean distance ``radius``,
        so this bounds the σ-mass of every such region.
        """
        r0, r1, c0, c1 = self._cell_span(x - radius, y - radius, x + radius, y + radius)
        return float(self.node_mass[r0 : r1 + 1, c0 : c1 + 1].sum())

    def edge_set_mass_bound(self, endpoints: Sequence[Tuple[float, float]]) -> float:
        """Upper bound on the σ-mass of any region built on the given edge endpoints.

        Sums the node-mass aggregate over the *distinct* cells the endpoints
        touch — every node of a region grown from these endpoints lives in one
        of those cells only if the region stays within them, so callers must
        pass the endpoints of every candidate edge they may use.
        """
        seen: Dict[int, float] = {}
        last = self.resolution - 1
        for x, y in endpoints:
            cx = min(max(int((x - self.min_x) / self.cell_w), 0), last)
            cy = min(max(int((y - self.min_y) / self.cell_h), 0), last)
            key = cy * self.resolution + cx
            if key not in seen:
                seen[key] = float(self.node_mass[cy, cx])
        return float(sum(seen.values()))

    def partial_region_bound(
        self, weight_so_far: float, x: float, y: float, remaining_budget: float
    ) -> float:
        """Upper bound on the final weight of a partial region.

        ``weight_so_far`` plus the σ-mass reachable within ``remaining_budget``
        of the partial region's frontier point ``(x, y)``. Admissible because
        any extension's new nodes lie within the budget ball and their total
        weight is at most the ball's node-mass bound.
        """
        return weight_so_far + self.ball_mass_bound(x, y, remaining_budget)

    # ------------------------------------------------------------------ counts
    def window_object_count(self, window: Rectangle) -> int:
        """Upper bound on the number of mapped objects inside ``window``."""
        r0, r1, c0, c1 = self._cell_span(
            window.min_x, window.min_y, window.max_x, window.max_y
        )
        return int(self.obj_count[r0 : r1 + 1, c0 : c1 + 1].sum())

    def window_posting_count(self, window: Rectangle) -> int:
        """Upper bound on the number of postings of mapped objects inside ``window``."""
        r0, r1, c0, c1 = self._cell_span(
            window.min_x, window.min_y, window.max_x, window.max_y
        )
        return int(self.post_count[r0 : r1 + 1, c0 : c1 + 1].sum())
