"""Goemans–Williamson primal–dual prize-collecting Steiner tree (PCST).

Garg's 3-approximation for the (node-weighted) k-MST problem — the black-box solver
the paper's APP algorithm relies on (Section 4.2, reference [8]) — is built on the
Goemans–Williamson general approximation technique for constrained forest problems
(reference [9]). This module implements the unrooted GW moat-growing algorithm for the
prize-collecting Steiner tree problem, plus the "strong pruning" dynamic program that
extracts the best subtree of a GW tree. :mod:`repro.core.kmst` wraps these into the
quota solver (``find a tree with node weight at least X of small length``) used by
APP's binary search.

The implementation works on an abstract undirected graph given as an edge list, so it
can be run both on road networks directly and on the terminal metric-closure graphs
the quota solver builds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import SolverError

_EPS = 1e-12


@dataclass
class PCSTResult:
    """The output of the GW growth phase plus pruning.

    Attributes:
        trees: Each tree as a ``(nodes, edges)`` pair, where ``edges`` is a list of
            ``(u, v, cost)`` triples. Trees are node-disjoint.
        total_prize: Sum of prizes of nodes covered by the trees.
        total_cost: Sum of edge costs of the trees.
    """

    trees: List[Tuple[Set[int], List[Tuple[int, int, float]]]]
    total_prize: float
    total_cost: float

    def best_tree(
        self, prizes: Mapping[int, float]
    ) -> Tuple[Set[int], List[Tuple[int, int, float]]]:
        """Return the tree with the largest collected prize (empty tree if none)."""
        if not self.trees:
            return (set(), [])
        return max(self.trees, key=lambda tree: sum(prizes.get(v, 0.0) for v in tree[0]))


class _DisjointSet:
    """Union-find over integer node ids with path compression and union by size."""

    def __init__(self, nodes: Iterable[int]) -> None:
        self._parent: Dict[int, int] = {v: v for v in nodes}
        self._size: Dict[int, int] = {v: 1 for v in self._parent}

    def find(self, v: int) -> int:
        root = v
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[v] != root:
            self._parent[v], v = root, self._parent[v]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra


def goemans_williamson_pcst(
    nodes: Iterable[int],
    edges: Sequence[Tuple[int, int, float]],
    prizes: Mapping[int, float],
) -> PCSTResult:
    """Run unrooted GW moat growing followed by strong pruning.

    Args:
        nodes: The graph's node identifiers.
        edges: Undirected edges as ``(u, v, cost)`` triples with non-negative costs.
        prizes: Non-negative node prizes; missing nodes have prize 0.

    Returns:
        A :class:`PCSTResult` whose trees are the strong-pruned components of the GW
        forest. Single high-prize nodes appear as single-node trees.

    Raises:
        SolverError: On negative edge costs or prizes.
    """
    node_list = list(dict.fromkeys(nodes))
    if not node_list:
        return PCSTResult(trees=[], total_prize=0.0, total_cost=0.0)
    for u, v, cost in edges:
        if cost < 0:
            raise SolverError(f"negative edge cost on ({u}, {v}): {cost}")
    for v, prize in prizes.items():
        if prize < 0:
            raise SolverError(f"negative prize on node {v}: {prize}")

    components = _DisjointSet(node_list)
    # Per-component state, keyed by current representative.
    active: Dict[int, bool] = {}
    remaining: Dict[int, float] = {}
    members: Dict[int, List[int]] = {}
    for v in node_list:
        prize = float(prizes.get(v, 0.0))
        active[v] = prize > _EPS
        remaining[v] = prize
        members[v] = [v]
    potential: Dict[int, float] = {v: 0.0 for v in node_list}

    forest_edges: List[Tuple[int, int, float]] = []
    # The growth loop: every iteration either merges two components or deactivates one,
    # so it runs at most 2 * |V| times.
    max_iterations = 2 * len(node_list) + 4
    for _ in range(max_iterations):
        active_roots = [r for r, flag in active.items() if flag]
        if not active_roots:
            break

        # Next edge event.
        best_edge_dt = math.inf
        best_edge: Optional[Tuple[int, int, float]] = None
        for u, v, cost in edges:
            ru, rv = components.find(u), components.find(v)
            if ru == rv:
                continue
            rate = (1 if active.get(ru, False) else 0) + (1 if active.get(rv, False) else 0)
            if rate == 0:
                continue
            slack = cost - potential[u] - potential[v]
            dt = max(0.0, slack) / rate
            if dt < best_edge_dt - _EPS:
                best_edge_dt = dt
                best_edge = (u, v, cost)

        # Next deactivation event.
        best_deact_dt = math.inf
        best_deact_root: Optional[int] = None
        for root in active_roots:
            if remaining[root] < best_deact_dt - _EPS:
                best_deact_dt = remaining[root]
                best_deact_root = root

        dt = min(best_edge_dt, best_deact_dt)
        if not math.isfinite(dt):
            break

        # Advance time: grow every active moat by dt.
        if dt > 0:
            for root in active_roots:
                remaining[root] -= dt
                for member in members[root]:
                    potential[member] += dt

        if best_edge is not None and best_edge_dt <= best_deact_dt + _EPS:
            u, v, cost = best_edge
            ru, rv = components.find(u), components.find(v)
            if ru != rv:
                forest_edges.append((u, v, cost))
                new_root = components.union(ru, rv)
                other = rv if new_root == ru else ru
                merged_remaining = remaining[ru] + remaining[rv]
                merged_members = members[ru] + members[rv]
                merged_active = merged_remaining > _EPS
                for stale in (ru, rv):
                    active.pop(stale, None)
                    remaining.pop(stale, None)
                    members.pop(stale, None)
                active[new_root] = merged_active
                remaining[new_root] = merged_remaining
                members[new_root] = merged_members
        else:
            assert best_deact_root is not None
            active[best_deact_root] = False
            remaining[best_deact_root] = 0.0

    # Split the forest into its connected components and strong-prune each.
    trees = _forest_components(node_list, forest_edges)
    pruned: List[Tuple[Set[int], List[Tuple[int, int, float]]]] = []
    covered: Set[int] = set()
    for tree_nodes, tree_edges in trees:
        kept_nodes, kept_edges = strong_prune(tree_nodes, tree_edges, prizes)
        if kept_nodes:
            pruned.append((kept_nodes, kept_edges))
            covered |= kept_nodes
    # Isolated nodes with positive prize are valid single-node trees.
    for v in node_list:
        if v not in covered and prizes.get(v, 0.0) > _EPS:
            pruned.append(({v}, []))
            covered.add(v)

    total_prize = sum(prizes.get(v, 0.0) for tree in pruned for v in tree[0])
    total_cost = sum(cost for tree in pruned for _, _, cost in tree[1])
    return PCSTResult(trees=pruned, total_prize=total_prize, total_cost=total_cost)


def _forest_components(
    nodes: Sequence[int], forest_edges: Sequence[Tuple[int, int, float]]
) -> List[Tuple[Set[int], List[Tuple[int, int, float]]]]:
    """Group forest edges into connected components (isolated nodes are skipped)."""
    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for u, v, cost in forest_edges:
        adjacency.setdefault(u, []).append((v, cost))
        adjacency.setdefault(v, []).append((u, cost))
    seen: Set[int] = set()
    components: List[Tuple[Set[int], List[Tuple[int, int, float]]]] = []
    for start in adjacency:
        if start in seen:
            continue
        component_nodes: Set[int] = {start}
        component_edges: List[Tuple[int, int, float]] = []
        stack = [start]
        seen.add(start)
        while stack:
            current = stack.pop()
            for neighbor, cost in adjacency[current]:
                if (current, neighbor) < (neighbor, current):
                    component_edges.append((current, neighbor, cost))
                if neighbor not in seen:
                    seen.add(neighbor)
                    component_nodes.add(neighbor)
                    stack.append(neighbor)
        components.append((component_nodes, component_edges))
    return components


def strong_prune(
    tree_nodes: Set[int],
    tree_edges: Sequence[Tuple[int, int, float]],
    prizes: Mapping[int, float],
    root: Optional[int] = None,
) -> Tuple[Set[int], List[Tuple[int, int, float]]]:
    """Optimally prune a tree: keep the subtree maximising prize minus cost.

    This is the "strong pruning" dynamic program: rooted at the highest-prize node (or
    the given ``root``), a child subtree is kept only if its net value (collected prize
    minus the cost of reaching it) is positive. The result is connected and contains
    the root.

    Args:
        tree_nodes: Nodes of the tree.
        tree_edges: Edges of the tree as ``(u, v, cost)`` triples.
        prizes: Node prizes.
        root: Optional root; defaults to the node with the largest prize.

    Returns:
        ``(kept_nodes, kept_edges)``. If the tree is empty, returns empty sets.
    """
    if not tree_nodes:
        return (set(), [])
    adjacency: Dict[int, List[Tuple[int, float]]] = {v: [] for v in tree_nodes}
    for u, v, cost in tree_edges:
        adjacency[u].append((v, cost))
        adjacency[v].append((u, cost))
    if root is None:
        root = max(tree_nodes, key=lambda v: (prizes.get(v, 0.0), -v))

    # Iterative post-order DP to avoid recursion limits on path-like trees.
    parent: Dict[int, Optional[int]] = {root: None}
    parent_cost: Dict[int, float] = {}
    order: List[int] = []
    stack = [root]
    seen = {root}
    while stack:
        current = stack.pop()
        order.append(current)
        for neighbor, cost in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                parent[neighbor] = current
                parent_cost[neighbor] = cost
                stack.append(neighbor)

    net_value: Dict[int, float] = {}
    kept_children: Dict[int, List[int]] = {v: [] for v in tree_nodes}
    for v in reversed(order):
        value = float(prizes.get(v, 0.0))
        for neighbor, cost in adjacency[v]:
            if parent.get(neighbor) == v:
                child_gain = net_value[neighbor] - cost
                if child_gain > _EPS:
                    value += child_gain
                    kept_children[v].append(neighbor)
        net_value[v] = value

    kept_nodes: Set[int] = set()
    kept_edges: List[Tuple[int, int, float]] = []
    stack = [root]
    while stack:
        current = stack.pop()
        kept_nodes.add(current)
        for child in kept_children[current]:
            kept_edges.append((current, child, parent_cost[child]))
            stack.append(child)
    return (kept_nodes, kept_edges)
