"""TGEN: the tuple-generation heuristic (paper Section 5, Algorithm 2).

TGEN extends the findOptTree dynamic program from trees to the whole (scaled) query
window graph. Every node maintains an *explored region tuple array* (Definition 6):
for each scaled weight value, the shortest enumerated feasible region containing the
node. The algorithm traverses the window in breadth-first order, processes every edge
exactly once, and when processing an edge ``(vi, vj)`` combines every stored region of
``vi`` with every stored region of ``vj`` through that edge — skipping combinations
that would create a cycle (Lemma 9) or exceed the length constraint. Because only the
shortest region per (node, scaled weight) pair is kept, the enumeration is bounded by
``O(|EQ| · Tmax²)`` while possibly discarding the optimum — TGEN is a heuristic, but
the paper (and our benchmarks) find it the most accurate of the three algorithms.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.anytime import annotate_anytime_stats
from repro.core.dense import DenseInstance
from repro.core.instance import ProblemInstance
from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.core.scaling import ScalingContext
from repro.core.tuples import EPS, RegionTuple, TupleArray, make_region_tuple
from repro.exceptions import SolverError
from repro.network.graph import edge_key


class TGENSolver:
    """The paper's TGEN algorithm.

    Args:
        alpha: Scaling parameter α. TGEN uses much larger values than APP (the paper
            sweeps 50–1600 and settles on 400 for NY / 300 for USANW) because every
            node in the window keeps a tuple array, so the arrays must stay small.
        max_tuples_per_node: Optional hard cap on tuples stored per node (an ablation
            knob, see ``bench_ablation_tuple_cap``; ``None`` reproduces the paper).
        edge_order: ``"bfs"`` (the paper's choice) or ``"length"`` (ascending edge
            length, the alternative the paper reports as no more accurate but slower).
    """

    name = "TGEN"

    #: Number of scaled-weight buckets targeted when ``alpha`` is left on automatic.
    #: The paper's settings (α = 400 on NY with tens of thousands of window nodes)
    #: correspond to coarse buckets; 32 reproduces that resolution regardless of the
    #: dataset scale while keeping pure-Python runtimes practical.
    AUTO_BUCKETS = 32

    def __init__(
        self,
        alpha: Optional[float] = None,
        max_tuples_per_node: Optional[int] = None,
        edge_order: str = "bfs",
    ) -> None:
        if alpha is not None and alpha <= 0:
            raise SolverError(f"alpha must be positive, got {alpha}")
        if edge_order not in ("bfs", "length"):
            raise SolverError(f"edge_order must be 'bfs' or 'length', got {edge_order!r}")
        self.alpha = alpha
        self.max_tuples_per_node = max_tuples_per_node
        self.edge_order = edge_order

    def _effective_alpha(self, instance: ProblemInstance) -> float:
        """Resolve the scaling parameter: explicit α, or scale-matched automatic."""
        if self.alpha is not None:
            return self.alpha
        return ScalingContext.alpha_for_buckets(
            max(1, instance.num_candidate_nodes), self.AUTO_BUCKETS
        )

    # ------------------------------------------------------------------ public API
    def solve(self, instance: ProblemInstance) -> RegionResult:
        """Answer an LCMSR query by tuple-generation over the window graph.

        Args:
            instance: The windowed, weighted problem instance to solve.

        Returns:
            The best enumerated region (with tuple/edge counters in ``stats``);
            an empty result when no node in the window is relevant.
        """
        start = time.perf_counter()
        best, _, stats = self._run(instance, collect_pool=False)
        runtime = time.perf_counter() - start
        annotate_anytime_stats(instance, best.weight if best else 0.0, stats)
        if best is None:
            return RegionResult(Region.empty(), self.name, runtime, stats=stats)
        return RegionResult(
            region=best.to_region(),
            algorithm=self.name,
            runtime_seconds=runtime,
            scaled_weight=best.scaled_weight,
            stats=stats,
        )

    def solve_topk(self, instance: ProblemInstance, k: Optional[int] = None) -> TopKResult:
        """Answer a top-k LCMSR query by ranking the tuples of all node arrays.

        Args:
            instance: The windowed, weighted problem instance to solve.
            k: Number of distinct regions to return; ``instance.query.k`` when
                omitted.

        Returns:
            Up to ``k`` distinct regions in decreasing score order.
        """
        start = time.perf_counter()
        k = k or instance.query.k
        best, pool, stats = self._run(
            instance, collect_pool=True, pool_size=max(64, 16 * k)
        )
        runtime = time.perf_counter() - start
        annotate_anytime_stats(instance, best.weight if best else 0.0, stats)
        quality = {key: value for key, value in stats.items()
                   if key.startswith("quality_") or key == "budget_expired"}
        if best is None:
            return TopKResult([], self.name, runtime, stats=quality)
        ranked = _rank_distinct(pool, k)
        results = [
            RegionResult(t.to_region(), self.name, runtime, scaled_weight=t.scaled_weight)
            for t in ranked
        ]
        return TopKResult(results, self.name, runtime, stats=quality)

    # ------------------------------------------------------------------ core loop
    def _run(
        self,
        instance: ProblemInstance,
        collect_pool: bool,
        pool_size: int = 0,
    ) -> Tuple[Optional[RegionTuple], List[RegionTuple], Dict[str, float]]:
        stats: Dict[str, float] = {"tuples_generated": 0.0, "edges_processed": 0.0}
        if not instance.has_relevant_nodes or instance.num_candidate_nodes == 0:
            return None, [], stats
        dense = instance.dense_view()
        if dense is not None:
            return self._run_dense(instance, dense, collect_pool, pool_size)
        graph = instance.graph
        delta = instance.query.delta
        scaling = ScalingContext.build(
            instance.weights, instance.num_candidate_nodes, self._effective_alpha(instance)
        )
        scaled = scaling.scale_weights(instance.weights)

        arrays: Dict[int, TupleArray] = {}
        best: Optional[RegionTuple] = None
        pool: List[RegionTuple] = []
        pool_keys: Set[frozenset] = set()
        for node_id in graph.node_ids():
            array = TupleArray()
            singleton = RegionTuple.singleton(
                node_id, instance.weights.get(node_id, 0.0), scaled.get(node_id, 0)
            )
            array.update(singleton)
            arrays[node_id] = array
            if singleton.better_than(best):
                best = singleton
            if collect_pool and singleton.scaled_weight > 0:
                _pool_add(pool, pool_keys, singleton, pool_size)

        processed_nodes: Set[int] = set()
        visited_edges: Set[Tuple[int, int]] = set()
        visited_nodes: Set[int] = set()
        budget = instance.budget
        expired = False

        for start_node in self._start_nodes(instance):
            if expired:
                break
            if start_node in visited_nodes:
                continue
            visited_nodes.add(start_node)
            queue: List[int] = [start_node]
            head = 0
            while head < len(queue) and not expired:
                vi = queue[head]
                head += 1
                for vj, edge_length in self._incident_edges(instance, vi):
                    # Cooperative deadline, polled once per edge: on expiry the
                    # traversal stops and the incumbent best-so-far is returned.
                    if budget is not None and budget.expired():
                        stats["budget_expired"] = 1.0
                        expired = True
                        break
                    key = (vi, vj) if vi <= vj else (vj, vi)
                    if key in visited_edges:
                        continue
                    visited_edges.add(key)
                    if vj not in visited_nodes:
                        visited_nodes.add(vj)
                        queue.append(vj)
                    if edge_length > delta:
                        continue
                    stats["edges_processed"] += 1
                    new_tuples: List[RegionTuple] = []
                    for tuple_i in arrays[vi].tuples():
                        for tuple_j in arrays[vj].tuples():
                            if tuple_i.length + tuple_j.length + edge_length > delta + 1e-12:
                                continue
                            if tuple_i.shares_nodes_with(tuple_j):
                                continue
                            combined = tuple_i.combine(tuple_j, vi, vj, edge_length)
                            new_tuples.append(combined)
                    stats["tuples_generated"] += len(new_tuples)
                    for combined in new_tuples:
                        if combined.better_than(best):
                            best = combined
                        if collect_pool:
                            _pool_add(pool, pool_keys, combined, pool_size)
                        for member in combined.nodes:
                            if member in processed_nodes:
                                continue
                            array = arrays[member]
                            array.update(combined)
                            if (
                                self.max_tuples_per_node is not None
                                and len(array) > self.max_tuples_per_node
                            ):
                                _evict_worst(array, self.max_tuples_per_node)
                processed_nodes.add(vi)
        return best, pool, stats

    # ------------------------------------------------------------------ dense hot loop
    #: Pair-count threshold above which per-edge feasibility is prefiltered with a
    #: vectorised outer sum instead of per-pair Python float arithmetic.
    _PREFILTER_PAIRS = 32

    def _run_dense(
        self,
        instance: ProblemInstance,
        dense: DenseInstance,
        collect_pool: bool,
        pool_size: int = 0,
    ) -> Tuple[Optional[RegionTuple], List[RegionTuple], Dict[str, float]]:
        """Array-first twin of :meth:`_run` over local node positions.

        The region/tuple logic (Definition 6 arrays, Lemma 9 disjointness, the
        combine rule) is byte-for-byte the reference code; what is arrayified is
        the scaffolding around it: scaled weights come from one vectorised pass,
        the BFS runs over CSR positions with flat visited tables and packed edge
        keys instead of id-keyed sets, and per-edge tuple combinations are
        prefiltered by a vectorised feasibility mask ``(l_i + l_j) + τ ≤ Q.∆``
        that enumerates surviving pairs in the reference (i-major) order.

        When the instance allows pruning (and no top-k pool is collected — the
        pool deliberately admits zero-scaled tuples), an edge is skipped whole
        once the incumbent has positive scaled weight and *both* endpoint
        arrays hold only zero-scaled tuples: every combination such an edge can
        generate has scaled weight 0 (tuple scaled weights are sums of member
        scaled weights), cannot beat the incumbent, and cannot displace any
        stored tuple (each member of a zero-scaled tuple is itself zero-scaled,
        so its array's key-0 slot holds the length-0 singleton, which a
        positive-length combination never beats). ``max_scaled`` tracks a
        monotone per-position upper bound on each array's largest key — it is
        not lowered on eviction, which only forgoes skips, never unsoundly
        takes one.
        """
        stats: Dict[str, float] = {}
        delta = instance.query.delta
        delta_eps = delta + 1e-12
        n = instance.num_candidate_nodes
        scaling = ScalingContext.from_sigma_max(
            instance.sigma_max(), n, self._effective_alpha(instance)
        )
        scaled_list = scaling.scale_array(dense.sigma).tolist()
        sigma_list = dense.sigma_list()
        ids_list = dense.ids_list()
        # Shared cached list mirrors of the window CSR (built once per window,
        # reused across solves of the same cached substrate).
        indptr, columns, _, lengths, _ = dense.graph_view().adjacency_arrays()

        arrays_by_pos: List[TupleArray] = []
        arrays: Dict[int, TupleArray] = {}
        best: Optional[RegionTuple] = None
        pool: List[RegionTuple] = []
        pool_keys: Set[frozenset] = set()
        for pos in range(n):
            node_id = ids_list[pos]
            array = TupleArray()
            singleton = RegionTuple.singleton(node_id, sigma_list[pos], scaled_list[pos])
            array.update(singleton)
            arrays_by_pos.append(array)
            arrays[node_id] = array
            if singleton.better_than(best):
                best = singleton
            if collect_pool and singleton.scaled_weight > 0:
                _pool_add(pool, pool_keys, singleton, pool_size)

        processed_nodes: Set[int] = set()
        visited_edges: Set[int] = set()
        visited = bytearray(n)
        edges_processed = 0
        edges_skipped = 0
        tuples_generated = 0
        max_tuples = self.max_tuples_per_node
        budget = instance.budget
        expired = False
        prune = instance.pruning_enabled and not collect_pool
        position_of = dense.position_of() if prune else None
        # Per-position upper bound on the largest scaled key stored in the
        # node's array (exact until an eviction, stale-high after — safe).
        max_scaled: List[int] = list(scaled_list) if prune else []

        # Traversal seeds: every node, relevant (weighted) nodes first — the
        # position-space equivalent of _start_nodes' sort by (-σ_v, node id).
        start_order = np.lexsort((dense.ids, -dense.sigma)).tolist()
        for start_pos in start_order:
            if expired:
                break
            if visited[start_pos]:
                continue
            visited[start_pos] = 1
            queue: List[int] = [start_pos]
            head = 0
            while head < len(queue) and not expired:
                vi = queue[head]
                head += 1
                vi_id = ids_list[vi]
                array_i = arrays_by_pos[vi]
                slots = range(indptr[vi], indptr[vi + 1])
                if self.edge_order == "length":
                    slots = sorted(slots, key=lambda slot: lengths[slot])
                for slot in slots:
                    if budget is not None and budget.expired():
                        stats["budget_expired"] = 1.0
                        expired = True
                        break
                    vj = columns[slot]
                    key = vi * n + vj if vi <= vj else vj * n + vi
                    if key in visited_edges:
                        continue
                    visited_edges.add(key)
                    if not visited[vj]:
                        visited[vj] = 1
                        queue.append(vj)
                    edge_length = lengths[slot]
                    if edge_length > delta:
                        continue
                    if (
                        prune
                        and best is not None
                        and best.scaled_weight > 0
                        and max_scaled[vi] == 0
                        and max_scaled[vj] == 0
                    ):
                        edges_skipped += 1
                        continue
                    edges_processed += 1
                    vj_id = ids_list[vj]
                    edge_pair = edge_key(vi_id, vj_id)
                    tuples_i = array_i.tuples()
                    tuples_j = arrays_by_pos[vj].tuples()
                    if len(tuples_i) * len(tuples_j) >= self._PREFILTER_PAIRS:
                        lengths_i = np.fromiter(
                            (t.length for t in tuples_i), np.float64, len(tuples_i)
                        )
                        lengths_j = np.fromiter(
                            (t.length for t in tuples_j), np.float64, len(tuples_j)
                        )
                        rows, cols = np.nonzero(
                            (lengths_i[:, None] + lengths_j[None, :]) + edge_length
                            <= delta_eps
                        )
                        pairs = zip(rows.tolist(), cols.tolist())
                    else:
                        pairs = (
                            (a, b)
                            for a, tuple_a in enumerate(tuples_i)
                            for b, tuple_b in enumerate(tuples_j)
                            if tuple_a.length + tuple_b.length + edge_length
                            <= delta_eps
                        )
                    # Fused generate/apply loop. The reference collects the
                    # feasible combinations first and then applies them in
                    # generation order; collection is side-effect free, so the
                    # fused loop performs the identical update sequence. A
                    # combined tuple is only *materialised* (frozenset unions)
                    # when something actually keeps it — the incumbent check,
                    # the top-k pool, or a dominance slot it wins; dominated
                    # combinations cost two scalar adds and a few dict probes.
                    for a, b in pairs:
                        tuple_i = tuples_i[a]
                        tuple_j = tuples_j[b]
                        nodes_i = tuple_i.nodes
                        nodes_j = tuple_j.nodes
                        if not nodes_i.isdisjoint(nodes_j):
                            continue
                        tuples_generated += 1
                        scaled = tuple_i.scaled_weight + tuple_j.scaled_weight
                        weight = tuple_i.weight + tuple_j.weight
                        length = tuple_i.length + tuple_j.length + edge_length
                        # Inline RegionTuple.better_than on the scalar triple
                        # (tolerance shared with tuples.py via EPS).
                        if best is None:
                            better = True
                        elif scaled != best.scaled_weight:
                            better = scaled > best.scaled_weight
                        elif abs(weight - best.weight) > EPS:
                            better = weight > best.weight
                        else:
                            better = length < best.length - EPS
                        combined: Optional[RegionTuple] = None
                        if better or collect_pool:
                            combined = make_region_tuple(
                                length,
                                weight,
                                scaled,
                                nodes_i | nodes_j,
                                (tuple_i.edges | tuple_j.edges) | {edge_pair},
                            )
                            if better:
                                best = combined
                            if collect_pool:
                                _pool_add(pool, pool_keys, combined, pool_size)
                        for members in (nodes_i, nodes_j):
                            for member in members:
                                if member in processed_nodes:
                                    continue
                                array = arrays[member]
                                entries = array._entries  # noqa: SLF001 - inlined update
                                stored = entries.get(scaled)
                                if stored is None or length < stored.length - EPS:
                                    if combined is None:
                                        combined = make_region_tuple(
                                            length,
                                            weight,
                                            scaled,
                                            nodes_i | nodes_j,
                                            (tuple_i.edges | tuple_j.edges)
                                            | {edge_pair},
                                        )
                                    entries[scaled] = combined
                                    if prune:
                                        p = position_of[member]
                                        if scaled > max_scaled[p]:
                                            max_scaled[p] = scaled
                                    if max_tuples is not None and len(entries) > max_tuples:
                                        _evict_worst(array, max_tuples)
                processed_nodes.add(vi_id)
        stats["tuples_generated"] = float(tuples_generated)
        stats["edges_processed"] = float(edges_processed)
        stats["edges_skipped"] = float(edges_skipped)
        return best, pool, stats

    # ------------------------------------------------------------------ helpers
    def _start_nodes(self, instance: ProblemInstance) -> List[int]:
        """Traversal seeds: every node, relevant (weighted) nodes first.

        The paper selects "any unprocessed node"; seeding with relevant nodes first
        makes the BFS fronts grow out of the object clusters, which we found matches
        the paper's accuracy while being deterministic for tests.
        """
        weights = instance.weights
        return sorted(
            instance.graph.node_ids(), key=lambda v: (-weights.get(v, 0.0), v)
        )

    def _incident_edges(
        self, instance: ProblemInstance, node_id: int
    ) -> List[Tuple[int, float]]:
        items = list(instance.graph.neighbor_items(node_id))
        if self.edge_order == "length":
            items.sort(key=lambda pair: pair[1])
        return items


def _pool_add(
    pool: List[RegionTuple],
    pool_keys: Set[frozenset],
    candidate: RegionTuple,
    pool_size: int,
) -> None:
    """Keep a bounded pool of the best distinct tuples seen (top-k support)."""
    if candidate.nodes in pool_keys:
        return
    pool.append(candidate)
    pool_keys.add(candidate.nodes)
    if pool_size and len(pool) > 2 * pool_size:
        pool.sort(key=lambda t: (-t.scaled_weight, -t.weight, t.length))
        del pool[pool_size:]
        pool_keys.clear()
        pool_keys.update(t.nodes for t in pool)


def _evict_worst(array: TupleArray, keep: int) -> None:
    """Drop the lowest-scaled-weight tuples so the array holds at most ``keep`` entries."""
    tuples = sorted(array.tuples(), key=lambda t: (-t.scaled_weight, t.length))
    survivors = tuples[:keep]
    # Rebuild in place.
    array._entries.clear()  # noqa: SLF001 - intentional internal rebuild
    for entry in survivors:
        array.update(entry)


def _rank_distinct(pool: Sequence[RegionTuple], k: int) -> List[RegionTuple]:
    """Return the best ``k`` distinct (by node set) tuples of the pool."""
    seen: Set[frozenset] = set()
    ranked: List[RegionTuple] = []
    for candidate in sorted(pool, key=lambda t: (-t.scaled_weight, -t.weight, t.length)):
        if candidate.nodes in seen:
            continue
        seen.add(candidate.nodes)
        ranked.append(candidate)
        if len(ranked) >= k:
            break
    return ranked
