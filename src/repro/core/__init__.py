"""Core LCMSR machinery: the paper's primary contribution.

Data model
    :class:`LCMSRQuery` (Definition 3), :class:`Region` (Definition 2),
    :class:`RegionTuple` (Definition 4), :class:`ProblemInstance` (the windowed
    weighted graph every solver consumes) and :class:`RegionResult`.

Algorithms
    * :class:`~repro.core.app.APPSolver` — the (5+ε)-approximation of Section 4,
      built on node-weight scaling (Section 4.1), the GW-based node-weighted k-MST
      solver (:mod:`repro.core.kmst`) and the findOptTree dynamic program.
    * :class:`~repro.core.tgen.TGENSolver` — the tuple-generation heuristic of
      Section 5.
    * :class:`~repro.core.greedy.GreedySolver` — the greedy expansion of Section 6.1.
    * :class:`~repro.core.exact.ExactSolver` — a brute-force oracle for small inputs
      (not in the paper; used as ground truth in tests and accuracy benches).
    * Top-k variants of all of the above (Section 6.2) via ``solve_topk``.
"""

from repro.core.anytime import Budget, QueryPolicy, ResultQuality
from repro.core.query import LCMSRQuery
from repro.core.region import Region
from repro.core.tuples import RegionTuple, TupleArray
from repro.core.result import RegionResult, TopKResult
from repro.core.scaling import ScalingContext
from repro.core.dense import DenseInstance
from repro.core.instance import ProblemInstance, build_instance
from repro.core.app import APPSolver, BinarySearchTrace
from repro.core.tgen import TGENSolver
from repro.core.greedy import GreedySolver
from repro.core.exact import ExactSolver
from repro.core.kmst import QuotaTreeSolver
from repro.core.pcst import goemans_williamson_pcst, strong_prune

__all__ = [
    "Budget",
    "QueryPolicy",
    "ResultQuality",
    "LCMSRQuery",
    "Region",
    "RegionTuple",
    "TupleArray",
    "RegionResult",
    "TopKResult",
    "ScalingContext",
    "DenseInstance",
    "ProblemInstance",
    "build_instance",
    "APPSolver",
    "BinarySearchTrace",
    "TGENSolver",
    "GreedySolver",
    "ExactSolver",
    "QuotaTreeSolver",
    "goemans_williamson_pcst",
    "strong_prune",
]
