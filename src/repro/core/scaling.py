"""Node-weight scaling (paper Section 4.1, Theorem 2).

Given a query, the scaling factor is ``θ = α · σmax / |VQ|`` where ``σmax`` is the
largest node weight inside ``Q.Λ`` and ``|VQ|`` the number of nodes inside ``Q.Λ``.
Every node weight σ_v is scaled to the integer ``σ̂_v = ⌊σ_v / θ⌋``. Theorem 2 then
guarantees that the region maximising the scaled weight has original weight at least
``(1 - α)`` times the optimum, which is what gives APP its approximation bound.

For TGEN the paper re-uses the same formula with much larger α values (50–1600),
which coarsens the buckets and caps the tuple-array sizes; the helper
:meth:`ScalingContext.num_buckets` exposes the resulting resolution so experiments at
different dataset scales can pick comparable α values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.exceptions import SolverError


@dataclass(frozen=True)
class ScalingContext:
    """The scaling factor θ for one query, plus the quantities that define it.

    Attributes:
        alpha: The scaling parameter α.
        sigma_max: The largest node weight inside the query region.
        num_candidate_nodes: ``|VQ|``, the number of nodes inside the query region.
        theta: The scaling factor ``θ = α · σmax / |VQ|``.
    """

    alpha: float
    sigma_max: float
    num_candidate_nodes: int
    theta: float

    @staticmethod
    def build(
        weights: Mapping[int, float],
        num_candidate_nodes: int,
        alpha: float,
    ) -> "ScalingContext":
        """Create a scaling context for the given node weights.

        Args:
            weights: Positive node weights σ_v of the relevant nodes inside ``Q.Λ``.
            num_candidate_nodes: ``|VQ|`` — all nodes inside ``Q.Λ``, not just the
                weighted ones (the paper's formula uses the full count).
            alpha: The scaling parameter α (> 0).

        Raises:
            SolverError: If α or |VQ| is non-positive, or no node has positive weight
                (there is nothing to scale — callers should have short-circuited to an
                empty result already).
        """
        sigma_max = max(weights.values(), default=0.0)
        return ScalingContext.from_sigma_max(sigma_max, num_candidate_nodes, alpha)

    @staticmethod
    def from_sigma_max(
        sigma_max: float,
        num_candidate_nodes: int,
        alpha: float,
    ) -> "ScalingContext":
        """Create a scaling context from the precomputed σmax aggregate.

        The dense-substrate path uses this: :class:`~repro.core.dense.DenseInstance`
        already carries σmax, so no weight scan is needed. ``build`` delegates
        here, guaranteeing both paths derive the identical θ.

        Raises:
            SolverError: As in :meth:`build`.
        """
        if alpha <= 0:
            raise SolverError(f"scaling parameter alpha must be positive, got {alpha}")
        if num_candidate_nodes <= 0:
            raise SolverError("the query region contains no nodes")
        if sigma_max <= 0:
            raise SolverError("no node has positive weight; nothing to scale")
        theta = alpha * sigma_max / num_candidate_nodes
        return ScalingContext(
            alpha=alpha,
            sigma_max=sigma_max,
            num_candidate_nodes=num_candidate_nodes,
            theta=theta,
        )

    # ------------------------------------------------------------------ scaling
    def scale(self, weight: float) -> int:
        """Return ``σ̂ = ⌊σ / θ⌋`` for one weight."""
        if weight <= 0:
            return 0
        return int(math.floor(weight / self.theta))

    def scale_weights(self, weights: Mapping[int, float]) -> Dict[int, int]:
        """Scale a whole node-weight map; zero results are kept (the node stays known)."""
        return {node_id: self.scale(weight) for node_id, weight in weights.items()}

    def scale_array(self, weights: np.ndarray) -> np.ndarray:
        """Scale a position-indexed σ vector to ``σ̂`` in one vectorised pass.

        Bit-equivalent to mapping :meth:`scale` over the entries: both compute
        ``⌊σ / θ⌋`` with one IEEE-754 double division per weight and clamp
        non-positive weights to 0.

        Returns:
            An int64 array aligned with ``weights``.
        """
        values = np.asarray(weights, dtype=np.float64)
        scaled = np.where(values > 0.0, np.floor(values / self.theta), 0.0)
        return scaled.astype(np.int64)

    def unscale(self, scaled_weight: int) -> float:
        """Return ``θ · ŝ``, the guaranteed lower bound on the original weight."""
        return self.theta * scaled_weight

    # ------------------------------------------------------------------ bounds (Lemma 5)
    def max_scaled_node_weight(self) -> int:
        """Return ``σ̂max = ⌊|VQ| / α⌋`` (the scaled weight of the heaviest node)."""
        return int(math.floor(self.num_candidate_nodes / self.alpha))

    def lower_bound(self) -> int:
        """Lemma 5's lower bound on the optimal scaled region weight: ``⌊|VQ|/α⌋``."""
        return self.max_scaled_node_weight()

    def upper_bound(self) -> int:
        """Lemma 5's upper bound: ``|VQ| · ⌊|VQ|/α⌋``."""
        return self.num_candidate_nodes * self.max_scaled_node_weight()

    def num_buckets(self) -> int:
        """Number of distinct scaled values a single node weight can take (≈ |VQ|/α).

        This is the quantity that actually controls tuple-array sizes; experiments run
        at a different dataset scale than the paper should choose α so that this
        matches the paper's effective resolution (documented in EXPERIMENTS.md).
        """
        return self.max_scaled_node_weight() + 1

    @staticmethod
    def alpha_for_buckets(num_candidate_nodes: int, buckets: int) -> float:
        """Return the α that yields roughly ``buckets`` scaled values per node weight.

        Convenience for scale-matched parameter sweeps: ``α = |VQ| / buckets``.
        """
        if buckets < 1:
            raise SolverError(f"buckets must be >= 1, got {buckets}")
        if num_candidate_nodes < 1:
            raise SolverError("num_candidate_nodes must be >= 1")
        return num_candidate_nodes / buckets
