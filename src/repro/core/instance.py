"""The solver input: a windowed, weighted road-network instance.

Every LCMSR algorithm in the paper works on the same derived input: the sub-network
induced by the nodes inside ``Q.Λ`` (``VQ``/``EQ``) together with the per-node query
weights σ_v obtained from the index layer. :class:`ProblemInstance` packages exactly
that, and :func:`build_instance` produces it either from the full indexing stack
(grid index + object mapping) or from explicit node weights (unit tests, the paper's
Figure 2 example).

Since the dense-substrate refactor an instance carries *two* coupled views of the
same input:

* the **dict view** — ``weights: Dict[int, float]`` keyed by global node ids,
  consumed by the reference solver backend (and by the Exact oracle); and
* the **dense view** — a :class:`~repro.core.dense.DenseInstance` of
  position-indexed arrays, consumed by the solvers' array-first hot loops.

Either view can be materialised from the other (lazily, cached), and solvers
must return byte-identical results on both — the cross-backend parity suite
(``tests/core/test_solver_backend_parity.py``) enforces it. ``solver_backend``
selects which view the solvers take: ``"auto"`` (dense when the builder
attached one — the pipeline hot path — dict otherwise), ``"dense"`` (force the
substrate, building it on demand) or ``"dict"`` (force the reference loops).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Mapping, Optional, Set

from repro.core.dense import DenseInstance
from repro.core.query import LCMSRQuery
from repro.exceptions import QueryError
from repro.index.grid import GridIndex
from repro.network.compact import CompactNetwork, GraphView
from repro.network.subgraph import Rectangle, induced_subgraph
from repro.objects.mapping import NodeObjectMap
from repro.textindex.columnar import WeightPipeline
from repro.textindex.relevance import RelevanceScorer

SOLVER_BACKENDS = ("auto", "dense", "dict")
"""The valid ``solver_backend`` selectors (shared by every validation site)."""

PRUNING_POLICIES = ("auto", "on", "off")
"""The valid ``pruning`` policy selectors (shared by every validation site).

``"auto"`` and ``"on"`` both enable bound-based skipping (there is currently no
heuristic that would make them differ — ``"auto"`` is the forward-compatible
default); ``"off"`` forces the unpruned reference paths. Pruning only ever
licences skips of provably irrelevant work, so results are byte-identical under
every policy (``tests/core/test_pruning_parity.py`` enforces this).
"""


class ProblemInstance:
    """The windowed, weighted graph a solver consumes.

    Attributes:
        graph: The sub-network induced by the nodes inside ``Q.Λ`` (or the full
            network when the query has no window). Either backend — a dict-backed
            :class:`~repro.network.graph.RoadNetwork` or a frozen
            :class:`~repro.network.compact.CompactNetwork` window view — solvers
            treat it as read-only and code against the
            :class:`~repro.network.compact.GraphView` protocol.
        weights: Positive node weights σ_v for the relevant nodes; nodes absent from
            the mapping have weight 0. Materialised lazily from the dense arrays
            when the instance was created dense-first (e.g. out of the serving
            layer's substrate cache) — the rebuilt dict iterates in the source
            dict's order, so the reference backend stays byte-identical.
        query: The originating LCMSR query.
        build_seconds: Time spent building the instance (index probing + windowing);
            reported separately from solver runtime, mirroring the paper's offline /
            online split.
        dense: The attached :class:`~repro.core.dense.DenseInstance`, or ``None``
            when only the dict view exists (use :meth:`ensure_dense` to build it).
        solver_backend: ``"auto"`` / ``"dense"`` / ``"dict"`` — which view the
            solvers consume (see the module docstring).
        pruning: ``"auto"`` / ``"on"`` / ``"off"`` — whether solvers may take
            bound-licensed skips (see :data:`PRUNING_POLICIES`); results are
            byte-identical either way.

    Instances are immutable by contract: neither view nor the derived aggregates
    are ever invalidated.
    """

    def __init__(
        self,
        graph: GraphView,
        weights: Optional[Dict[int, float]] = None,
        query: Optional[LCMSRQuery] = None,
        build_seconds: float = 0.0,
        dense: Optional[DenseInstance] = None,
        solver_backend: str = "auto",
        pruning: str = "auto",
        budget=None,
        sampling=None,
    ) -> None:
        if weights is None and dense is None:
            raise QueryError("a ProblemInstance needs weights, a dense substrate, or both")
        if query is None:
            raise QueryError("a ProblemInstance needs its originating query")
        if solver_backend not in SOLVER_BACKENDS:
            raise QueryError(
                f"solver_backend must be one of {SOLVER_BACKENDS}, got {solver_backend!r}"
            )
        if pruning not in PRUNING_POLICIES:
            raise QueryError(
                f"pruning must be one of {PRUNING_POLICIES}, got {pruning!r}"
            )
        self.graph = graph
        self.query = query
        self.build_seconds = build_seconds
        self.dense = dense
        self.solver_backend = solver_backend
        self.pruning = pruning
        # Anytime tier (repro.core.anytime): an optional cooperative Budget the
        # solvers poll in their hot loops, and optional SampledWeights metadata
        # when σ_v came from the sampled estimator. None (the default) keeps
        # every solver code path literally unchanged — the exact-policy
        # byte-identity contract.
        self.budget = budget
        self.sampling = sampling
        self._weights = weights
        # Derived aggregates, computed once on demand (instances are immutable).
        self._sigma_max: Optional[float] = None
        self._total_weight: Optional[float] = None
        self._relevant_nodes: Optional[Set[int]] = None

    # ------------------------------------------------------------------ views
    @property
    def weights(self) -> Dict[int, float]:
        """The dict view of σ_v (materialised lazily from the dense arrays)."""
        if self._weights is None:
            assert self.dense is not None
            self._weights = self.dense.weights_dict()
        return self._weights

    def dense_view(self) -> Optional[DenseInstance]:
        """The dense view the solvers should consume, or ``None`` for the dict path.

        Resolution follows :attr:`solver_backend`: ``"dict"`` always returns
        ``None``; ``"dense"`` builds and caches the substrate on demand; and
        ``"auto"`` returns whatever the instance builder attached (the columnar
        pipeline path attaches one, the scalar/test paths do not).
        """
        if self.solver_backend == "dict":
            return None
        if self.solver_backend == "dense":
            return self.ensure_dense()
        return self.dense

    def ensure_dense(self) -> DenseInstance:
        """Build (and cache) the dense substrate from the dict view if missing."""
        if self.dense is None:
            self.dense = DenseInstance.from_graph(self.graph, self.weights)
        return self.dense

    def with_backend(self, solver_backend: str) -> "ProblemInstance":
        """Return a sibling instance sharing every view but pinned to a backend.

        The graph, dict weights and dense substrate are shared, not copied —
        the parity suite and the runner use this to solve one built instance
        under both backends.
        """
        # Validation happens in the constructor below.
        sibling = ProblemInstance(
            graph=self.graph,
            weights=self._weights,
            query=self.query,
            build_seconds=self.build_seconds,
            dense=self.dense,
            solver_backend=solver_backend,
            pruning=self.pruning,
            budget=self.budget,
            sampling=self.sampling,
        )
        if solver_backend == "dense":
            sibling.ensure_dense()
            # Share the lazily built substrate back so repeated switches are free.
            if self.dense is None:
                self.dense = sibling.dense
        return sibling

    def with_pruning(self, pruning: str) -> "ProblemInstance":
        """Return a sibling instance sharing every view but pinned to a pruning policy.

        Like :meth:`with_backend`, nothing is copied — the benchmark and the
        parity suite use this to solve one built instance pruned and unpruned.
        """
        return ProblemInstance(
            graph=self.graph,
            weights=self._weights,
            query=self.query,
            build_seconds=self.build_seconds,
            dense=self.dense,
            solver_backend=self.solver_backend,
            pruning=pruning,
            budget=self.budget,
            sampling=self.sampling,
        )

    def with_budget(self, budget) -> "ProblemInstance":
        """Return a sibling instance sharing every view but carrying a solve budget.

        The serving layer caches budget-free instances and attaches a fresh
        :class:`~repro.core.anytime.Budget` per anytime query via this copy, so
        a deadline never leaks into a cached instance (or into an exact query
        served from the same cache entry).
        """
        return ProblemInstance(
            graph=self.graph,
            weights=self._weights,
            query=self.query,
            build_seconds=self.build_seconds,
            dense=self.dense,
            solver_backend=self.solver_backend,
            pruning=self.pruning,
            budget=budget,
            sampling=self.sampling,
        )

    @property
    def pruning_enabled(self) -> bool:
        """Whether solvers may take bound-licensed skips (``"auto"`` resolves to yes)."""
        return self.pruning != "off"

    # ------------------------------------------------------------------ derived facts
    @property
    def num_candidate_nodes(self) -> int:
        """``|VQ|``: the number of nodes inside the query window."""
        return self.graph.num_nodes

    @property
    def num_candidate_edges(self) -> int:
        """``|EQ|``: the number of edges with both endpoints inside the window."""
        return self.graph.num_edges

    @property
    def has_relevant_nodes(self) -> bool:
        """``True`` if at least one node has positive weight."""
        if self._weights is None and self.dense is not None:
            return bool(self.dense.relevant_positions().size)
        return any(weight > 0 for weight in self.weights.values())

    def weight_of(self, node_id: int) -> float:
        """Return σ_v (0.0 for nodes without relevant objects)."""
        return self.weights.get(node_id, 0.0)

    def sigma_max(self) -> float:
        """Return the largest node weight in the instance (0.0 if none; cached)."""
        if self._sigma_max is None:
            if self._weights is None and self.dense is not None:
                self._sigma_max = self.dense.sigma_max
            else:
                self._sigma_max = max(self.weights.values(), default=0.0)
        return self._sigma_max

    def total_weight(self) -> float:
        """Return the sum of all node weights in the instance (cached).

        The dense substrate replays the dict iteration order when summing, so
        the cached value is bit-equal on both views.
        """
        if self._total_weight is None:
            if self._weights is None and self.dense is not None:
                self._total_weight = self.dense.total_weight
            else:
                self._total_weight = sum(self.weights.values())
        return self._total_weight

    def relevant_nodes(self) -> Set[int]:
        """Return the ids of nodes with positive weight (cached; treat as read-only)."""
        if self._relevant_nodes is None:
            self._relevant_nodes = {
                node_id for node_id, weight in self.weights.items() if weight > 0
            }
        return self._relevant_nodes

    def restricted_to(self, node_ids: Iterable[int]) -> "ProblemInstance":
        """Return a copy of the instance restricted to a node subset (used in tests)."""
        keep = set(node_ids)
        return ProblemInstance(
            graph=self.graph.subgraph(keep),
            weights={n: w for n, w in self.weights.items() if n in keep},
            query=self.query,
            build_seconds=self.build_seconds,
            solver_backend=self.solver_backend,
            pruning=self.pruning,
        )


def build_instance(
    network: GraphView,
    query: LCMSRQuery,
    grid_index: Optional[GridIndex] = None,
    mapping: Optional[NodeObjectMap] = None,
    scorer: Optional[RelevanceScorer] = None,
    node_weights: Optional[Mapping[int, float]] = None,
    pipeline: Optional[WeightPipeline] = None,
    pruning: str = "auto",
    overlay=None,
    sample_epsilon: Optional[float] = None,
    sample_seed: int = 0,
) -> ProblemInstance:
    """Build the solver input for ``query`` over ``network``.

    Exactly one source of node weights must be provided:

    * ``pipeline`` — the columnar hot path: σ_v computed with vectorised array
      kernels over the frozen :class:`~repro.textindex.columnar.ColumnarScoringIndex`
      (bit-identical to the ``scorer`` reference backend). When the window graph
      is a frozen CSR view, the instance additionally carries an attached
      :class:`~repro.core.dense.DenseInstance` so the solvers' array-first hot
      loops run without any dict re-keying; or
    * ``grid_index`` + ``mapping`` — the paper's per-cell indexing path: the grid
      scores the relevant objects inside ``Q.Λ`` via its inverted lists and the
      scores are aggregated per mapped node; or
    * ``scorer`` — score objects directly through a :class:`RelevanceScorer`
      (bypasses the spatial index; the reference backend for correctness
      cross-checks); or
    * ``node_weights`` — explicit per-node weights (unit tests, Figure 2 example,
      rating-based scoring computed by the caller).

    ``pruning`` selects the instance's bound-based skipping policy (see
    :data:`PRUNING_POLICIES`). On the pipeline path with a windowed query it
    additionally enables the builder's own skip: when the window's admissible
    σ-mass bound is exactly zero, the σ computation is bypassed entirely (the
    window graph is still built identically).

    ``overlay`` (pipeline path only) is a
    :class:`~repro.service.generations.DeltaOverlay` with pending mutations:
    node weights then come from the overlay's base+delta merge instead of the
    frozen pipeline, and the zero-σ-mass window skip is disabled — the cell
    mass bounds describe the base generation only, so a window empty in the
    base may still hold a positive overlay contribution.

    ``sample_epsilon`` (pipeline path only) switches σ_v to the sampled
    Horvitz–Thompson estimator (:meth:`WeightPipeline.node_weights_sampled
    <repro.textindex.columnar.WeightPipeline.node_weights_sampled>`) seeded
    with ``sample_seed``; the instance then carries the sampling metadata
    (per-node variances) under ``instance.sampling``. An overlay with pending
    mutations takes precedence — the merge is exact, so the sampled tier
    degrades to exact answers (CI 0) until the overlay is compacted.

    Returns:
        The :class:`ProblemInstance` restricted to ``Q.Λ``.

    Raises:
        QueryError: If no weight source (or more than one) is given, or if
            ``overlay`` is passed without ``pipeline``.
    """
    sources = sum(
        1
        for source in ((grid_index, mapping), scorer, node_weights, pipeline)
        if (source[0] is not None if isinstance(source, tuple) else source is not None)
    )
    if sources != 1:
        raise QueryError(
            "exactly one of pipeline, (grid_index + mapping), scorer, or "
            "node_weights must be provided"
        )
    if (grid_index is None) != (mapping is None):
        raise QueryError("grid_index and mapping must be provided together")
    if overlay is not None and pipeline is None:
        raise QueryError("overlay merging requires the pipeline weight source")

    start = time.perf_counter()
    if query.region is not None:
        window_graph = induced_subgraph(network, query.region)
    else:
        # A window-less query spans the whole network. Solvers treat instance
        # graphs as read-only, so the shared graph is used directly — deep-copying
        # it per instance was pure overhead (and pinned one full copy per cached
        # instance in the serving layer).
        window_graph = network

    weights: Dict[int, float]
    if pipeline is not None:
        sampling = None
        if overlay is not None and overlay.has_pending:
            # Base+delta merge: base columnar sums with superseded rows masked
            # out, overlay objects re-scored by the scalar reference
            # arithmetic. The zero-mass skip below must not run — the cell
            # bounds know nothing about pending mutations.
            weights = overlay.node_weights(
                query.keywords, window=query.region, node_window=query.region
            )
        elif (
            pruning != "off"
            and query.region is not None
            and pipeline.bounds.window_mass_bound(query.region) == 0.0
        ):
            # Zero-σ-mass window skip: the covering cells' mass bound is exactly
            # 0.0 only when every mapped object the window could select has a
            # zero score potential, i.e. the reference computation would return
            # no positive node sums. The window graph is built identically — the
            # skip drops only the σ computation, so |VQ| (and hence TGEN's θ
            # scaling) is untouched and results stay byte-identical.
            weights = {}
        elif sample_epsilon is not None:
            sampling = pipeline.node_weights_sampled(
                query.keywords,
                epsilon=sample_epsilon,
                rng=sample_seed,
                window=query.region,
                node_window=query.region,
            )
            weights = sampling.weights
        else:
            # The pipeline restricts nodes to the window with one vectorised
            # coordinate comparison (a mapped node lies in the window graph
            # exactly when its coordinates lie in Q.Λ) — no per-query node-id
            # set needed.
            weights = pipeline.node_weights(
                query.keywords, window=query.region, node_window=query.region
            )
        dense: Optional[DenseInstance] = None
        if isinstance(window_graph, CompactNetwork):
            dense = DenseInstance.from_graph(window_graph, weights)
        build_seconds = time.perf_counter() - start
        return ProblemInstance(
            graph=window_graph,
            weights=weights,
            query=query,
            build_seconds=build_seconds,
            dense=dense,
            pruning=pruning,
            sampling=sampling,
        )

    window_nodes = set(window_graph.node_ids())
    if node_weights is not None:
        weights = {
            node_id: float(weight)
            for node_id, weight in node_weights.items()
            if node_id in window_nodes and weight > 0
        }
    elif scorer is not None:
        # The scorer source explicitly means the object-loop reference backend:
        # callers wanting the vectorised path pass `pipeline` instead. Without
        # the pin, a scorer with an attached columnar index would silently
        # dispatch to the pipeline and every cross-check against it would
        # compare the pipeline with itself.
        weights = scorer.node_weights(
            query.keywords,
            candidate_nodes=window_nodes,
            window=query.region,
            backend="reference",
        )
    else:
        assert grid_index is not None and mapping is not None
        # A window-less query imposes no spatial restriction on the objects, so the
        # probe window is the index's own extent (the corpus bounding box) rather than
        # the network bounding box — objects can sit slightly off the road graph.
        window = query.region or grid_index.extent
        weights = grid_index.node_weights(
            query.keywords, window, mapping, candidate_nodes=window_nodes
        )
    build_seconds = time.perf_counter() - start
    return ProblemInstance(
        graph=window_graph,
        weights=weights,
        query=query,
        build_seconds=build_seconds,
        pruning=pruning,
    )
