"""The solver input: a windowed, weighted road-network instance.

Every LCMSR algorithm in the paper works on the same derived input: the sub-network
induced by the nodes inside ``Q.Λ`` (``VQ``/``EQ``) together with the per-node query
weights σ_v obtained from the index layer. :class:`ProblemInstance` packages exactly
that, and :func:`build_instance` produces it either from the full indexing stack
(grid index + object mapping) or from explicit node weights (unit tests, the paper's
Figure 2 example).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set

from repro.core.query import LCMSRQuery
from repro.exceptions import QueryError
from repro.index.grid import GridIndex
from repro.network.compact import GraphView
from repro.network.subgraph import Rectangle, induced_subgraph
from repro.objects.mapping import NodeObjectMap
from repro.textindex.columnar import WeightPipeline
from repro.textindex.relevance import RelevanceScorer


@dataclass
class ProblemInstance:
    """The windowed, weighted graph a solver consumes.

    Attributes:
        graph: The sub-network induced by the nodes inside ``Q.Λ`` (or the full
            network when the query has no window). Either backend — a dict-backed
            :class:`~repro.network.graph.RoadNetwork` or a frozen
            :class:`~repro.network.compact.CompactNetwork` window view — solvers
            treat it as read-only and code against the
            :class:`~repro.network.compact.GraphView` protocol.
        weights: Positive node weights σ_v for the relevant nodes; nodes absent from
            the mapping have weight 0.
        query: The originating LCMSR query.
        build_seconds: Time spent building the instance (index probing + windowing);
            reported separately from solver runtime, mirroring the paper's offline /
            online split.
    """

    graph: GraphView
    weights: Dict[int, float]
    query: LCMSRQuery
    build_seconds: float = 0.0

    # ------------------------------------------------------------------ derived facts
    @property
    def num_candidate_nodes(self) -> int:
        """``|VQ|``: the number of nodes inside the query window."""
        return self.graph.num_nodes

    @property
    def num_candidate_edges(self) -> int:
        """``|EQ|``: the number of edges with both endpoints inside the window."""
        return self.graph.num_edges

    @property
    def has_relevant_nodes(self) -> bool:
        """``True`` if at least one node has positive weight."""
        return any(weight > 0 for weight in self.weights.values())

    def weight_of(self, node_id: int) -> float:
        """Return σ_v (0.0 for nodes without relevant objects)."""
        return self.weights.get(node_id, 0.0)

    def sigma_max(self) -> float:
        """Return the largest node weight in the instance (0.0 if none)."""
        return max(self.weights.values(), default=0.0)

    def total_weight(self) -> float:
        """Return the sum of all node weights in the instance."""
        return sum(self.weights.values())

    def relevant_nodes(self) -> Set[int]:
        """Return the ids of nodes with positive weight."""
        return {node_id for node_id, weight in self.weights.items() if weight > 0}

    def restricted_to(self, node_ids: Iterable[int]) -> "ProblemInstance":
        """Return a copy of the instance restricted to a node subset (used in tests)."""
        keep = set(node_ids)
        return ProblemInstance(
            graph=self.graph.subgraph(keep),
            weights={n: w for n, w in self.weights.items() if n in keep},
            query=self.query,
            build_seconds=self.build_seconds,
        )


def build_instance(
    network: GraphView,
    query: LCMSRQuery,
    grid_index: Optional[GridIndex] = None,
    mapping: Optional[NodeObjectMap] = None,
    scorer: Optional[RelevanceScorer] = None,
    node_weights: Optional[Mapping[int, float]] = None,
    pipeline: Optional[WeightPipeline] = None,
) -> ProblemInstance:
    """Build the solver input for ``query`` over ``network``.

    Exactly one source of node weights must be provided:

    * ``pipeline`` — the columnar hot path: σ_v computed with vectorised array
      kernels over the frozen :class:`~repro.textindex.columnar.ColumnarScoringIndex`
      (bit-identical to the ``scorer`` reference backend); or
    * ``grid_index`` + ``mapping`` — the paper's per-cell indexing path: the grid
      scores the relevant objects inside ``Q.Λ`` via its inverted lists and the
      scores are aggregated per mapped node; or
    * ``scorer`` — score objects directly through a :class:`RelevanceScorer`
      (bypasses the spatial index; the reference backend for correctness
      cross-checks); or
    * ``node_weights`` — explicit per-node weights (unit tests, Figure 2 example,
      rating-based scoring computed by the caller).

    Returns:
        The :class:`ProblemInstance` restricted to ``Q.Λ``.

    Raises:
        QueryError: If no weight source (or more than one) is given.
    """
    sources = sum(
        1
        for source in ((grid_index, mapping), scorer, node_weights, pipeline)
        if (source[0] is not None if isinstance(source, tuple) else source is not None)
    )
    if sources != 1:
        raise QueryError(
            "exactly one of pipeline, (grid_index + mapping), scorer, or "
            "node_weights must be provided"
        )
    if (grid_index is None) != (mapping is None):
        raise QueryError("grid_index and mapping must be provided together")

    start = time.perf_counter()
    if query.region is not None:
        window_graph = induced_subgraph(network, query.region)
    else:
        # A window-less query spans the whole network. Solvers treat instance
        # graphs as read-only, so the shared graph is used directly — deep-copying
        # it per instance was pure overhead (and pinned one full copy per cached
        # instance in the serving layer).
        window_graph = network

    weights: Dict[int, float]
    if pipeline is not None:
        # The pipeline restricts nodes to the window with one vectorised
        # coordinate comparison (a mapped node lies in the window graph exactly
        # when its coordinates lie in Q.Λ) — no per-query node-id set needed.
        weights = pipeline.node_weights(
            query.keywords, window=query.region, node_window=query.region
        )
        build_seconds = time.perf_counter() - start
        return ProblemInstance(
            graph=window_graph, weights=weights, query=query, build_seconds=build_seconds
        )

    window_nodes = set(window_graph.node_ids())
    if node_weights is not None:
        weights = {
            node_id: float(weight)
            for node_id, weight in node_weights.items()
            if node_id in window_nodes and weight > 0
        }
    elif scorer is not None:
        # The scorer source explicitly means the object-loop reference backend:
        # callers wanting the vectorised path pass `pipeline` instead. Without
        # the pin, a scorer with an attached columnar index would silently
        # dispatch to the pipeline and every cross-check against it would
        # compare the pipeline with itself.
        weights = scorer.node_weights(
            query.keywords,
            candidate_nodes=window_nodes,
            window=query.region,
            backend="reference",
        )
    else:
        assert grid_index is not None and mapping is not None
        # A window-less query imposes no spatial restriction on the objects, so the
        # probe window is the index's own extent (the corpus bounding box) rather than
        # the network bounding box — objects can sit slightly off the road graph.
        window = query.region or grid_index.extent
        weights = grid_index.node_weights(
            query.keywords, window, mapping, candidate_nodes=window_nodes
        )
    build_seconds = time.perf_counter() - start
    return ProblemInstance(
        graph=window_graph, weights=weights, query=query, build_seconds=build_seconds
    )


