"""Region tuples and tuple arrays (paper Definitions 4, 5 and 6).

A region is represented during search as a 5-tuple ``T = (l, s, ŝ, V, E)``: total
length, original weight, scaled weight, node set and edge set. Both the findOptTree
dynamic program (Definition 5) and TGEN (Definition 6) keep, per node, an array mapping
each scaled weight value ``S`` to the shortest known region with that scaled weight —
the dominance rule of Lemma 6. :class:`TupleArray` implements that array with the
dominance update, and :class:`RegionTuple` the 5-tuple with the combination operation
of Lemma 7 / Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.region import Region
from repro.network.graph import edge_key

#: Float tolerance shared by the dominance rule (:meth:`TupleArray.update`) and
#: the result-preference order (:meth:`RegionTuple.better_than`). The dense
#: solver backends inline those two predicates in their hot loops — they import
#: this constant so the tolerance cannot drift between the copies.
EPS = 1e-12


def make_region_tuple(
    length: float,
    weight: float,
    scaled_weight: int,
    nodes: FrozenSet[int],
    edges: FrozenSet[Tuple[int, int]],
) -> "RegionTuple":
    """Hot-path constructor for :class:`RegionTuple`.

    Identical to calling the dataclass, but writes the five fields straight
    into ``__dict__`` instead of routing each one through the frozen-dataclass
    ``object.__setattr__`` guard — the solvers' dense backends build tens of
    thousands of tuples per query, and the guard is pure per-field overhead
    once the values are final. The resulting instance is indistinguishable
    from a normally constructed one (same type, same frozen behaviour).
    """
    region_tuple = RegionTuple.__new__(RegionTuple)
    region_tuple.__dict__.update(
        length=length,
        weight=weight,
        scaled_weight=scaled_weight,
        nodes=nodes,
        edges=edges,
    )
    return region_tuple


@dataclass(frozen=True)
class RegionTuple:
    """The paper's 5-tuple region representation ``(l, s, ŝ, V, E)``.

    Attributes:
        length: Total length ``l`` of all road segments in the region.
        weight: Original (unscaled) weight ``s``.
        scaled_weight: Scaled integer weight ``ŝ``.
        nodes: Frozen set of the region's node ids ``V``.
        edges: Frozen set of the region's normalised edges ``E``.
    """

    length: float
    weight: float
    scaled_weight: int
    nodes: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]]

    @staticmethod
    def singleton(node_id: int, weight: float, scaled_weight: int) -> "RegionTuple":
        """Return the tuple for the single-node region ``{node_id}`` (length 0)."""
        return RegionTuple(0.0, weight, int(scaled_weight), frozenset({node_id}), frozenset())

    def shares_nodes_with(self, other: "RegionTuple") -> bool:
        """Return ``True`` if the two regions have a node in common (Lemma 9 check)."""
        small, large = (self.nodes, other.nodes) if len(self.nodes) <= len(other.nodes) else (
            other.nodes,
            self.nodes,
        )
        return any(node in large for node in small)

    def combine(self, other: "RegionTuple", u: int, v: int, edge_length: float) -> "RegionTuple":
        """Combine two node-disjoint regions through the edge ``(u, v)``.

        ``self`` must contain ``u`` and ``other`` must contain ``v`` (or vice versa);
        the caller is responsible for the Lemma 9 disjointness check, which it usually
        performs anyway to decide whether to combine at all.
        """
        return RegionTuple(
            length=self.length + other.length + edge_length,
            weight=self.weight + other.weight,
            scaled_weight=self.scaled_weight + other.scaled_weight,
            nodes=self.nodes | other.nodes,
            edges=(self.edges | other.edges) | {edge_key(u, v)},
        )

    def extend(self, node_id: int, weight: float, scaled_weight: int,
               attach_to: int, edge_length: float) -> "RegionTuple":
        """Return a new tuple with ``node_id`` attached to the region via ``attach_to``."""
        return RegionTuple(
            length=self.length + edge_length,
            weight=self.weight + weight,
            scaled_weight=self.scaled_weight + int(scaled_weight),
            nodes=self.nodes | {node_id},
            edges=self.edges | {edge_key(attach_to, node_id)},
        )

    def to_region(self) -> Region:
        """Convert the tuple to a user-facing :class:`Region`."""
        return Region(nodes=self.nodes, edges=self.edges, length=self.length, weight=self.weight)

    def better_than(self, other: Optional["RegionTuple"]) -> bool:
        """Result preference order: larger scaled weight, then larger weight, then shorter.

        The paper returns the feasible region with the largest (scaled) weight and, on
        ties, the one with the shortest length.
        """
        if other is None:
            return True
        if self.scaled_weight != other.scaled_weight:
            return self.scaled_weight > other.scaled_weight
        if abs(self.weight - other.weight) > EPS:
            return self.weight > other.weight
        return self.length < other.length - EPS


class TupleArray:
    """Per-node array of region tuples keyed by scaled weight (Definitions 5 / 6).

    For each scaled weight value ``S`` the array keeps only the tuple with the smallest
    length (Lemma 6's dominance rule). Implemented as a dictionary because scaled
    weights are sparse in practice.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, RegionTuple] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RegionTuple]:
        return iter(self._entries.values())

    def __contains__(self, scaled_weight: int) -> bool:
        return scaled_weight in self._entries

    def get(self, scaled_weight: int) -> Optional[RegionTuple]:
        """Return the stored tuple for ``scaled_weight`` or ``None``."""
        return self._entries.get(scaled_weight)

    def update(self, candidate: RegionTuple) -> bool:
        """Insert ``candidate`` if it is shorter than the stored tuple of equal ŝ.

        Returns:
            ``True`` if the array changed.
        """
        stored = self._entries.get(candidate.scaled_weight)
        if stored is None or candidate.length < stored.length - EPS:
            self._entries[candidate.scaled_weight] = candidate
            return True
        return False

    def tuples(self) -> List[RegionTuple]:
        """Return a snapshot list of the stored tuples (safe to iterate while updating)."""
        return list(self._entries.values())

    def best(self) -> Optional[RegionTuple]:
        """Return the stored tuple with the largest scaled weight (ties: shortest)."""
        best: Optional[RegionTuple] = None
        for entry in self._entries.values():
            if entry.better_than(best):
                best = entry
        return best

    def prune_longer_than(self, max_length: float) -> None:
        """Drop every stored tuple whose length exceeds ``max_length``."""
        to_delete = [s for s, t in self._entries.items() if t.length > max_length + 1e-12]
        for scaled_weight in to_delete:
            del self._entries[scaled_weight]

    def check_dominance(self) -> bool:
        """Return ``True`` if no stored tuple is dominated by another stored tuple.

        Dominance here means: another tuple has scaled weight >= and length <= with at
        least one strict. The arrays produced by the solvers only guarantee per-key
        minimality (the paper's rule); full Pareto pruning is optional and exercised by
        property tests through this predicate.
        """
        entries = list(self._entries.values())
        for tuple_a in entries:
            for tuple_b in entries:
                if tuple_a is tuple_b:
                    continue
                if (
                    tuple_b.scaled_weight >= tuple_a.scaled_weight
                    and tuple_b.length <= tuple_a.length - 1e-12
                    and tuple_b.scaled_weight > tuple_a.scaled_weight
                ):
                    return False
        return True
