"""An exact LCMSR oracle for small instances.

The paper has no exact competitor (the problem is NP-hard, Theorem 1) and therefore
reports accuracy relative to TGEN. For the reproduction we additionally provide a
brute-force oracle usable on small windows: it enumerates every connected node subset
of the window graph, computes the minimum length needed to connect the subset (the
minimum spanning tree of the induced subgraph — a region never benefits from extra
edges because only node weights count), and returns the feasible subset with the
largest weight. Tests use it to validate APP/TGEN/Greedy accuracy against the true
optimum, which is a stronger check than the paper could run.

When the instance's ``pruning`` policy allows it (and every node weight is
non-negative — the builder-produced weights always are), the enumeration runs as
a branch-and-bound: a min-heap of the ``k`` best candidate weights seen so far is
the incumbent, and any anchor or branch whose *positive-weight potential* (the
sum of ``max(σ_v, 0)`` over the nodes the branch can still reach) falls strictly
below the k-th incumbent — after a ``1 + 1e-9`` admissibility guard — is skipped
whole. Skipped subsets all have weight strictly below the final k-th weight, and
the surviving candidates keep their enumeration order, so the stable sort that
ranks them produces byte-identical results to the exhaustive path (the parity
suite checks this). Pruning never reorders the enumeration and never prunes on
length (the induced-subgraph MST is not monotone under subset growth — adding a
Steiner node can shorten it).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.anytime import annotate_anytime_stats
from repro.core.instance import ProblemInstance
from repro.core.region import Region
from repro.core.result import RegionResult, TopKResult
from repro.exceptions import SolverError
from repro.network.compact import GraphView
from repro.network.graph import edge_key


class _BudgetExpired(Exception):
    """Internal control-flow signal: the instance's anytime budget ran out."""


class ExactSolver:
    """Brute-force optimal LCMSR solver for small query windows.

    Args:
        max_nodes: Refuse instances whose window has more nodes than this (the
            enumeration is exponential; 20 nodes ≈ one million subsets).
    """

    name = "Exact"

    def __init__(self, max_nodes: int = 20) -> None:
        self.max_nodes = max_nodes

    def solve(self, instance: ProblemInstance) -> RegionResult:
        """Return the optimal region (provably, for small windows).

        Args:
            instance: The windowed, weighted problem instance to solve.

        Returns:
            The true optimum over all connected feasible subsets; an empty result
            when no node in the window is relevant.

        Raises:
            SolverError: If the window exceeds ``max_nodes`` (the enumeration is
                exponential).
        """
        start = time.perf_counter()
        graph = instance.graph
        if graph.num_nodes > self.max_nodes:
            raise SolverError(
                f"ExactSolver is limited to {self.max_nodes} nodes; "
                f"the window has {graph.num_nodes}"
            )
        if not instance.has_relevant_nodes or graph.num_nodes == 0:
            return RegionResult(Region.empty(), self.name, time.perf_counter() - start)
        best, stats = self._best_regions(instance, k=1)
        runtime = time.perf_counter() - start
        if not best:
            return RegionResult(Region.empty(), self.name, runtime, stats=stats)
        return RegionResult(best[0], self.name, runtime, stats=stats)

    def solve_topk(self, instance: ProblemInstance, k: Optional[int] = None) -> TopKResult:
        """Return the provably best ``k`` distinct regions for small windows.

        Args:
            instance: The windowed, weighted problem instance to solve.
            k: Number of distinct regions to return; ``instance.query.k`` when
                omitted.

        Returns:
            Up to ``k`` distinct regions in decreasing score order.

        Raises:
            SolverError: If the window exceeds ``max_nodes``.
        """
        start = time.perf_counter()
        k = k or instance.query.k
        graph = instance.graph
        if graph.num_nodes > self.max_nodes:
            raise SolverError(
                f"ExactSolver is limited to {self.max_nodes} nodes; "
                f"the window has {graph.num_nodes}"
            )
        regions, stats = self._best_regions(instance, k=k)
        runtime = time.perf_counter() - start
        results = [RegionResult(region, self.name, runtime) for region in regions]
        return TopKResult(results, self.name, runtime, stats=stats)

    # ------------------------------------------------------------------ enumeration
    def _best_regions(
        self, instance: ProblemInstance, k: int
    ) -> Tuple[List[Region], Dict[str, float]]:
        graph = instance.graph
        weights = instance.weights
        delta = instance.query.delta
        nodes = sorted(graph.node_ids())
        candidates: List[Tuple[float, float, FrozenSet[int], FrozenSet[Tuple[int, int]]]] = []
        # Min-heap of the k best candidate weights seen so far: heap[0] is a
        # lower bound on the final k-th weight, so anything provably below it
        # can be skipped without affecting the top k.
        heap: List[float] = []
        stats: Dict[str, float] = {
            "exact_subsets_considered": 0.0,
            "exact_branches_pruned": 0.0,
            "exact_anchors_skipped": 0.0,
        }

        budget = instance.budget

        def consider(subset: FrozenSet[int]) -> None:
            # Cooperative deadline, polled once per enumerated subset (the
            # check is a counter decrement except every check_interval calls).
            if budget is not None and budget.expired():
                raise _BudgetExpired
            stats["exact_subsets_considered"] += 1
            mst = _induced_mst(graph, subset)
            if mst is None:
                return
            length, edges = mst
            if length > delta + 1e-12:
                return
            weight = sum(weights.get(node_id, 0.0) for node_id in subset)
            if weight <= 0:
                return
            candidates.append((weight, -length, frozenset(subset), frozenset(edges)))
            if len(heap) < k:
                heapq.heappush(heap, weight)
            elif weight > heap[0]:
                heapq.heapreplace(heap, weight)

        # Branch-and-bound needs non-negative weights: the positive-potential
        # bounds below only dominate subset sums when no negative weight can
        # be excluded from a subset to raise it above its positive mass.
        prune = instance.pruning_enabled and all(w >= 0.0 for w in weights.values())
        # Upper bound on the best subset the truncated enumeration never
        # considered (None while the run completes in budget).
        open_bound: Optional[float] = None
        try:
            if not prune:
                for subset in _connected_subsets(graph, nodes):
                    consider(subset)
            else:
                node_set = set(nodes)
                pos = {v: max(weights.get(v, 0.0), 0.0) for v in nodes}
                # suffix[i] bounds the weight of every subset anchored at nodes[i:]
                # (anchored subsets only use nodes >= their anchor). Sequential
                # right-to-left accumulation of non-negative terms makes the suffix
                # exactly non-increasing and exactly 0.0 iff no positive weight
                # remains — see repro.core.bounds.positive_suffix_potentials.
                suffix = [0.0] * (len(nodes) + 1)
                for i in range(len(nodes) - 1, -1, -1):
                    suffix[i] = suffix[i + 1] + pos[nodes[i]]
                anchor_index = 0
                try:
                    for i, anchor in enumerate(nodes):
                        anchor_index = i
                        if suffix[i] == 0.0:
                            # Every remaining node has weight <= 0: all remaining
                            # subsets are filtered by the weight > 0 check. Exact skip.
                            stats["exact_anchors_skipped"] += len(nodes) - i
                            break
                        if len(heap) >= k and suffix[i] * _BB_GUARD < heap[0]:
                            stats["exact_anchors_skipped"] += 1
                            continue
                        allowed = {v for v in node_set if v >= anchor}
                        initial_frontier = sorted(
                            neighbor for neighbor in graph.neighbors(anchor) if neighbor in allowed
                        )
                        _grow_bb(
                            graph, allowed, {anchor}, initial_frontier, set(),
                            consider, pos, heap, k, stats,
                        )
                except _BudgetExpired:
                    # Everything not yet enumerated is anchored at nodes[i:] for
                    # the current (or a later) anchor, and suffix is
                    # non-increasing, so suffix[anchor_index] bounds every
                    # subset the truncated run skipped — the true B&B gap.
                    open_bound = suffix[anchor_index]
                    raise
        except _BudgetExpired:
            stats["budget_expired"] = 1.0

        candidates.sort(key=lambda item: (-item[0], item[1]))
        regions: List[Region] = []
        seen: Set[FrozenSet[int]] = set()
        for weight, neg_length, node_set_, edge_set in candidates:
            if node_set_ in seen:
                continue
            seen.add(node_set_)
            regions.append(
                Region(nodes=node_set_, edges=edge_set, length=-neg_length, weight=weight)
            )
            if len(regions) >= k:
                break
        achieved = regions[0].weight if regions else 0.0
        gap = max(0.0, open_bound - achieved) if open_bound is not None else None
        annotate_anytime_stats(instance, achieved, stats, regret_bound=gap)
        return regions, stats


_BB_GUARD = 1.0 + 1e-9
"""Admissibility guard for the branch-and-bound potential comparisons.

``math.fsum`` potentials are exactly rounded and subset weights are plain float
sums of at most ``max_nodes`` non-negative terms, so the true relation
``weight <= potential`` can be violated in float by a few ulps at most; the
guard makes the skip test strictly conservative.
"""


def _grow_bb(
    graph: GraphView,
    allowed: Set[int],
    subset: Set[int],
    frontier: List[int],
    forbidden: Set[int],
    consider: Callable[[FrozenSet[int]], None],
    pos: Dict[int, float],
    heap: List[float],
    k: int,
    stats: Dict[str, float],
) -> None:
    """Branch-and-bound twin of :func:`_grow`: same enumeration, bound-licensed skips.

    Mirrors :func:`_grow` exactly — the current subset is considered first, then
    each frontier branch in order with earlier frontier nodes forbidden — except
    that once the incumbent heap is full, a branch whose positive-weight
    potential cannot beat the k-th incumbent is skipped whole.
    """
    consider(frozenset(subset))
    for index, candidate in enumerate(frontier):
        if candidate in forbidden:
            continue
        # Everything earlier in the frontier is forbidden on this branch so that
        # the same subset cannot be reached through a different insertion order.
        branch_forbidden = forbidden | set(frontier[:index])
        if len(heap) >= k:
            # Every subset in this branch's subtree draws its nodes from
            # allowed \ branch_forbidden (the current subset included), so the
            # positive mass of that pool bounds every subtree subset's weight.
            potential = math.fsum(
                pos[v] for v in allowed if v not in branch_forbidden
            )
            if potential * _BB_GUARD < heap[0]:
                stats["exact_branches_pruned"] += 1
                continue
        new_subset = subset | {candidate}
        new_frontier = [v for v in frontier[index + 1 :] if v not in branch_forbidden]
        present = set(new_frontier)
        for neighbor in graph.neighbors(candidate):
            if (
                neighbor in allowed
                and neighbor not in new_subset
                and neighbor not in branch_forbidden
                and neighbor not in present
            ):
                new_frontier.append(neighbor)
                present.add(neighbor)
        _grow_bb(
            graph, allowed, new_subset, new_frontier, branch_forbidden,
            consider, pos, heap, k, stats,
        )


def _connected_subsets(graph: GraphView, nodes: List[int]):
    """Yield every connected non-empty node subset of ``graph`` exactly once.

    Uses the standard anchored enumeration: for each anchor ``r`` (in increasing id
    order) it enumerates the connected subsets whose minimum node id is ``r``, growing
    the subset one frontier node at a time. A branch that decides *not* to take a
    frontier node forbids it for the rest of that branch, which is what guarantees
    each subset is produced exactly once.
    """
    node_set = set(nodes)
    for anchor in nodes:
        allowed = {v for v in node_set if v >= anchor}
        initial_frontier = sorted(
            neighbor for neighbor in graph.neighbors(anchor) if neighbor in allowed
        )
        yield from _grow(graph, allowed, {anchor}, initial_frontier, set())


def _grow(
    graph: GraphView,
    allowed: Set[int],
    subset: Set[int],
    frontier: List[int],
    forbidden: Set[int],
):
    yield frozenset(subset)
    for index, candidate in enumerate(frontier):
        if candidate in forbidden:
            continue
        # Everything earlier in the frontier is forbidden on this branch so that the
        # same subset cannot be reached through a different insertion order.
        branch_forbidden = forbidden | set(frontier[:index])
        new_subset = subset | {candidate}
        new_frontier = [v for v in frontier[index + 1 :] if v not in branch_forbidden]
        present = set(new_frontier)
        for neighbor in graph.neighbors(candidate):
            if (
                neighbor in allowed
                and neighbor not in new_subset
                and neighbor not in branch_forbidden
                and neighbor not in present
            ):
                new_frontier.append(neighbor)
                present.add(neighbor)
        yield from _grow(graph, allowed, new_subset, new_frontier, branch_forbidden)


def _induced_mst(
    graph: GraphView, subset: FrozenSet[int]
) -> Optional[Tuple[float, List[Tuple[int, int]]]]:
    """Return (length, edges) of the MST of the subgraph induced by ``subset``.

    Returns ``None`` when the induced subgraph is not connected (such a subset cannot
    form a region on its own).
    """
    members = list(subset)
    if len(members) == 1:
        return (0.0, [])
    start = members[0]
    in_tree: Set[int] = {start}
    edges: List[Tuple[int, int]] = []
    total = 0.0
    heap: List[Tuple[float, int, int]] = []
    for neighbor, length in graph.neighbor_items(start):
        if neighbor in subset:
            heapq.heappush(heap, (length, start, neighbor))
    while heap and len(in_tree) < len(members):
        length, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        edges.append(edge_key(u, v))
        total += length
        for neighbor, neighbor_length in graph.neighbor_items(v):
            if neighbor in subset and neighbor not in in_tree:
                heapq.heappush(heap, (neighbor_length, v, neighbor))
    if len(in_tree) != len(members):
        return None
    return (total, edges)
