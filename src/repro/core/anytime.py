"""Anytime/approximate query tier: budgets, policies, result quality.

Three small pieces shared across the solver and serving layers:

``Budget``
    A cooperative deadline. Solver hot loops call :meth:`Budget.expired`
    at natural checkpoints (Greedy: per expansion round, TGEN: per edge,
    Exact: per subset considered); the call is a counter decrement on the
    fast path and only touches the clock every ``check_interval`` calls.
    When the deadline passes the solver stops where it is and returns its
    best-so-far region together with an admissible regret bound.

``QueryPolicy``
    The per-query service level: ``exact`` (today's byte-identical path),
    ``anytime(deadline_ms)`` (budgeted solve, best-so-far + regret bound)
    or ``sampled(epsilon)`` (node weights estimated from a seeded sample
    of the postings, answers carry a confidence interval). Policies parse
    from the CLI spelling (``"anytime(200)"``) and render a canonical
    ``cache_token`` so approximate results are cached under keys an exact
    lookup can never hit.

``ResultQuality``
    What an approximate answer knows about itself: the policy kind, an
    admissible regret bound (anytime) and a CI half-width (sampled).
    ``RegionResult.stats`` values must be plain numbers so results can be
    tabulated, so quality round-trips through ``to_stats``/``from_stats``
    as ``quality_*`` entries instead of riding along as an object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "Budget",
    "QueryPolicy",
    "ResultQuality",
    "POLICY_KINDS",
    "annotate_anytime_stats",
]

POLICY_KINDS = ("exact", "anytime", "sampled")

# Numeric encoding of the policy kind for RegionResult.stats (values must be
# numbers). 0 is reserved for "absent" so stats lacking quality entries decode
# to None rather than a phantom exact-quality record.
_KIND_CODES = {"exact": 1.0, "anytime": 2.0, "sampled": 3.0}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}


#: Target wall-clock gap between two deadline checks. The adaptive window in
#: :meth:`Budget.expired` aims the next clock read roughly this far out, so the
#: worst-case deadline overshoot is about one resolution plus one iteration —
#: regardless of how expensive the caller's iterations are.
CHECK_RESOLUTION_SECONDS = 1e-3


class Budget:
    """Cooperative deadline checked cheaply from solver hot loops.

    ``expired()`` decrements a counter and only reads the clock once per
    check window, so sprinkling it through a tight loop costs a few
    nanoseconds per iteration. The window adapts to the measured per-call
    cost: it starts at ``check_interval`` calls (the cap) and shrinks so
    consecutive clock reads land about :data:`CHECK_RESOLUTION_SECONDS`
    apart — a solver with microsecond iterations keeps the full interval
    while one with millisecond iterations re-checks every call. Once the
    deadline has passed the budget latches: every subsequent call returns
    True without touching the clock.
    """

    __slots__ = ("deadline", "check_interval", "_countdown", "_window",
                 "_last_check", "_expired")

    def __init__(self, deadline: float, check_interval: int = 64) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.deadline = float(deadline)
        self.check_interval = int(check_interval)
        self._window = int(check_interval)
        self._countdown = int(check_interval)
        self._last_check = time.perf_counter()
        self._expired = False

    @staticmethod
    def from_deadline_ms(deadline_ms: float, check_interval: int = 64) -> "Budget":
        """Budget expiring ``deadline_ms`` milliseconds from now."""
        return Budget(time.perf_counter() + deadline_ms / 1000.0,
                      check_interval=check_interval)

    def expired(self) -> bool:
        if self._expired:
            return True
        self._countdown -= 1
        if self._countdown > 0:
            return False
        now = time.perf_counter()
        if now >= self.deadline:
            self._expired = True
            return True
        # Size the next window from the measured per-call cost so the next
        # clock read lands about CHECK_RESOLUTION_SECONDS out, capped at
        # check_interval. Inside the final resolution of the deadline, check
        # every call — the overshoot is then bounded by one iteration.
        per_call = (now - self._last_check) / self._window
        self._last_check = now
        if self.deadline - now < CHECK_RESOLUTION_SECONDS:
            self._window = 1
        elif per_call > 0.0:
            self._window = min(self.check_interval,
                               max(1, int(CHECK_RESOLUTION_SECONDS / per_call)))
        else:
            self._window = self.check_interval
        self._countdown = self._window
        return False

    def expired_now(self) -> bool:
        """Check the clock immediately (no interval), e.g. between phases."""
        if not self._expired and time.perf_counter() >= self.deadline:
            self._expired = True
        return self._expired

    def remaining_seconds(self) -> float:
        return max(0.0, self.deadline - time.perf_counter())


@dataclass(frozen=True)
class QueryPolicy:
    """Per-query service level. Hashable and picklable (crosses the gateway).

    ``kind`` is one of :data:`POLICY_KINDS`. ``deadline_ms`` applies to
    ``anytime``, ``epsilon``/``seed`` to ``sampled``; irrelevant knobs are
    normalised to ``None``/0 in ``__post_init__`` so equal policies compare
    and hash equal regardless of how they were spelled.
    """

    kind: str = "exact"
    deadline_ms: Optional[float] = None
    epsilon: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; expected one of {POLICY_KINDS}")
        if self.kind == "anytime":
            if self.deadline_ms is None or self.deadline_ms <= 0:
                raise ValueError("anytime policy requires deadline_ms > 0")
            object.__setattr__(self, "deadline_ms", float(self.deadline_ms))
            object.__setattr__(self, "epsilon", None)
            object.__setattr__(self, "seed", 0)
        elif self.kind == "sampled":
            if self.epsilon is None or not 0.0 < self.epsilon < 1.0:
                raise ValueError("sampled policy requires 0 < epsilon < 1")
            object.__setattr__(self, "epsilon", float(self.epsilon))
            object.__setattr__(self, "deadline_ms", None)
            object.__setattr__(self, "seed", int(self.seed))
        else:  # exact
            object.__setattr__(self, "deadline_ms", None)
            object.__setattr__(self, "epsilon", None)
            object.__setattr__(self, "seed", 0)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def exact() -> "QueryPolicy":
        return QueryPolicy("exact")

    @staticmethod
    def anytime(deadline_ms: float) -> "QueryPolicy":
        return QueryPolicy("anytime", deadline_ms=deadline_ms)

    @staticmethod
    def sampled(epsilon: float, seed: int = 0) -> "QueryPolicy":
        return QueryPolicy("sampled", epsilon=epsilon, seed=seed)

    @staticmethod
    def parse(text: Optional[str], deadline_ms: Optional[float] = None,
              epsilon: Optional[float] = None, seed: int = 0) -> "QueryPolicy":
        """Parse the CLI spelling.

        Accepts ``"exact"``, ``"anytime"``/``"anytime(200)"`` and
        ``"sampled"``/``"sampled(0.1)"``; explicit ``deadline_ms``/``epsilon``
        arguments fill in (and override) the parenthesised value. ``None``
        or ``""`` means exact.
        """
        if text is None or text == "":
            return QueryPolicy.exact()
        spec = text.strip().lower()
        arg: Optional[float] = None
        if "(" in spec:
            if not spec.endswith(")"):
                raise ValueError(f"malformed policy {text!r}")
            spec, _, inner = spec.partition("(")
            try:
                arg = float(inner[:-1])
            except ValueError:
                raise ValueError(f"malformed policy argument in {text!r}")
        if spec == "exact":
            return QueryPolicy.exact()
        if spec == "anytime":
            value = deadline_ms if deadline_ms is not None else arg
            if value is None:
                raise ValueError("anytime policy needs a deadline: "
                                 "'anytime(<ms>)' or --deadline-ms")
            return QueryPolicy.anytime(value)
        if spec == "sampled":
            value = epsilon if epsilon is not None else arg
            if value is None:
                raise ValueError("sampled policy needs an epsilon: "
                                 "'sampled(<eps>)' or --epsilon")
            return QueryPolicy.sampled(value, seed=seed)
        raise ValueError(
            f"unknown policy {text!r}; expected one of {POLICY_KINDS}")

    # -- identity ----------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"

    def cache_token(self) -> str:
        """Canonical string for cache keys.

        ``exact`` maps to the fixed token ``"exact"`` — the default on
        existing keys — so exact lookups before and after this change hit
        the same entries, while every approximate policy gets a disjoint
        token (``anytime:200.0`` / ``sampled:0.1:s0``).
        """
        if self.kind == "exact":
            return "exact"
        if self.kind == "anytime":
            return f"anytime:{self.deadline_ms!r}"
        return f"sampled:{self.epsilon!r}:s{self.seed}"

    def __str__(self) -> str:
        if self.kind == "anytime":
            return f"anytime({self.deadline_ms:g})"
        if self.kind == "sampled":
            return f"sampled({self.epsilon:g})"
        return "exact"


@dataclass(frozen=True)
class ResultQuality:
    """Self-reported quality of an (approximate) answer.

    ``regret_bound`` — admissible upper bound on how much scaled weight the
    returned region can be missing versus the best the solver would have
    found unbudgeted (anytime runs; 0.0 when the run finished in budget).
    ``ci`` — 95% confidence half-width on the returned region's weight
    (sampled runs). Either may be None when not applicable.
    """

    kind: str = "exact"
    regret_bound: Optional[float] = None
    ci: Optional[float] = None

    def to_stats(self) -> Dict[str, float]:
        stats: Dict[str, float] = {"quality_kind": _KIND_CODES[self.kind]}
        if self.regret_bound is not None:
            stats["quality_regret_bound"] = float(self.regret_bound)
        if self.ci is not None:
            stats["quality_ci"] = float(self.ci)
        return stats

    @staticmethod
    def from_stats(stats: Dict[str, float]) -> Optional["ResultQuality"]:
        code = stats.get("quality_kind")
        if code is None:
            return None
        kind = _CODE_KINDS.get(float(code))
        if kind is None:
            return None
        return ResultQuality(
            kind=kind,
            regret_bound=stats.get("quality_regret_bound"),
            ci=stats.get("quality_ci"),
        )


def annotate_anytime_stats(instance, achieved: float, stats: Dict[str, float],
                           regret_bound: Optional[float] = None) -> None:
    """Fold anytime ResultQuality entries into a solver stats dict.

    No-op for budget-free instances (the exact path stays literally unchanged).
    When the run was truncated (``stats["budget_expired"]`` set by the hot
    loop), the regret bound is ``regret_bound`` if the solver derived a tighter
    one (Exact's open-branch gap), else the trivial admissible ceiling
    ``Σ max(σ_v, 0) − achieved``: no region can weigh more than the sum of all
    positive node weights in the window — this is
    ``positive_suffix_potentials(weights)[0]`` (see
    :func:`repro.core.bounds.positive_suffix_potentials`). A run that finished
    within budget reports regret 0.
    """
    if instance.budget is None:
        return
    if stats.get("budget_expired", 0.0) > 0.0:
        if regret_bound is None:
            ceiling = sum(w for w in instance.weights.values() if w > 0.0)
            regret_bound = max(0.0, ceiling - achieved)
        else:
            regret_bound = max(0.0, regret_bound)
    else:
        regret_bound = 0.0
    stats.update(ResultQuality("anytime", regret_bound=regret_bound).to_stats())
