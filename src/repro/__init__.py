"""repro — a reproduction of "Retrieving Regions of Interest for User Exploration".

The library implements the length-constrained maximum-sum region (LCMSR) query of
Cao, Cong, Jensen and Yiu (PVLDB 7(9), 2014) together with every substrate the paper
depends on: the road-network graph model, geo-textual objects, TF-IDF text relevance,
the grid + inverted-list (+ B+-tree) index, the node-weight scaling technique, a
GW-based node-weighted k-MST solver, the APP / TGEN / Greedy algorithms, the top-k
extension, an exact oracle for small inputs and the MaxRS / clustering baselines.

Quick start::

    from repro import LCMSREngine, build_ny_like

    dataset = build_ny_like()
    engine = LCMSREngine(dataset.network, dataset.corpus)
    result = engine.query(["cafe", "restaurant"], delta=2000.0)
    print(result.region)

See README.md for the architecture overview and DESIGN.md for the paper-to-module map.
"""

from repro.engine import LCMSREngine
from repro.core import (
    APPSolver,
    ExactSolver,
    GreedySolver,
    LCMSRQuery,
    ProblemInstance,
    Region,
    RegionResult,
    RegionTuple,
    ScalingContext,
    TGENSolver,
    TopKResult,
    build_instance,
)
from repro.network import RoadNetwork, Rectangle
from repro.objects import GeoTextualObject, ObjectCorpus, map_objects_to_network
from repro.index import GridIndex
from repro.baselines import MaxRSSolver
from repro.datasets import build_ny_like, build_usanw_like, generate_workload

__version__ = "1.0.0"

__all__ = [
    "LCMSREngine",
    "LCMSRQuery",
    "Region",
    "RegionTuple",
    "RegionResult",
    "TopKResult",
    "ProblemInstance",
    "build_instance",
    "ScalingContext",
    "APPSolver",
    "TGENSolver",
    "GreedySolver",
    "ExactSolver",
    "MaxRSSolver",
    "RoadNetwork",
    "Rectangle",
    "GeoTextualObject",
    "ObjectCorpus",
    "map_objects_to_network",
    "GridIndex",
    "build_ny_like",
    "build_usanw_like",
    "generate_workload",
    "__version__",
]
