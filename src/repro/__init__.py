"""repro — a reproduction of "Retrieving Regions of Interest for User Exploration".

The library implements the length-constrained maximum-sum region (LCMSR) query of
Cao, Cong, Jensen and Yiu (PVLDB 7(9), 2014) together with every substrate the paper
depends on: the road-network graph model, geo-textual objects, TF-IDF text relevance,
the grid + inverted-list (+ B+-tree) index, the node-weight scaling technique, a
GW-based node-weighted k-MST solver, the APP / TGEN / Greedy algorithms, the top-k
extension, an exact oracle for small inputs and the MaxRS / clustering baselines.

For serving many queries, :class:`repro.service.QueryService` wraps an engine with a
worker pool, a result cache and a problem-instance cache (``submit_many`` /
``run_batch``). The offline index build persists as a versioned on-disk artifact
(:mod:`repro.service.persist`, ``python -m repro build``) that any process loads
back in I/O-bound time with the network arrays memory-mapped. To scale past one
core, ``python -m repro build --shards K`` partitions the artifact into tile
shards with halo edges and :class:`repro.service.ShardedQueryService` serves
them through a multi-process scatter-gather gateway
(:mod:`repro.service.sharding`) with byte-identical answers.

Quick start (build once — here in-process, normally ``python -m repro build``)::

    from repro import IndexBundle, LCMSREngine, build_ny_like

    dataset = build_ny_like()
    IndexBundle.from_dataset(dataset).save("artifacts/ny")

    engine = LCMSREngine.from_artifact("artifacts/ny")   # no index rebuild
    result = engine.query(["cafe", "restaurant"], delta=2000.0)
    print(result.region)

Batched serving (an engine or an artifact path)::

    from repro import QueryRequest, QueryService

    with QueryService("artifacts/ny", max_workers=4) as service:
        results = service.run_batch(
            [QueryRequest.create(["cafe"], delta=1500.0) for _ in range(32)]
        )
        print(service.stats().result_hit_rate)

See README.md for install / quickstart, docs/ARCHITECTURE.md for the
paper-to-module map, the serving-path data flow and the artifact layout, and
``python -m repro --help`` for the CLI.
"""

from repro.engine import LCMSREngine
from repro.service import (
    IndexBundle,
    QueryRequest,
    QueryService,
    ServiceStats,
    ShardedQueryService,
)
from repro.core import (
    APPSolver,
    Budget,
    ExactSolver,
    GreedySolver,
    LCMSRQuery,
    QueryPolicy,
    ResultQuality,
    ProblemInstance,
    Region,
    RegionResult,
    RegionTuple,
    ScalingContext,
    TGENSolver,
    TopKResult,
    build_instance,
)
from repro.network import CompactNetwork, GraphView, Rectangle, RoadNetwork
from repro.objects import GeoTextualObject, ObjectCorpus, map_objects_to_network
from repro.index import GridIndex
from repro.baselines import MaxRSSolver
from repro.datasets import build_ny_like, build_usanw_like, generate_workload

__version__ = "1.1.0"

__all__ = [
    "LCMSREngine",
    "IndexBundle",
    "QueryService",
    "QueryRequest",
    "QueryPolicy",
    "Budget",
    "ResultQuality",
    "ServiceStats",
    "ShardedQueryService",
    "LCMSRQuery",
    "Region",
    "RegionTuple",
    "RegionResult",
    "TopKResult",
    "ProblemInstance",
    "build_instance",
    "ScalingContext",
    "APPSolver",
    "TGENSolver",
    "GreedySolver",
    "ExactSolver",
    "MaxRSSolver",
    "RoadNetwork",
    "CompactNetwork",
    "GraphView",
    "Rectangle",
    "GeoTextualObject",
    "ObjectCorpus",
    "map_objects_to_network",
    "GridIndex",
    "build_ny_like",
    "build_usanw_like",
    "generate_workload",
    "__version__",
]
