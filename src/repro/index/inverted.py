"""Inverted lists over object descriptions (paper Section 3).

Each grid cell of the spatial index owns one :class:`InvertedIndex`. The index has a
vocabulary of the distinct words of the objects stored in the cell, and for each word
a postings list of ``(object_id, wto(t))`` pairs, where ``wto(t)`` is the normalised
term weight of Equation 2 precomputed by the vector-space model. The postings are
stored in a B+-tree keyed on ``(term, object_id)`` so that reading one term's postings
is an ordered range scan — the same access pattern the paper's disk-based tree gives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.index.bptree import BPlusTree
from repro.objects.geoobject import GeoTextualObject
from repro.textindex.vector_space import VectorSpaceModel


@dataclass(frozen=True)
class Posting:
    """One entry of a postings list: an object and its precomputed term weight."""

    object_id: int
    weight: float


class InvertedIndex:
    """Vocabulary + postings lists for the objects of one grid cell.

    Args:
        vsm: The corpus-wide vector-space model used to obtain ``wto(t)`` weights.
        bptree_order: Order of the backing B+-tree.
    """

    def __init__(self, vsm: VectorSpaceModel, bptree_order: int = 64) -> None:
        self._vsm = vsm
        self._tree: BPlusTree[Tuple[str, int], float] = BPlusTree(order=bptree_order)
        self._vocabulary: Set[str] = set()
        self._num_objects = 0

    # ------------------------------------------------------------------ build
    def add_object(self, obj: GeoTextualObject) -> None:
        """Add one object's description to the index."""
        added_any = False
        for term in obj.keywords:
            weight = self._vsm.object_term_weight(obj.object_id, term)
            if weight <= 0.0:
                continue
            self._tree.insert((term, obj.object_id), weight)
            self._vocabulary.add(term)
            added_any = True
        if added_any:
            self._num_objects += 1

    def add_objects(self, objects: Iterable[GeoTextualObject]) -> None:
        """Add every object from ``objects``."""
        for obj in objects:
            self.add_object(obj)

    # ------------------------------------------------------------------ pickling
    def __getstate__(self):
        # The vocabulary set is serialised in sorted order so that pickles of the
        # same logical index are byte-identical regardless of string-hash
        # randomisation — persisted artifacts rely on this for reproducible,
        # checksummable bytes (see repro.service.persist).
        state = dict(self.__dict__)
        state["_vocabulary"] = sorted(self._vocabulary)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._vocabulary = set(state["_vocabulary"])

    # ------------------------------------------------------------------ read
    @property
    def vocabulary(self) -> Set[str]:
        """The distinct terms indexed in this cell."""
        return set(self._vocabulary)

    @property
    def num_postings(self) -> int:
        """Total number of postings stored."""
        return len(self._tree)

    @property
    def num_objects(self) -> int:
        """Number of distinct objects that contributed at least one posting."""
        return self._num_objects

    def postings(self, term: str) -> List[Posting]:
        """Return the postings list of ``term`` (empty if the term is not indexed)."""
        term = term.lower()
        if term not in self._vocabulary:
            return []
        low = (term, -1)
        high = (term, 2**63)
        return [
            Posting(object_id=key[1], weight=value)
            for key, value in self._tree.range_scan(low, high)
        ]

    def candidate_objects(self, keywords: Iterable[str]) -> Set[int]:
        """Return the ids of objects containing at least one query keyword."""
        result: Set[int] = set()
        for term in keywords:
            for posting in self.postings(term):
                result.add(posting.object_id)
        return result

    def accumulate_scores(
        self, query_weights: Dict[str, float], query_norm: float
    ) -> Dict[int, float]:
        """Score all objects in this cell against a query (Equation 2).

        Args:
            query_weights: Per-term IDF weights ``w_{Q.ψ,t}`` of the query.
            query_norm: The query normaliser ``W_{Q.ψ}``.

        Returns:
            ``object_id → σ(o.ψ, Q.ψ)`` for every object with a non-zero score.
        """
        accumulator: Dict[int, float] = {}
        for term, query_weight in query_weights.items():
            if query_weight <= 0.0:
                continue
            for posting in self.postings(term):
                accumulator[posting.object_id] = (
                    accumulator.get(posting.object_id, 0.0) + query_weight * posting.weight
                )
        if query_norm <= 0.0:
            return {}
        return {obj_id: score / query_norm for obj_id, score in accumulator.items() if score > 0.0}
