"""Spatial-keyword indexing substrate (paper Section 3).

The paper organises geo-textual objects in a uniform spatial grid; each grid cell
holds an inverted index over the descriptions of the objects in the cell, and the
postings lists of each cell are stored in a disk-based B+-tree. This subpackage
reproduces that layered structure:

* :mod:`repro.index.bptree` — an order-configurable B+-tree with range scans (the
  in-memory stand-in for the paper's disk-based tree; same key → value access
  pattern),
* :mod:`repro.index.inverted` — per-cell inverted lists whose postings carry the
  precomputed ``wto(t)`` term weights of Equation 2, backed by the B+-tree,
* :mod:`repro.index.grid` — the uniform grid that ties cells to space and answers the
  query-time "score all relevant objects in Q.Λ" request,
* :mod:`repro.index.rtree` — a small STR-packed R-tree used by the MaxRS baseline.
"""

from repro.index.bptree import BPlusTree
from repro.index.inverted import InvertedIndex, Posting
from repro.index.grid import GridIndex
from repro.index.rtree import RTree, RTreeEntry

__all__ = [
    "BPlusTree",
    "InvertedIndex",
    "Posting",
    "GridIndex",
    "RTree",
    "RTreeEntry",
]
