"""Uniform spatial grid index over geo-textual objects (paper Section 3).

The grid partitions the dataset's bounding box into ``resolution x resolution`` cells.
Each object is stored in the cell containing its location, and each cell maintains an
:class:`~repro.index.inverted.InvertedIndex` over its objects' descriptions. At query
time the grid reads only the cells overlapping ``Q.Λ``, scores the relevant objects
via the cells' postings (Equation 2), and aggregates object scores into the per-node
weights the LCMSR solvers consume.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import IndexError_
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import NodeObjectMap
from repro.index.inverted import InvertedIndex
from repro.textindex.vector_space import VectorSpaceModel, QueryVector


class GridIndex:
    """Uniform grid + per-cell inverted lists over an object corpus.

    Args:
        corpus: The dataset's objects.
        resolution: Number of cells per axis (the grid has ``resolution**2`` cells).
        vsm: Optional prebuilt vector-space model; built from the corpus if omitted.
        extent: Optional bounding rectangle; the corpus bounding box if omitted.
        bptree_order: Order of the per-cell B+-trees.
        lazy: Defer building the cells and their inverted lists until the first
            query that needs them. The serving hot path scores through the
            columnar kernels and never touches the cells, so a streaming build
            (:meth:`IndexBundle.build_streaming
            <repro.service.bundle.IndexBundle.build_streaming>`) can index
            millions of objects without ever materialising ``resolution²``
            B+-trees; the cells appear on demand, bit-identical to an eager
            build (same corpus iteration order). Lazy grids also pickle without
            their cells, keeping ``index.pkl`` small and byte-deterministic
            regardless of what was queried before saving.
    """

    def __init__(
        self,
        corpus: ObjectCorpus,
        resolution: int = 64,
        vsm: Optional[VectorSpaceModel] = None,
        extent: Optional[Rectangle] = None,
        bptree_order: int = 64,
        lazy: bool = False,
    ) -> None:
        if resolution < 1:
            raise IndexError_(f"grid resolution must be >= 1, got {resolution}")
        if len(corpus) == 0:
            raise IndexError_("cannot build a grid index over an empty corpus")
        self._corpus = corpus
        self._resolution = resolution
        self._vsm = vsm or VectorSpaceModel(corpus, lazy=lazy)
        self._extent = extent or corpus.bounding_box()
        # Guard against degenerate (zero-area) extents.
        width = max(self._extent.width, 1e-9)
        height = max(self._extent.height, 1e-9)
        self._cell_width = width / resolution
        self._cell_height = height / resolution
        self._lazy = lazy
        self._cells: Optional[Dict[Tuple[int, int], InvertedIndex]] = None
        self._cell_objects: Optional[Dict[Tuple[int, int], List[int]]] = None
        self._bptree_order = bptree_order
        if not lazy:
            self._build_cells()

    def _build_cells(self) -> None:
        """Populate the cells and their inverted lists (corpus iteration order)."""
        self._cells = {}
        self._cell_objects = {}
        for obj in self._corpus:
            key = self._cell_of(obj.x, obj.y)
            cell = self._cells.get(key)
            if cell is None:
                cell = InvertedIndex(self._vsm, bptree_order=self._bptree_order)
                self._cells[key] = cell
                self._cell_objects[key] = []
            cell.add_object(obj)
            self._cell_objects[key].append(obj.object_id)

    def _ensure_cells(self) -> Dict[Tuple[int, int], InvertedIndex]:
        if self._cells is None:
            self._build_cells()
        return self._cells

    @property
    def cells_built(self) -> bool:
        """Whether the per-cell inverted lists exist yet (lazy grids defer them)."""
        return self._cells is not None

    def __getstate__(self):
        # Lazy grids drop their cells from the pickle: the cells rebuild on
        # demand from the corpus, and the pickle must not depend on whether a
        # query happened to touch the grid before saving (byte-determinism).
        state = dict(self.__dict__)
        if state.get("_lazy"):
            state["_cells"] = None
            state["_cell_objects"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_lazy", False)

    # ------------------------------------------------------------------ geometry
    @property
    def resolution(self) -> int:
        """Cells per axis."""
        return self._resolution

    @property
    def extent(self) -> Rectangle:
        """The indexed spatial extent."""
        return self._extent

    @property
    def num_nonempty_cells(self) -> int:
        """Number of cells that contain at least one object (builds lazy cells)."""
        return len(self._ensure_cells())

    @property
    def vector_space_model(self) -> VectorSpaceModel:
        """The vector-space model used for the postings weights."""
        return self._vsm

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        col = int((x - self._extent.min_x) / self._cell_width)
        row = int((y - self._extent.min_y) / self._cell_height)
        # Clamp so points on the max border land in the last cell, and points outside
        # the extent (possible when an explicit extent was passed) in the edge cells.
        col = min(max(col, 0), self._resolution - 1)
        row = min(max(row, 0), self._resolution - 1)
        return (col, row)

    def cell_rectangle(self, col: int, row: int) -> Rectangle:
        """Return the spatial rectangle covered by cell ``(col, row)``."""
        return Rectangle(
            self._extent.min_x + col * self._cell_width,
            self._extent.min_y + row * self._cell_height,
            self._extent.min_x + (col + 1) * self._cell_width,
            self._extent.min_y + (row + 1) * self._cell_height,
        )

    def _cells_overlapping(self, window: Rectangle) -> Iterable[Tuple[int, int]]:
        cells = self._ensure_cells()
        col_low, row_low = self._cell_of(window.min_x, window.min_y)
        col_high, row_high = self._cell_of(window.max_x, window.max_y)
        for col in range(col_low, col_high + 1):
            for row in range(row_low, row_high + 1):
                if (col, row) in cells:
                    yield (col, row)

    # ------------------------------------------------------------------ queries
    def objects_in_window(self, window: Rectangle) -> List[int]:
        """Return ids of objects located inside ``window``."""
        result: List[int] = []
        for key in self._cells_overlapping(window):
            cell_rect = self.cell_rectangle(*key)
            fully_inside = (
                window.min_x <= cell_rect.min_x
                and window.min_y <= cell_rect.min_y
                and window.max_x >= cell_rect.max_x
                and window.max_y >= cell_rect.max_y
            )
            for object_id in self._cell_objects[key]:  # populated by _cells_overlapping
                if fully_inside:
                    result.append(object_id)
                else:
                    obj = self._corpus.get(object_id)
                    if window.contains(obj.x, obj.y):
                        result.append(object_id)
        return result

    def score_objects(self, keywords: Iterable[str], window: Rectangle) -> Dict[int, float]:
        """Score all objects inside ``window`` against ``keywords`` (Equation 2).

        Only cells overlapping the window are touched and only postings of the query
        terms are read, mirroring the paper's query-time index usage.

        Returns:
            ``object_id → σ`` for objects with positive score located inside the
            window.
        """
        query: QueryVector = self._vsm.query_vector(keywords)
        if not query.terms:
            return {}
        scores: Dict[int, float] = {}
        for key in self._cells_overlapping(window):
            cell = self._ensure_cells()[key]
            cell_scores = cell.accumulate_scores(dict(query.weights), query.norm)
            if not cell_scores:
                continue
            cell_rect = self.cell_rectangle(*key)
            fully_inside = (
                window.min_x <= cell_rect.min_x
                and window.min_y <= cell_rect.min_y
                and window.max_x >= cell_rect.max_x
                and window.max_y >= cell_rect.max_y
            )
            for object_id, score in cell_scores.items():
                if not fully_inside:
                    obj = self._corpus.get(object_id)
                    if not window.contains(obj.x, obj.y):
                        continue
                scores[object_id] = scores.get(object_id, 0.0) + score
        return scores

    def node_weights(
        self,
        keywords: Iterable[str],
        window: Rectangle,
        mapping: NodeObjectMap,
        candidate_nodes: Optional[Set[int]] = None,
    ) -> Dict[int, float]:
        """Aggregate object scores into per-node weights σ_v for the solvers.

        Args:
            keywords: Query keywords.
            window: The query region ``Q.Λ``.
            mapping: Object → node assignment.
            candidate_nodes: Optional restriction to nodes inside ``Q.Λ`` (an object
                inside the window can be mapped to a node just outside it; the paper
                restricts weights to ``VQ``, so callers pass the windowed node set).

        Returns:
            ``node_id → σ_v`` for nodes with positive weight.
        """
        object_scores = self.score_objects(keywords, window)
        weights: Dict[int, float] = {}
        for object_id, score in object_scores.items():
            node_id = mapping.object_to_node.get(object_id)
            if node_id is None:
                continue
            if candidate_nodes is not None and node_id not in candidate_nodes:
                continue
            weights[node_id] = weights.get(node_id, 0.0) + score
        return weights
