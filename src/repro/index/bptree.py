"""An in-memory B+-tree with range scans.

The paper stores each grid cell's inverted lists in a disk-based B+-tree because the
lists "may not fit in memory". The reproduction keeps the same structure and access
pattern — keyed insertion, point lookup, ordered range scan over ``(term, object)``
composite keys — but in memory, which is the honest substitution for a single-machine
Python reproduction (documented in DESIGN.md §3). The tree is a textbook B+-tree:
internal nodes hold separator keys, leaves hold key/value pairs and are chained for
range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.exceptions import IndexError_

K = TypeVar("K")
V = TypeVar("V")


class _LeafNode:
    """A leaf: sorted keys with parallel values, linked to the next leaf."""

    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True


class _InternalNode:
    """An internal node: separator keys with ``len(keys) + 1`` children."""

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.children: List[Any] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree(Generic[K, V]):
    """A B+-tree mapping orderable keys to values.

    Args:
        order: Maximum number of children of an internal node (equivalently, a leaf
            holds at most ``order - 1`` entries). Must be at least 3. The default of
            64 mimics a small disk page.

    Duplicate keys overwrite the previous value, matching dictionary semantics — the
    inverted index uses composite ``(term, object_id)`` keys, which are unique.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise IndexError_(f"B+-tree order must be >= 3, got {order}")
        self._order = order
        self._root: _LeafNode | _InternalNode = _LeafNode()
        self._size = 0

    # ------------------------------------------------------------------ basic facts
    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        """The tree's order (maximum child count of internal nodes)."""
        return self._order

    def height(self) -> int:
        """Return the number of levels in the tree (1 for a single leaf)."""
        node = self._root
        levels = 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    # ------------------------------------------------------------------ search
    def _find_leaf(self, key: K) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the value stored under ``key``, or ``default`` if absent."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: K) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    # ------------------------------------------------------------------ insertion
    def insert(self, key: K, value: V) -> None:
        """Insert ``key`` → ``value``; an existing key's value is overwritten."""
        root = self._root
        split = self._insert_into(root, key, value)
        if split is not None:
            separator, right = split
            new_root = _InternalNode()
            new_root.keys = [separator]
            new_root.children = [root, right]
            self._root = new_root

    def _insert_into(self, node, key: K, value: V):
        """Insert recursively; returns ``(separator, new_right_node)`` when ``node`` split."""
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) < self._order:
                return None
            return self._split_leaf(node)

        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _LeafNode):
        middle = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _InternalNode):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _InternalNode()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # ------------------------------------------------------------------ scans
    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over all ``(key, value)`` pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: Optional[_LeafNode] = node
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, value
            leaf = leaf.next

    def keys(self) -> Iterator[K]:
        """Iterate over all keys in order."""
        for key, _ in self.items():
            yield key

    def range_scan(self, low: K, high: K) -> Iterator[Tuple[K, V]]:
        """Iterate over ``(key, value)`` pairs with ``low <= key <= high`` in order.

        This is the access pattern the inverted index uses to read one term's postings
        list: keys are ``(term, object_id)`` tuples and the scan runs from
        ``(term, -inf)`` to ``(term, +inf)``.
        """
        if low > high:
            return
        leaf: Optional[_LeafNode] = self._find_leaf(low)
        start = bisect.bisect_left(leaf.keys, low)
        index = start
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    # ------------------------------------------------------------------ validation
    def check_invariants(self) -> None:
        """Validate structural invariants; raises :class:`IndexError_` on violation.

        Checked: keys sorted within every node, leaf chain ordered, all leaves at the
        same depth, and internal fan-out within the order bound. Used by tests and
        handy when debugging.
        """
        leaf_depths: List[int] = []

        def visit(node, depth: int, low, high) -> None:
            keys = node.keys
            for i in range(1, len(keys)):
                if keys[i - 1] > keys[i]:
                    raise IndexError_("B+-tree node keys out of order")
            if low is not None and keys and keys[0] < low:
                raise IndexError_("B+-tree key below subtree lower bound")
            if high is not None and keys and keys[-1] > high:
                raise IndexError_("B+-tree key above subtree upper bound")
            if node.is_leaf:
                leaf_depths.append(depth)
                return
            if len(node.children) != len(keys) + 1:
                raise IndexError_("B+-tree internal node child count mismatch")
            if len(node.children) > self._order + 1:
                raise IndexError_("B+-tree internal node over capacity")
            for i, child in enumerate(node.children):
                child_low = keys[i - 1] if i > 0 else low
                child_high = keys[i] if i < len(keys) else high
                visit(child, depth + 1, child_low, child_high)

        visit(self._root, 0, None, None)
        if leaf_depths and len(set(leaf_depths)) != 1:
            raise IndexError_("B+-tree leaves are not all at the same depth")
        # Leaf chain must produce keys in globally sorted order and match the size.
        previous = None
        count = 0
        for key, _ in self.items():
            if previous is not None and key < previous:
                raise IndexError_("B+-tree leaf chain out of order")
            previous = key
            count += 1
        if count != self._size:
            raise IndexError_("B+-tree size counter does not match leaf contents")
