"""A small STR-packed R-tree over point data.

The MaxRS baseline (Choi et al. 2012 / Tao et al. 2013) that the paper compares
against in Section 7.5 is defined over objects indexed by an R-tree. This module
provides a bulk-loaded (Sort-Tile-Recursive) R-tree with rectangular range queries,
which is all the baseline and the grid-free code paths need. Points are stored as
degenerate rectangles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import IndexError_
from repro.network.subgraph import Rectangle


@dataclass(frozen=True)
class RTreeEntry:
    """A leaf entry: an item identifier with its point location."""

    item_id: int
    x: float
    y: float


class _RTreeNode:
    __slots__ = ("mbr", "children", "entries")

    def __init__(
        self,
        mbr: Rectangle,
        children: Optional[List["_RTreeNode"]] = None,
        entries: Optional[List[RTreeEntry]] = None,
    ) -> None:
        self.mbr = mbr
        self.children = children or []
        self.entries = entries or []

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _mbr_of_entries(entries: Sequence[RTreeEntry]) -> Rectangle:
    xs = [e.x for e in entries]
    ys = [e.y for e in entries]
    return Rectangle(min(xs), min(ys), max(xs), max(ys))


def _mbr_of_nodes(nodes: Sequence[_RTreeNode]) -> Rectangle:
    return Rectangle(
        min(n.mbr.min_x for n in nodes),
        min(n.mbr.min_y for n in nodes),
        max(n.mbr.max_x for n in nodes),
        max(n.mbr.max_y for n in nodes),
    )


class RTree:
    """Bulk-loaded STR R-tree over point entries.

    Args:
        entries: The points to index.
        leaf_capacity: Maximum entries per leaf (and children per internal node).
    """

    def __init__(self, entries: Iterable[RTreeEntry], leaf_capacity: int = 32) -> None:
        if leaf_capacity < 2:
            raise IndexError_(f"R-tree leaf capacity must be >= 2, got {leaf_capacity}")
        self._capacity = leaf_capacity
        entry_list = list(entries)
        self._size = len(entry_list)
        self._root: Optional[_RTreeNode] = self._bulk_load(entry_list) if entry_list else None

    def _bulk_load(self, entries: List[RTreeEntry]) -> _RTreeNode:
        leaves = self._pack_leaves(entries)
        nodes = leaves
        while len(nodes) > 1:
            nodes = self._pack_internal(nodes)
        return nodes[0]

    def _pack_leaves(self, entries: List[RTreeEntry]) -> List[_RTreeNode]:
        capacity = self._capacity
        num_leaves = math.ceil(len(entries) / capacity)
        slices = max(1, math.ceil(math.sqrt(num_leaves)))
        by_x = sorted(entries, key=lambda e: (e.x, e.y))
        leaves: List[_RTreeNode] = []
        slice_size = slices * capacity
        for i in range(0, len(by_x), slice_size):
            column = sorted(by_x[i : i + slice_size], key=lambda e: (e.y, e.x))
            for j in range(0, len(column), capacity):
                chunk = column[j : j + capacity]
                leaves.append(_RTreeNode(_mbr_of_entries(chunk), entries=chunk))
        return leaves

    def _pack_internal(self, nodes: List[_RTreeNode]) -> List[_RTreeNode]:
        capacity = self._capacity
        num_parents = math.ceil(len(nodes) / capacity)
        slices = max(1, math.ceil(math.sqrt(num_parents)))
        by_x = sorted(nodes, key=lambda n: (n.mbr.center()[0], n.mbr.center()[1]))
        parents: List[_RTreeNode] = []
        slice_size = slices * capacity
        for i in range(0, len(by_x), slice_size):
            column = sorted(by_x[i : i + slice_size], key=lambda n: (n.mbr.center()[1],))
            for j in range(0, len(column), capacity):
                chunk = column[j : j + capacity]
                parents.append(_RTreeNode(_mbr_of_nodes(chunk), children=chunk))
        return parents

    # ------------------------------------------------------------------ queries
    def __len__(self) -> int:
        return self._size

    def range_query(self, window: Rectangle) -> List[RTreeEntry]:
        """Return all entries whose point lies inside ``window``."""
        if self._root is None:
            return []
        result: List[RTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not window.intersects(node.mbr):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if window.contains(entry.x, entry.y):
                        result.append(entry)
            else:
                stack.extend(node.children)
        return result

    def count_in(self, window: Rectangle) -> int:
        """Return the number of entries inside ``window``."""
        return len(self.range_query(window))

    def height(self) -> int:
        """Return the tree height (0 for an empty tree, 1 for a single leaf)."""
        if self._root is None:
            return 0
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height
