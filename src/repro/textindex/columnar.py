"""Columnar scoring index: the array-first hot path from query window to σ_v.

The online cost of an LCMSR query is dominated by turning the query into per-node
weights σ_v: probe the text index for the relevant objects, score each object,
mask by the query window and aggregate object scores onto road-network nodes. The
object-loop implementations (:class:`~repro.textindex.relevance.RelevanceScorer`,
the grid's per-cell postings walk) pay Python dict and attribute traffic per
object; this module stores the same information as flat numpy columns so the whole
path runs as a handful of vectorised kernels:

* **CSR term → object postings** — ``post_indptr`` / ``post_rows`` (int32) with
  parallel value columns: the precomputed normalised TF-IDF weight ``wto(t)``
  (float64), the raw term frequency (float32 — term frequencies are small
  integers, exactly representable), and the precomputed language-model
  log-probability ``ln((1-λ)·P(t|o) + λ·P(t|C))`` (float64).
* **Object table** — ``object_ids``, ``obj_x`` / ``obj_y``, ``obj_rating`` and
  ``obj_node_pos`` (the object's node as a dense position into the node table),
  all parallel arrays in corpus iteration order.
* **Node table + CSR node → object map** — the mapped node ids (in
  :class:`~repro.objects.mapping.NodeObjectMap` iteration order), their
  coordinates, and ``node_indptr`` / ``node_rows`` giving each node's object rows.

**Exact parity contract.** :class:`WeightPipeline` reproduces the object-loop
reference backend (:meth:`RelevanceScorer.node_weights
<repro.textindex.relevance.RelevanceScorer.node_weights>` with
``backend="reference"``) *bit for bit*, including the iteration order of the
returned weight dict, for all three scoring modes. That is why the score-bearing
value columns are float64 rather than float32: the reference path computes in
float64, and a float32 round trip would perturb low-order bits and break the
byte-identical solver results the refactor guarantees. The vectorised kernels are
arranged to replay the reference accumulation order exactly — per-object
contributions are added term by term in query order, and per-node sums are
accumulated in object-row (= corpus) order, which is precisely the order the
reference loop uses. (Term frequencies are integral, so the raw-tf column alone
stays float32 without any loss.)

The index is frozen after construction (treat every array as read-only — loaded
artifacts hand out read-only memory maps) and picklable. Like the vector-space
model it snapshots the corpus at build time: mutating the corpus afterwards makes
the index stale.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import IndexError_
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import NodeObjectMap
from repro.textindex.vector_space import VectorSpaceModel, idf_weight, tf_weight

DEFAULT_LM_SMOOTHING = 0.2
"""Smoothing λ the language-model columns are precomputed with by default."""

BOUND_RESOLUTION = 16
"""Side length of the square cell grid the bound aggregate columns are built on."""

BOUND_GUARD = 1.0 + 1e-9
"""Multiplicative guard applied to the per-object potentials before aggregation.

The potentials are query-independent *upper bounds* on any query's per-object
score; the closed forms are exact in real arithmetic but individual float steps
(e.g. ``sqrt(sum(wto^2))`` vs the reference's normalised dot product) can land a
couple of ulps apart. Inflating every nonzero potential by one part in 1e9 keeps
the bounds admissible without disturbing exact zeros (0 * guard == 0), which is
what the zero-mass skip tests rely on.
"""

BOUND_MODES: Tuple[str, ...] = ("text_relevance", "rating_if_match", "language_model")
"""Row order of the per-mode bound aggregate matrices (``cell_sigma_*``)."""

CI_Z = 1.96
"""Normal z-score of the 95% two-sided confidence intervals the sampler reports."""

SAMPLE_MIN_PER_STRATUM = 8
"""Minimum rows sampled from a non-empty stratum (or the whole stratum if smaller)."""


class ColumnarScoringIndex:
    """Frozen columnar layout of the corpus + mapping for vectorised scoring.

    Instances are built once per dataset — :meth:`build` — or reconstructed from
    persisted arrays — :meth:`from_arrays` — and never mutated afterwards.

    Attributes (all numpy arrays; treat as read-only):
        terms: Sorted tuple of the corpus vocabulary; the term id *is* the
            position in this tuple.
        post_indptr / post_rows: CSR postings — term id → object rows (ascending
            within each term).
        post_tfidf: Normalised TF-IDF weight ``wto(t)`` per posting (float64).
        post_tf: Raw term frequency per posting (float32; integral values).
        lm_log_mixed: ``ln((1-λ)·P(t|o) + λ·P(t|C))`` per posting (float64).
        lm_log_base: ``ln(λ·P(t|C))`` per term (float64).
        lm_smoothing: The λ the language-model columns were computed with.
        object_ids / obj_x / obj_y / obj_rating: Object table, corpus order.
        obj_node_pos: Dense node-table position per object (-1 if unmapped).
        node_ids / node_x / node_y: Mapped-node table, mapping iteration order.
        node_indptr / node_rows: CSR node → object rows (ascending per node).
        bound_meta: ``[resolution, min_x, min_y, cell_w, cell_h]`` of the bound
            cell grid (float64).
        obj_cell / node_cell: Row-major bound-grid cell per object / node (int32).
        cell_sigma_mass / cell_sigma_max / cell_node_mass: Per-mode (rows follow
            ``BOUND_MODES``) per-cell aggregates of the guarded score potentials.
        cell_obj_count / cell_post_count: Mapped objects / their posting counts
            per cell (int64).
        term_df: Global document frequency ``f_t`` per term (int64). Equals the
            postings-row count per term for a full-corpus index, but is persisted
            separately so a spatial shard (whose postings cover only its own
            objects) still computes the corpus-global IDF weights.
        corpus_meta: ``[global_num_objects]`` (int64) — the corpus size ``|D|``
            the IDF weights are computed against, which for a shard is the size
            of the *full* corpus, not the shard's object-row count.
    """

    def __init__(
        self,
        terms: Sequence[str],
        arrays: Mapping[str, np.ndarray],
        lm_smoothing: float = DEFAULT_LM_SMOOTHING,
    ) -> None:
        self.terms: Tuple[str, ...] = tuple(terms)
        self.lm_smoothing = float(lm_smoothing)
        for name in ARRAY_FIELDS:
            if name not in arrays:
                raise IndexError_(f"columnar index is missing array {name!r}")
            setattr(self, name, arrays[name])
        if len(self.post_indptr) != len(self.terms) + 1:
            raise IndexError_(
                f"postings indptr length {len(self.post_indptr)} does not match "
                f"{len(self.terms)} terms"
            )
        if len(self.node_indptr) != len(self.node_ids) + 1:
            raise IndexError_("node map indptr length does not match the node table")
        self._term_ids: Dict[str, int] = {t: i for i, t in enumerate(self.terms)}
        self._object_rows: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        corpus: ObjectCorpus,
        mapping: NodeObjectMap,
        node_coords,
        vsm: Optional[VectorSpaceModel] = None,
        lm_smoothing: float = DEFAULT_LM_SMOOTHING,
    ) -> "ColumnarScoringIndex":
        """Freeze ``corpus`` + ``mapping`` into the columnar layout.

        Args:
            corpus: The dataset's objects (rows follow its iteration order).
            mapping: Object → node assignment; nodes keep its iteration order.
            node_coords: ``node_id → (x, y)`` callable for the mapped nodes —
                typically ``GraphView.coords`` of the indexed network.
            vsm: Optional prebuilt vector-space model supplying the precomputed
                ``wto(t)`` postings weights. When omitted, the weights are
                computed inline per object with the exact arithmetic of
                :class:`VectorSpaceModel` (same float operations in the same
                order, so the columns are bit-identical) — without ever
                materialising the model's corpus-sized weight tables, which is
                what keeps :meth:`IndexBundle.build_streaming
                <repro.service.bundle.IndexBundle.build_streaming>` inside a
                bounded memory envelope.
            lm_smoothing: λ for the precomputed language-model columns.

        Raises:
            IndexError_: If the mapping references objects absent from the corpus
                or ``lm_smoothing`` is outside (0, 1).
        """
        if not 0.0 < lm_smoothing < 1.0:
            raise IndexError_(f"lm smoothing must be in (0, 1), got {lm_smoothing}")
        model = vsm

        objects = list(corpus)
        num_objects = len(objects)
        row_of: Dict[int, int] = {
            obj.object_id: row for row, obj in enumerate(objects)
        }
        terms = tuple(sorted(corpus.vocabulary()))
        term_ids = {t: i for i, t in enumerate(terms)}
        num_terms = len(terms)

        # --- postings (counting sort by term id; rows ascend within a term) ---
        counts = np.zeros(num_terms + 1, dtype=np.int64)
        for obj in objects:
            for term in obj.keywords:
                counts[term_ids[term] + 1] += 1
        post_indptr = np.cumsum(counts, dtype=np.int64)
        nnz = int(post_indptr[-1])
        post_rows = np.empty(nnz, dtype=np.int32)
        post_tfidf = np.empty(nnz, dtype=np.float64)
        post_tf = np.empty(nnz, dtype=np.float32)
        lm_log_mixed = np.empty(nnz, dtype=np.float64)
        lm_log_base = np.zeros(num_terms, dtype=np.float64)

        collection_counts = corpus.collection_term_counts()
        collection_total = corpus.collection_total_terms()
        for term, tid in term_ids.items():
            # Replicates LanguageModelScorer._collection_probability exactly.
            p_col = (
                collection_counts.get(term, 0) / collection_total
                if collection_total
                else 0.0
            )
            base = lm_smoothing * p_col
            lm_log_base[tid] = math.log(base) if base > 0.0 else 0.0

        cursor = post_indptr[:-1].copy()
        one_minus = 1.0 - lm_smoothing
        for row, obj in enumerate(objects):
            object_total = sum(obj.keywords.values())
            if model is not None:
                wto = {
                    term: model.object_term_weight(obj.object_id, term)
                    for term in obj.keywords
                }
            else:
                # VectorSpaceModel._compute_object's arithmetic, inlined: same
                # float operations in the same order ⇒ bit-identical weights.
                weights = {
                    term: tf_weight(freq) for term, freq in obj.keywords.items()
                }
                norm = math.sqrt(sum(w * w for w in weights.values()))
                denominator = norm if norm > 0 else 1.0
                wto = {term: w / denominator for term, w in weights.items()}
            for term, tf in obj.keywords.items():
                tid = term_ids[term]
                slot = cursor[tid]
                cursor[tid] += 1
                post_rows[slot] = row
                post_tfidf[slot] = wto[term]
                post_tf[slot] = tf
                # Same float operations as LanguageModelScorer.score, so the
                # precomputed logs replay its arithmetic bit for bit.
                p_doc = tf / object_total if object_total else 0.0
                p_col = (
                    collection_counts.get(term, 0) / collection_total
                    if collection_total
                    else 0.0
                )
                mixed = one_minus * p_doc + lm_smoothing * p_col
                lm_log_mixed[slot] = math.log(mixed) if mixed > 0.0 else 0.0

        # --- object table ---
        object_ids = np.fromiter(
            (obj.object_id for obj in objects), dtype=np.int64, count=num_objects
        )
        obj_x = np.fromiter((obj.x for obj in objects), dtype=np.float64, count=num_objects)
        obj_y = np.fromiter((obj.y for obj in objects), dtype=np.float64, count=num_objects)
        obj_rating = np.fromiter(
            (obj.rating for obj in objects), dtype=np.float64, count=num_objects
        )

        # --- node table + node → object CSR (mapping iteration order) ---
        node_id_list: List[int] = []
        node_indptr_list: List[int] = [0]
        node_row_list: List[int] = []
        obj_node_pos = np.full(num_objects, -1, dtype=np.int32)
        for node_id, object_list in mapping.node_to_objects.items():
            pos = len(node_id_list)
            node_id_list.append(node_id)
            for object_id in object_list:
                row = row_of.get(object_id)
                if row is None:
                    raise IndexError_(
                        f"mapping references object {object_id} absent from the corpus"
                    )
                node_row_list.append(row)
                obj_node_pos[row] = pos
            node_indptr_list.append(len(node_row_list))
        node_ids = np.asarray(node_id_list, dtype=np.int64)
        coords = [node_coords(node_id) for node_id in node_id_list]
        node_x = np.asarray([c[0] for c in coords], dtype=np.float64)
        node_y = np.asarray([c[1] for c in coords], dtype=np.float64)

        bound_arrays = _bound_aggregate_arrays(
            post_indptr=post_indptr,
            post_rows=post_rows,
            post_tfidf=post_tfidf,
            lm_log_mixed=lm_log_mixed,
            lm_log_base=lm_log_base,
            obj_x=obj_x,
            obj_y=obj_y,
            obj_rating=obj_rating,
            obj_node_pos=obj_node_pos,
            node_x=node_x,
            node_y=node_y,
        )

        arrays = {
            "post_indptr": np.asarray(post_indptr, dtype=np.int32)
            if nnz <= np.iinfo(np.int32).max
            else post_indptr,
            "post_rows": post_rows,
            "post_tfidf": post_tfidf,
            "post_tf": post_tf,
            "lm_log_mixed": lm_log_mixed,
            "lm_log_base": lm_log_base,
            "object_ids": object_ids,
            "obj_x": obj_x,
            "obj_y": obj_y,
            "obj_rating": obj_rating,
            "obj_node_pos": obj_node_pos,
            "node_ids": node_ids,
            "node_x": node_x,
            "node_y": node_y,
            "node_indptr": np.asarray(node_indptr_list, dtype=np.int32),
            "node_rows": np.asarray(node_row_list, dtype=np.int32),
            "term_df": np.diff(np.asarray(post_indptr, dtype=np.int64)),
            "corpus_meta": np.array([num_objects], dtype=np.int64),
        }
        arrays.update(bound_arrays)
        return cls(terms, arrays, lm_smoothing=lm_smoothing)

    @classmethod
    def from_arrays(
        cls,
        terms: Sequence[str],
        arrays: Mapping[str, np.ndarray],
        lm_smoothing: float,
    ) -> "ColumnarScoringIndex":
        """Reconstruct an index from persisted arrays (see :mod:`repro.service.persist`).

        The arrays may be read-only memory maps; the index never writes to them.
        """
        return cls(terms, arrays, lm_smoothing=lm_smoothing)

    def subset_for_extent(self, extent: Rectangle) -> "ColumnarScoringIndex":
        """Restrict the index to one spatial shard's extent, keeping global stats.

        The subset keeps every object whose coordinates lie inside ``extent``
        (borders included — the same comparison :meth:`WeightPipeline.node_weights`
        masks with) **or whose mapped node does**: an object can sit outside the
        extent while its network node is inside (datasets scatter objects beyond
        the node bounding box), and dropping it would silently shrink that
        node's σ. Every node inside ``extent`` or carrying a kept object is kept
        too, all in their original table order. Because the full index's
        row/node order is preserved under subsetting, every accumulation the
        pipeline performs for a query window ``Λ ⊆ extent`` adds the same float64
        values in the same order as the full index — the kernel outputs are
        bit-identical.

        What stays *global* (copied, not recomputed): the vocabulary and term
        ids, ``lm_log_base`` (the collection language model), ``term_df`` and
        ``corpus_meta`` (the IDF statistics), and the precomputed per-posting
        value columns. What is *local*: the object/node tables, the postings
        rows (filtered and renumbered; ``post_indptr`` keeps its full
        vocabulary length) and the bound-cell aggregates, which are recomputed
        over the shard so zero-mass window skips stay admissible (skip-decision
        differences are result-identical — the pruning-parity contract).
        """
        keep_obj = (
            (self.obj_x >= extent.min_x)
            & (self.obj_x <= extent.max_x)
            & (self.obj_y >= extent.min_y)
            & (self.obj_y <= extent.max_y)
        )
        keep_node = (
            (self.node_x >= extent.min_x)
            & (self.node_x <= extent.max_x)
            & (self.node_y >= extent.min_y)
            & (self.node_y <= extent.max_y)
        )
        # σ parity: an in-extent node keeps its full object list, even objects
        # whose own coordinates fall outside the extent.
        node_pos = self.obj_node_pos
        mapped_obj = node_pos >= 0
        keep_obj = keep_obj | (mapped_obj & keep_node[np.where(mapped_obj, node_pos, 0)])
        kept_positions = node_pos[keep_obj]
        keep_node = keep_node.copy()
        keep_node[kept_positions[kept_positions >= 0]] = True

        num_objects = self.num_objects
        num_nodes = self.num_nodes
        new_row = np.full(num_objects, -1, dtype=np.int64)
        new_row[np.flatnonzero(keep_obj)] = np.arange(int(keep_obj.sum()))
        new_pos = np.full(num_nodes, -1, dtype=np.int64)
        new_pos[np.flatnonzero(keep_node)] = np.arange(int(keep_node.sum()))

        # Postings: drop rows of dropped objects, renumber the survivors. The
        # filter preserves posting order and the row renumbering is monotone,
        # so rows still ascend within each term.
        post_indptr = np.asarray(self.post_indptr, dtype=np.int64)
        post_tids = np.repeat(np.arange(self.num_terms), np.diff(post_indptr))
        keep_post = keep_obj[self.post_rows]
        sub_post_rows = new_row[self.post_rows[keep_post]].astype(np.int32)
        counts = np.bincount(post_tids[keep_post], minlength=self.num_terms)
        sub_post_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        if len(sub_post_rows) <= np.iinfo(np.int32).max:
            sub_post_indptr = sub_post_indptr.astype(np.int32)

        # Node → object CSR: keep entries whose node AND object survive.
        node_indptr = np.asarray(self.node_indptr, dtype=np.int64)
        node_owner = np.repeat(np.arange(num_nodes), np.diff(node_indptr))
        keep_entry = keep_node[node_owner] & keep_obj[self.node_rows]
        sub_node_rows = new_row[self.node_rows[keep_entry]].astype(np.int32)
        owner_counts = np.bincount(
            new_pos[node_owner[keep_entry]], minlength=int(keep_node.sum())
        )
        sub_node_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(owner_counts, dtype=np.int64)]
        ).astype(np.int32)

        obj_node_pos = self.obj_node_pos[keep_obj].astype(np.int64)
        mapped = obj_node_pos >= 0
        obj_node_pos[mapped] = new_pos[obj_node_pos[mapped]]
        obj_node_pos = obj_node_pos.astype(np.int32)

        obj_x = np.asarray(self.obj_x[keep_obj])
        obj_y = np.asarray(self.obj_y[keep_obj])
        obj_rating = np.asarray(self.obj_rating[keep_obj])
        node_x = np.asarray(self.node_x[keep_node])
        node_y = np.asarray(self.node_y[keep_node])
        lm_log_base = np.asarray(self.lm_log_base)

        bound_arrays = _bound_aggregate_arrays(
            post_indptr=np.asarray(sub_post_indptr, dtype=np.int64),
            post_rows=sub_post_rows,
            post_tfidf=np.asarray(self.post_tfidf[keep_post]),
            lm_log_mixed=np.asarray(self.lm_log_mixed[keep_post]),
            lm_log_base=lm_log_base,
            obj_x=obj_x,
            obj_y=obj_y,
            obj_rating=obj_rating,
            obj_node_pos=obj_node_pos,
            node_x=node_x,
            node_y=node_y,
        )

        arrays = {
            "post_indptr": sub_post_indptr,
            "post_rows": sub_post_rows,
            "post_tfidf": np.asarray(self.post_tfidf[keep_post]),
            "post_tf": np.asarray(self.post_tf[keep_post]),
            "lm_log_mixed": np.asarray(self.lm_log_mixed[keep_post]),
            "lm_log_base": lm_log_base,
            "object_ids": np.asarray(self.object_ids[keep_obj]),
            "obj_x": obj_x,
            "obj_y": obj_y,
            "obj_rating": obj_rating,
            "obj_node_pos": obj_node_pos,
            "node_ids": np.asarray(self.node_ids[keep_node]),
            "node_x": node_x,
            "node_y": node_y,
            "node_indptr": sub_node_indptr,
            "node_rows": sub_node_rows,
            "term_df": np.asarray(self.term_df),
            "corpus_meta": np.asarray(self.corpus_meta),
        }
        arrays.update(bound_arrays)
        return type(self)(self.terms, arrays, lm_smoothing=self.lm_smoothing)

    # ------------------------------------------------------------------ pickling
    def __getstate__(self):
        state = dict(self.__dict__)
        # The row lookup is a per-process cache; memmapped arrays materialise on
        # pickle, which keeps pickles self-contained.
        state["_object_rows"] = None
        return state

    # ------------------------------------------------------------------ shape facts
    @property
    def num_terms(self) -> int:
        """Vocabulary size."""
        return len(self.terms)

    @property
    def num_objects(self) -> int:
        """Number of object rows in this index (for a shard: its own objects)."""
        return len(self.object_ids)

    @property
    def global_num_objects(self) -> int:
        """Corpus size ``|D|`` the IDF weights use (full corpus, even for shards)."""
        return int(self.corpus_meta[0])

    @property
    def num_nodes(self) -> int:
        """Number of mapped nodes in the node table."""
        return len(self.node_ids)

    @property
    def num_postings(self) -> int:
        """Total number of (term, object) postings."""
        return len(self.post_rows)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Return the array columns keyed by field name (the persistence surface)."""
        return {name: getattr(self, name) for name in ARRAY_FIELDS}

    # ------------------------------------------------------------------ lookups
    def term_id(self, term: str) -> Optional[int]:
        """Return the term's id, or ``None`` if it is not in the vocabulary."""
        return self._term_ids.get(term)

    def document_frequency(self, term: str) -> int:
        """Return the number of corpus objects containing ``term`` (``f_t``).

        Reads the persisted global ``term_df`` column, not the local postings
        length: on a spatial shard the two differ, and the IDF weights must be
        computed against the full corpus for shard answers to stay bit-identical
        to the unsharded index.
        """
        tid = self._term_ids.get(term)
        if tid is None:
            return 0
        return int(self.term_df[tid])

    def postings(self, term: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(object_rows, tfidf_weights, raw_tf)`` slices for ``term``."""
        tid = self._term_ids.get(term)
        if tid is None:
            empty = np.empty(0, dtype=np.int32)
            return empty, np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float32)
        start, end = int(self.post_indptr[tid]), int(self.post_indptr[tid + 1])
        return (
            self.post_rows[start:end],
            self.post_tfidf[start:end],
            self.post_tf[start:end],
        )

    def object_rows_at_node(self, node_pos: int) -> np.ndarray:
        """Return the object rows mapped to the node at table position ``node_pos``."""
        start, end = int(self.node_indptr[node_pos]), int(self.node_indptr[node_pos + 1])
        return self.node_rows[start:end]

    def object_row(self, object_id: int) -> Optional[int]:
        """Return the table row of ``object_id`` (``None`` if unknown); cached lazily."""
        rows = self._object_rows
        if rows is None:
            rows = {
                int(object_id): row
                for row, object_id in enumerate(self.object_ids.tolist())
            }
            self._object_rows = rows
        return rows.get(object_id)

    # ------------------------------------------------------------------ query kernels
    def query_weights(self, keywords: Sequence[str]) -> Tuple[List[Tuple[int, float]], float]:
        """Return ``([(term_id, idf_weight)], query_norm)`` for normalised keywords.

        Replicates :meth:`VectorSpaceModel.query_vector
        <repro.textindex.vector_space.VectorSpaceModel.query_vector>` bit for bit
        (unknown terms carry weight 0 and are dropped from the id list, but still
        participate — as zeros — in the norm, exactly as in the reference).
        """
        corpus_size = self.global_num_objects
        weighted: List[Tuple[int, float]] = []
        norm_sq = 0.0
        for term in keywords:
            tid = self._term_ids.get(term)
            weight = (
                idf_weight(corpus_size, self.document_frequency(term))
                if tid is not None
                else 0.0
            )
            norm_sq += weight * weight
            if tid is not None and weight > 0.0:
                weighted.append((tid, weight))
        norm = math.sqrt(norm_sq)
        return weighted, (norm if norm > 0 else 1.0)

    def tfidf_object_scores(self, keywords: Sequence[str]) -> np.ndarray:
        """Return the dense per-object TF-IDF score column σ(o.ψ, Q.ψ) (float64).

        ``keywords`` must already be normalised and de-duplicated (an
        :class:`~repro.core.query.LCMSRQuery` guarantees this). Each entry is bit
        identical to :meth:`VectorSpaceModel.score
        <repro.textindex.vector_space.VectorSpaceModel.score>` for the same
        object, because contributions are accumulated in query-term order with
        the same float64 operations.
        """
        accumulator = np.zeros(self.num_objects, dtype=np.float64)
        weighted, norm = self.query_weights(keywords)
        if not weighted:
            return accumulator
        indptr = self.post_indptr
        for tid, query_weight in weighted:
            start, end = int(indptr[tid]), int(indptr[tid + 1])
            if start == end:
                continue
            rows = self.post_rows[start:end]
            accumulator[rows] += query_weight * self.post_tfidf[start:end]
        np.divide(accumulator, norm, out=accumulator)
        return accumulator

    def matched_objects(self, keywords: Sequence[str]) -> np.ndarray:
        """Boolean column: object contains at least one of the (normalised) keywords."""
        matched = np.zeros(self.num_objects, dtype=bool)
        indptr = self.post_indptr
        for term in keywords:
            tid = self._term_ids.get(term)
            if tid is None:
                continue
            matched[self.post_rows[int(indptr[tid]) : int(indptr[tid + 1])]] = True
        return matched

    def lm_object_scores(self, keywords: Sequence[str]) -> np.ndarray:
        """Dense per-object language-model scores (float64), bit-equal to the scalar.

        Replays :meth:`LanguageModelScorer.score
        <repro.textindex.relevance.LanguageModelScorer.score>`: for every query
        term present in the collection, each object accrues either the
        precomputed ``ln(mixed)`` (object contains the term) or ``ln(λ·P(t|C))``
        (it does not) — the same additions in the same order the scalar loop
        performs — and the shared background sum is subtracted once at the end.
        Objects matching no query term land on exactly 0.0.
        """
        num_objects = self.num_objects
        scores = np.zeros(num_objects, dtype=np.float64)
        valid_tids = [
            tid
            for term in keywords
            if (tid := self._term_ids.get(term)) is not None
            and self.lm_log_base[tid] != 0.0
        ]
        if not valid_tids:
            return scores
        background = 0.0
        indptr = self.post_indptr
        for tid in valid_tids:
            log_base = float(self.lm_log_base[tid])
            column = np.full(num_objects, log_base, dtype=np.float64)
            start, end = int(indptr[tid]), int(indptr[tid + 1])
            column[self.post_rows[start:end]] = self.lm_log_mixed[start:end]
            scores += column
            background += log_base
        scores -= background
        np.maximum(scores, 0.0, out=scores)
        return scores


def _bound_aggregate_arrays(
    post_indptr: np.ndarray,
    post_rows: np.ndarray,
    post_tfidf: np.ndarray,
    lm_log_mixed: np.ndarray,
    lm_log_base: np.ndarray,
    obj_x: np.ndarray,
    obj_y: np.ndarray,
    obj_rating: np.ndarray,
    obj_node_pos: np.ndarray,
    node_x: np.ndarray,
    node_y: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Compute the per-cell bound aggregate columns for all three scoring modes.

    The per-object *potentials* are query-independent upper bounds on any query's
    score of that object:

    * ``text_relevance`` — ``||wto||_2`` (Cauchy–Schwarz: the query weight vector
      is non-negative with unit-or-larger norm divisor, so the normalised dot
      product never exceeds the object vector's norm).
    * ``rating_if_match`` — ``max(rating, 0)`` (the score is the rating when
      matched, else 0).
    * ``language_model`` — ``Σ_t max(ln mixed − ln base, 0)`` over the object's
      terms with a positive collection probability (each query term the object
      contains contributes exactly that difference; terms it lacks contribute 0).

    Each nonzero potential is inflated by :data:`BOUND_GUARD` to absorb ulp-level
    float divergence from the closed forms, aggregated onto nodes via the object →
    node map, and then onto a ``BOUND_RESOLUTION``-square grid of cells covering
    the combined object + node bounding box.
    """
    resolution = BOUND_RESOLUTION
    num_cells = resolution * resolution
    num_modes = len(BOUND_MODES)
    num_objects = len(obj_x)
    num_nodes = len(node_x)
    num_terms = len(lm_log_base)

    # --- per-object potentials (rows follow BOUND_MODES order) ---
    post_counts = np.bincount(post_rows, minlength=num_objects)
    tfidf_ub = np.sqrt(
        np.bincount(post_rows, weights=post_tfidf * post_tfidf, minlength=num_objects)
    )
    if len(post_rows):
        tids = np.repeat(np.arange(num_terms), np.diff(post_indptr))
        base = lm_log_base[tids]
        diff = np.where(base != 0.0, lm_log_mixed - base, 0.0)
        np.maximum(diff, 0.0, out=diff)
        lm_ub = np.bincount(post_rows, weights=diff, minlength=num_objects)
    else:
        lm_ub = np.zeros(num_objects, dtype=np.float64)
    potentials = np.stack(
        [
            tfidf_ub * BOUND_GUARD,
            np.maximum(obj_rating, 0.0) * BOUND_GUARD,
            lm_ub * BOUND_GUARD,
        ]
    )

    # --- cell geometry: combined object + node bounding box ---
    if num_objects + num_nodes > 0:
        all_x = np.concatenate([obj_x, node_x])
        all_y = np.concatenate([obj_y, node_y])
        min_x, max_x = float(all_x.min()), float(all_x.max())
        min_y, max_y = float(all_y.min()), float(all_y.max())
    else:
        min_x = min_y = max_x = max_y = 0.0
    cell_w = (max_x - min_x) / resolution or 1.0
    cell_h = (max_y - min_y) / resolution or 1.0

    def cells_of(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        cx = np.clip(((xs - min_x) / cell_w).astype(np.int64), 0, resolution - 1)
        cy = np.clip(((ys - min_y) / cell_h).astype(np.int64), 0, resolution - 1)
        return (cy * resolution + cx).astype(np.int32)

    obj_cell = cells_of(obj_x, obj_y)
    node_cell = cells_of(node_x, node_y)

    # --- aggregation (mapped objects only: unmapped ones never reach σ_v) ---
    mapped = obj_node_pos >= 0
    mapped_cells = obj_cell[mapped]
    cell_sigma_mass = np.zeros((num_modes, num_cells), dtype=np.float64)
    cell_sigma_max = np.zeros((num_modes, num_cells), dtype=np.float64)
    cell_node_mass = np.zeros((num_modes, num_cells), dtype=np.float64)
    for row in range(num_modes):
        mapped_ub = potentials[row][mapped]
        cell_sigma_mass[row] = np.bincount(
            mapped_cells, weights=mapped_ub, minlength=num_cells
        )
        node_ub = np.bincount(
            obj_node_pos[mapped], weights=mapped_ub, minlength=num_nodes
        )
        cell_node_mass[row] = np.bincount(
            node_cell, weights=node_ub, minlength=num_cells
        )
        np.maximum.at(cell_sigma_max[row], node_cell, node_ub)

    cell_obj_count = np.bincount(mapped_cells, minlength=num_cells).astype(np.int64)
    cell_post_count = np.bincount(
        mapped_cells, weights=post_counts[mapped].astype(np.float64), minlength=num_cells
    ).astype(np.int64)

    return {
        "bound_meta": np.array(
            [float(resolution), min_x, min_y, cell_w, cell_h], dtype=np.float64
        ),
        "obj_cell": obj_cell,
        "node_cell": node_cell,
        "cell_sigma_mass": cell_sigma_mass,
        "cell_sigma_max": cell_sigma_max,
        "cell_node_mass": cell_node_mass,
        "cell_obj_count": cell_obj_count,
        "cell_post_count": cell_post_count,
    }


ARRAY_FIELDS: Tuple[str, ...] = (
    "post_indptr",
    "post_rows",
    "post_tfidf",
    "post_tf",
    "lm_log_mixed",
    "lm_log_base",
    "object_ids",
    "obj_x",
    "obj_y",
    "obj_rating",
    "obj_node_pos",
    "node_ids",
    "node_x",
    "node_y",
    "node_indptr",
    "node_rows",
    "bound_meta",
    "obj_cell",
    "node_cell",
    "cell_sigma_mass",
    "cell_sigma_max",
    "cell_node_mass",
    "cell_obj_count",
    "cell_post_count",
    "term_df",
    "corpus_meta",
)
"""Names of the persisted array columns, in canonical order.

The eight ``bound_*`` / ``*_cell`` / ``cell_*`` columns (format version 3) are
the per-grid-cell aggregates backing :class:`repro.core.bounds.UpperBoundIndex`;
see :func:`_bound_aggregate_arrays` for their definitions. ``term_df`` and
``corpus_meta`` (format version 4) persist the corpus-global document
frequencies and corpus size so spatial shards — whose postings cover only their
own objects — still compute the exact global IDF weights (see
:meth:`ColumnarScoringIndex.subset_for_extent`).
"""


class WeightPipeline:
    """Vectorised query → σ_v computation over a :class:`ColumnarScoringIndex`.

    A pipeline is bound to one scoring mode (the bundle's) at construction; its
    :meth:`node_weights` is the drop-in replacement for the object-loop scorer on
    the instance-build hot path and returns bit-identical weights in the same
    dict order (see the module docstring for why that holds).

    Args:
        index: The frozen columnar index.
        mode: The per-object weight definition to compute. Accepts the
            :class:`~repro.textindex.relevance.ScoringMode` value (imported
            lazily to avoid an import cycle).
        lm_smoothing: Required λ when ``mode`` is the language model; must match
            the smoothing the index columns were precomputed with.

    Raises:
        IndexError_: If a language-model pipeline is requested with a smoothing
            different from the index's precomputed columns.
    """

    def __init__(self, index: ColumnarScoringIndex, mode, lm_smoothing: Optional[float] = None) -> None:
        from repro.textindex.relevance import ScoringMode  # deferred: cycle guard

        self._index = index
        self._mode = mode
        self._bounds = None
        self._sample_frame: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if mode is ScoringMode.LANGUAGE_MODEL:
            wanted = index.lm_smoothing if lm_smoothing is None else float(lm_smoothing)
            if wanted != index.lm_smoothing:
                raise IndexError_(
                    f"columnar index precomputed language-model columns with "
                    f"smoothing {index.lm_smoothing}, cannot serve {wanted}"
                )

    @property
    def index(self) -> ColumnarScoringIndex:
        """The underlying columnar index."""
        return self._index

    @property
    def mode(self):
        """The bound scoring mode."""
        return self._mode

    @property
    def bounds(self):
        """The :class:`repro.core.bounds.UpperBoundIndex` for this pipeline's mode.

        Built lazily from the index's persisted cell aggregates; the import is
        deferred because :mod:`repro.core.bounds` imports this module.
        """
        if self._bounds is None:
            from repro.core.bounds import UpperBoundIndex  # deferred: cycle guard

            self._bounds = UpperBoundIndex.from_columnar(self._index, self._mode)
        return self._bounds

    def object_scores(self, keywords: Sequence[str]) -> np.ndarray:
        """Dense per-object weight column for the bound mode (no spatial masking)."""
        from repro.textindex.relevance import ScoringMode  # deferred: cycle guard

        index = self._index
        if self._mode is ScoringMode.TEXT_RELEVANCE:
            return index.tfidf_object_scores(keywords)
        if self._mode is ScoringMode.RATING_IF_MATCH:
            scores = np.zeros(index.num_objects, dtype=np.float64)
            matched = index.matched_objects(keywords)
            scores[matched] = index.obj_rating[matched]
            return scores
        return index.lm_object_scores(keywords)

    def node_sums(
        self,
        keywords: Iterable[str],
        window: Optional[Rectangle] = None,
        exclude_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-node-position σ sums as a dense float64 array of length ``num_nodes``.

        The aggregation primitive behind :meth:`node_weights`, exposed so the
        delta-overlay merge (:mod:`repro.service.generations`) can combine base
        sums with overlay contributions before the positivity/ordering step.

        Args:
            keywords: Normalised, de-duplicated query keywords.
            window: Optional ``Q.Λ`` masking the *objects* by coordinates.
            exclude_rows: Optional boolean mask over object rows; ``True`` rows
                are dropped from the aggregation (used to mask base rows
                superseded by a pending overlay entry).
        """
        from repro.textindex.relevance import ScoringMode  # deferred: cycle guard

        index = self._index
        keyword_list = list(keywords)
        # Select the contributing object rows. TF-IDF and LM scores are
        # strictly positive exactly for the objects the reference loop scores
        # positively; rating mode must keep matched zero-rating objects out of
        # the selection test (they contribute 0.0 on both backends).
        scores = self.object_scores(keyword_list)
        if self._mode is ScoringMode.RATING_IF_MATCH:
            selection = index.matched_objects(keyword_list)
        else:
            selection = scores > 0.0
        selection &= index.obj_node_pos >= 0
        if exclude_rows is not None:
            selection &= ~exclude_rows
        if window is not None:
            selection &= (
                (index.obj_x >= window.min_x)
                & (index.obj_x <= window.max_x)
                & (index.obj_y >= window.min_y)
                & (index.obj_y <= window.max_y)
            )
        rows = np.flatnonzero(selection)
        if rows.size == 0:
            return np.zeros(index.num_nodes, dtype=np.float64)
        # Aggregate in ascending row (= corpus) order: within one node this is
        # exactly the order the reference loop adds object scores, so the sums
        # are bit-identical. np.bincount applies the adds sequentially.
        return np.bincount(
            index.obj_node_pos[rows],
            weights=scores[rows],
            minlength=index.num_nodes,
        )

    def node_weights(
        self,
        keywords: Iterable[str],
        window: Optional[Rectangle] = None,
        candidate_nodes: Optional[Iterable[int]] = None,
        node_window: Optional[Rectangle] = None,
        exclude_rows: Optional[np.ndarray] = None,
    ) -> Dict[int, float]:
        """Return σ_v for every node carrying a relevant object — as pure array ops.

        Args:
            keywords: Normalised, de-duplicated query keywords
            	(:class:`~repro.core.query.LCMSRQuery` normalises at construction).
            window: Optional ``Q.Λ``. Masks the *objects* by a vectorised
                coordinate comparison — exactly the reference scorer's ``window``
                contract (an in-window object mapped to an out-of-window node
                still contributes to that node).
            candidate_nodes: Optional explicit node restriction applied on top
                (the object-loop scorer's ``candidate_nodes`` contract).
            node_window: Optional rectangle restricting the *nodes* by a
                vectorised coordinate comparison. The instance builder passes the
                query window here instead of materialising the window graph's
                node-id set: a mapped node lies in the window graph exactly when
                its coordinates lie in ``Q.Λ``.
            exclude_rows: Optional boolean mask over object rows to drop from
                the aggregation (see :meth:`node_sums`).

        Returns:
            ``node_id → σ_v`` for nodes with positive weight, in the same order
            the reference scorer produces.
        """
        index = self._index
        keyword_list = list(keywords)
        sums = self.node_sums(keyword_list, window=window, exclude_rows=exclude_rows)
        keep = sums > 0.0
        if node_window is not None:
            keep &= (
                (index.node_x >= node_window.min_x)
                & (index.node_x <= node_window.max_x)
                & (index.node_y >= node_window.min_y)
                & (index.node_y <= node_window.max_y)
            )
        positions = np.flatnonzero(keep)
        node_ids = index.node_ids
        weights = {
            int(node_ids[pos]): float(sums[pos]) for pos in positions
        }
        if candidate_nodes is not None:
            allowed = (
                candidate_nodes
                if isinstance(candidate_nodes, (set, frozenset))
                else set(candidate_nodes)
            )
            weights = {n: w for n, w in weights.items() if n in allowed}
        return weights

    # ------------------------------------------------------------------ sampling
    def _sampling_frame(self) -> Tuple[np.ndarray, np.ndarray]:
        """Mapped object rows grouped by bound-grid cell, as a CSR over cells.

        Returns ``(cell_indptr, frame_rows)`` where ``frame_rows[indptr[c]:
        indptr[c+1]]`` are the mapped object rows in cell ``c``, ascending. The
        grouping is a stable argsort of the persisted ``obj_cell`` column, so it
        is identical however the index was obtained (built fresh, loaded from an
        artifact, or subset to a shard) — a prerequisite for the sampler's
        bit-reproducibility guarantee. Built lazily, cached per pipeline.
        """
        if self._sample_frame is None:
            index = self._index
            mapped = np.flatnonzero(index.obj_node_pos >= 0).astype(np.int64)
            cells = index.obj_cell[mapped]
            order = np.argsort(cells, kind="stable")
            frame_rows = mapped[order]
            resolution = int(np.asarray(index.bound_meta)[0])
            counts = np.bincount(cells, minlength=resolution * resolution)
            indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
            )
            self._sample_frame = (indptr, frame_rows)
        return self._sample_frame

    def _scores_for_rows(self, keywords: Sequence[str], rows: np.ndarray) -> np.ndarray:
        """Per-object scores for the given object rows only (float64).

        Computes the same score definition as :meth:`object_scores` but touches
        only ``len(rows)`` entries per query term, via binary search into the
        ascending CSR postings rows — the sublinear kernel the sampled tier's
        speedup comes from. Row order of the output follows ``rows``.
        """
        from repro.textindex.relevance import ScoringMode  # deferred: cycle guard

        index = self._index
        num_rows = len(rows)
        indptr = index.post_indptr

        def member_positions(tid: int) -> Tuple[np.ndarray, np.ndarray]:
            """(mask of rows containing term, posting positions for those rows)."""
            start, end = int(indptr[tid]), int(indptr[tid + 1])
            term_rows = index.post_rows[start:end]
            if len(term_rows) == 0:
                return np.zeros(num_rows, dtype=bool), np.empty(0, dtype=np.int64)
            pos = np.searchsorted(term_rows, rows)
            found = pos < len(term_rows)
            probe = np.where(found, pos, 0)
            found &= term_rows[probe] == rows
            return found, start + pos[found]

        if self._mode is ScoringMode.TEXT_RELEVANCE:
            weighted, norm = index.query_weights(keywords)
            scores = np.zeros(num_rows, dtype=np.float64)
            for tid, query_weight in weighted:
                found, slots = member_positions(tid)
                scores[found] += query_weight * index.post_tfidf[slots]
            np.divide(scores, norm, out=scores)
            return scores

        if self._mode is ScoringMode.RATING_IF_MATCH:
            matched = np.zeros(num_rows, dtype=bool)
            for term in keywords:
                tid = index.term_id(term)
                if tid is None:
                    continue
                found, _ = member_positions(tid)
                matched |= found
            scores = np.zeros(num_rows, dtype=np.float64)
            scores[matched] = index.obj_rating[rows[matched]]
            return scores

        scores = np.zeros(num_rows, dtype=np.float64)
        valid_tids = [
            tid
            for term in keywords
            if (tid := index.term_id(term)) is not None
            and index.lm_log_base[tid] != 0.0
        ]
        if not valid_tids:
            return scores
        background = 0.0
        for tid in valid_tids:
            log_base = float(index.lm_log_base[tid])
            column = np.full(num_rows, log_base, dtype=np.float64)
            found, slots = member_positions(tid)
            column[found] = index.lm_log_mixed[slots]
            scores += column
            background += log_base
        scores -= background
        np.maximum(scores, 0.0, out=scores)
        return scores

    def node_sums_sampled(
        self,
        keywords: Iterable[str],
        epsilon: Optional[float] = None,
        rate: Optional[float] = None,
        rng=None,
        window: Optional[Rectangle] = None,
    ) -> "SampledNodeSums":
        """Estimate the per-node σ sums from a seeded stratified sample.

        A Horvitz–Thompson estimator over the mapped-object rows, stratified by
        the PR 6 bound-grid cells: each cell ``h`` overlapping the query window
        contributes ``m_h`` rows drawn without replacement from its ``n_h``
        members by a within-stratum systematic design (a random start, then
        every ``n_h/m_h``-th member — equal inclusion probability ``m_h/n_h``),
        and every sampled score is inflated by the inverse inclusion
        probability ``n_h / m_h``. The per-cell sample sizes follow the
        ``cell_sigma_mass`` aggregates (cells that can hold more score mass get
        more of the budget), with a floor of :data:`SAMPLE_MIN_PER_STRATUM` rows
        per non-empty stratum. **Exactness escape hatch:** a stratum whose
        allocation reaches its population is enumerated in full — inclusion
        probability 1, zero variance — so small strata never pay sampling error.

        Per-node uncertainty is the classic stratified CLT variance with
        finite-population correction,
        ``Var̂(σ̂_v) = Σ_h n_h (n_h − m_h) / m_h · s²_{h,v}``,
        where ``s²_{h,v}`` is the within-stratum sample variance of the node's
        per-row contributions (zeros included) — the standard SRS proxy for a
        systematic draw, conservative when the within-cell row order is
        uncorrelated with scores. :meth:`SampledNodeSums.ci_halfwidth`
        turns it into a 95% half-width via :data:`CI_Z`.

        Determinism: with the same ``(keywords, window, epsilon|rate, seed)``
        the estimate is bit-identical across index save/load and across solver
        backends — strata are visited in ascending cell id and the generator is
        consumed identically (see :meth:`_sampling_frame`).

        Args:
            keywords: Normalised, de-duplicated query keywords.
            epsilon: Target relative-error scale; the total sample budget is
                ``ceil(4 / ε²)`` rows (CLT sizing), capped at the frame size.
                Exactly one of ``epsilon`` / ``rate`` must be given.
            rate: Direct sampling fraction in ``(0, 1]`` of the frame.
            rng: ``numpy.random.Generator`` or an int seed (default seed 0).
            window: Optional ``Q.Λ``; restricts the strata to the covering cell
                span and masks sampled objects by coordinates, mirroring
                :meth:`node_sums`'s window contract.
        """
        if (epsilon is None) == (rate is None):
            raise IndexError_("exactly one of epsilon or rate must be given")
        if epsilon is not None and not 0.0 < epsilon < 1.0:
            raise IndexError_(f"epsilon must be in (0, 1), got {epsilon}")
        if rate is not None and not 0.0 < rate <= 1.0:
            raise IndexError_(f"rate must be in (0, 1], got {rate}")
        if rng is None:
            rng = np.random.Generator(np.random.PCG64(0))
        elif isinstance(rng, (int, np.integer)):
            rng = np.random.Generator(np.random.PCG64(int(rng)))

        index = self._index
        keyword_list = list(keywords)
        num_nodes = index.num_nodes
        sums = np.zeros(num_nodes, dtype=np.float64)
        variance = np.zeros(num_nodes, dtype=np.float64)
        indptr, frame_rows = self._sampling_frame()
        num_cells = len(indptr) - 1
        cell_sizes = np.diff(indptr)

        # Strata: non-empty cells, restricted to the window's covering cell span.
        bounds = self.bounds
        if window is not None:
            r0, r1, c0, c1 = bounds._cell_span(
                window.min_x, window.min_y, window.max_x, window.max_y
            )
            rows_grid = np.arange(r0, r1 + 1, dtype=np.int64)
            cols_grid = np.arange(c0, c1 + 1, dtype=np.int64)
            span = (rows_grid[:, None] * bounds.resolution + cols_grid[None, :]).ravel()
        else:
            span = np.arange(num_cells, dtype=np.int64)
        active = span[cell_sizes[span] > 0]
        frame_size = int(cell_sizes[active].sum())
        if frame_size == 0:
            return SampledNodeSums(sums, variance, frame_size=0, sample_size=0)

        # Budget and proportional-to-mass allocation with a per-stratum floor.
        if rate is not None:
            target = int(math.ceil(rate * frame_size))
        else:
            target = int(math.ceil(4.0 / (epsilon * epsilon)))
        target = max(1, min(target, frame_size))
        mass = bounds.sigma_mass.ravel()[active]
        total_mass = float(mass.sum())
        n_active = cell_sizes[active].astype(np.int64)
        if total_mass > 0.0:
            share = mass / total_mass
        else:
            share = n_active / float(frame_size)
        floor = np.minimum(SAMPLE_MIN_PER_STRATUM, n_active)
        m_active = np.minimum(
            n_active,
            np.maximum(floor, np.ceil(target * share).astype(np.int64)),
        )

        # Within-stratum systematic draw, vectorised across strata: one uniform
        # offset u_h per stratum, then every (n_h/m_h)-th member — positions
        # floor((u_h + j) · n_h/m_h), j = 0..m_h−1, are strictly increasing and
        # < n_h, so the draw is without replacement with equal inclusion
        # probability m_h/n_h (the HT factors below are unchanged). A stratum
        # with m_h = n_h degenerates to positions 0..n_h−1 (u_h < 1 floors
        # away), which is the full-enumeration escape hatch. Strata are laid
        # out in ascending cell id and consume one generator call, so the
        # sample is bit-reproducible for a given (seed, window) across
        # artifact save/load and solver backends — and, unlike a per-stratum
        # ``rng.choice`` loop, the whole draw is O(sample) numpy work.
        offsets = rng.random(len(active))
        segment_start = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(m_active, dtype=np.int64)]
        )
        sample_size = int(segment_start[-1])
        stratum_of = np.repeat(np.arange(len(active), dtype=np.int64), m_active)
        j = np.arange(sample_size, dtype=np.int64) - segment_start[stratum_of]
        step = n_active.astype(np.float64) / m_active.astype(np.float64)
        picks = np.floor((offsets[stratum_of] + j) * step[stratum_of]).astype(np.int64)
        np.minimum(picks, (n_active - 1)[stratum_of], out=picks)
        rows = frame_rows[indptr[active][stratum_of] + picks]
        factors = step[stratum_of]
        # Score in ascending row order: the estimator is order-invariant, and
        # monotone probes into the postings CSR are markedly cache-friendlier.
        order = np.argsort(rows, kind="stable")
        rows = rows[order]
        factors = factors[order]
        n_of_cell = np.zeros(num_cells, dtype=np.int64)
        m_of_cell = np.zeros(num_cells, dtype=np.int64)
        n_of_cell[active] = n_active
        m_of_cell[active] = m_active

        # Score only the sampled rows; zero out rows the exact path would not
        # select (outside the window / non-positive score). The filter is
        # deterministic, so inclusion probabilities — and HT unbiasedness over
        # the selected sub-population — are unchanged.
        contributions = self._scores_for_rows(keyword_list, rows)
        if window is not None:
            in_window = (
                (index.obj_x[rows] >= window.min_x)
                & (index.obj_x[rows] <= window.max_x)
                & (index.obj_y[rows] >= window.min_y)
                & (index.obj_y[rows] <= window.max_y)
            )
            contributions = np.where(in_window, contributions, 0.0)
        np.maximum(contributions, 0.0, out=contributions)

        hit = contributions > 0.0
        hit_rows = rows[hit]
        hit_scores = contributions[hit]
        node_pos = index.obj_node_pos[hit_rows].astype(np.int64)
        np.add.at(sums, node_pos, hit_scores * factors[hit])

        # Stratified variance per node: group the nonzero contributions by
        # (cell, node); zero contributions only enter through m_h in the
        # moment formulas, so they need not be materialised.
        if len(hit_rows):
            hit_cells = index.obj_cell[hit_rows].astype(np.int64)
            keys = hit_cells * np.int64(num_nodes) + node_pos
            uniq, inverse = np.unique(keys, return_inverse=True)
            sum_y = np.bincount(inverse, weights=hit_scores, minlength=len(uniq))
            sum_y2 = np.bincount(
                inverse, weights=hit_scores * hit_scores, minlength=len(uniq)
            )
            group_cell = (uniq // num_nodes).astype(np.int64)
            group_node = (uniq % num_nodes).astype(np.int64)
            m_h = m_of_cell[group_cell].astype(np.float64)
            n_h = n_of_cell[group_cell].astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                s2 = np.where(
                    m_h > 1.0,
                    np.maximum(sum_y2 - sum_y * sum_y / m_h, 0.0) / (m_h - 1.0),
                    0.0,
                )
            fpc = n_h * (n_h - m_h) / np.maximum(m_h, 1.0)
            np.add.at(variance, group_node, fpc * s2)

        return SampledNodeSums(
            sums, variance, frame_size=frame_size, sample_size=sample_size
        )

    def node_weights_sampled(
        self,
        keywords: Iterable[str],
        epsilon: Optional[float] = None,
        rate: Optional[float] = None,
        rng=None,
        window: Optional[Rectangle] = None,
        node_window: Optional[Rectangle] = None,
    ) -> "SampledWeights":
        """Sampled counterpart of :meth:`node_weights`: σ̂_v dicts plus variances.

        Runs :meth:`node_sums_sampled` and applies the same positivity /
        node-window filtering as the exact path, returning the estimated weight
        dict (position order, like the exact dict) together with the per-node
        variance estimates for the kept nodes.
        """
        index = self._index
        keyword_list = list(keywords)
        sampled = self.node_sums_sampled(
            keyword_list, epsilon=epsilon, rate=rate, rng=rng, window=window
        )
        keep = sampled.sums > 0.0
        if node_window is not None:
            keep &= (
                (index.node_x >= node_window.min_x)
                & (index.node_x <= node_window.max_x)
                & (index.node_y >= node_window.min_y)
                & (index.node_y <= node_window.max_y)
            )
        positions = np.flatnonzero(keep)
        node_ids = index.node_ids
        weights = {int(node_ids[pos]): float(sampled.sums[pos]) for pos in positions}
        variance = {
            int(node_ids[pos]): float(sampled.variance[pos]) for pos in positions
        }
        return SampledWeights(
            weights=weights,
            variance=variance,
            frame_size=sampled.frame_size,
            sample_size=sampled.sample_size,
        )


class SampledNodeSums:
    """Dense result of :meth:`WeightPipeline.node_sums_sampled`.

    Attributes:
        sums: Horvitz–Thompson estimates σ̂ per node-table position (float64).
        variance: Stratified CLT+FPC variance estimates, same shape.
        frame_size: Mapped rows in the active strata (the sampled population).
        sample_size: Rows actually drawn and scored.
    """

    __slots__ = ("sums", "variance", "frame_size", "sample_size")

    def __init__(
        self, sums: np.ndarray, variance: np.ndarray, frame_size: int, sample_size: int
    ) -> None:
        self.sums = sums
        self.variance = variance
        self.frame_size = int(frame_size)
        self.sample_size = int(sample_size)

    @property
    def exact(self) -> bool:
        """True when every active stratum was enumerated (zero sampling error)."""
        return self.sample_size == self.frame_size

    def ci_halfwidth(self) -> np.ndarray:
        """95% CI half-width per node position (:data:`CI_Z` · √variance)."""
        return CI_Z * np.sqrt(self.variance)


class SampledWeights:
    """Dict-shaped result of :meth:`WeightPipeline.node_weights_sampled`.

    ``weights`` / ``variance`` are keyed by node id for the kept (positive,
    node-window-filtered) nodes; ``region_variance(nodes)`` sums member
    variances — per-node estimates are treated as independent (stratum
    covariance between nodes is ignored; documented in docs/ARCHITECTURE.md).
    """

    __slots__ = ("weights", "variance", "frame_size", "sample_size")

    def __init__(
        self,
        weights: Dict[int, float],
        variance: Dict[int, float],
        frame_size: int,
        sample_size: int,
    ) -> None:
        self.weights = weights
        self.variance = variance
        self.frame_size = int(frame_size)
        self.sample_size = int(sample_size)

    @property
    def exact(self) -> bool:
        """True when the whole active frame was enumerated."""
        return self.sample_size == self.frame_size

    def region_ci(self, nodes: Iterable[int]) -> float:
        """95% CI half-width on the summed weight of a node set."""
        total_var = sum(self.variance.get(int(node), 0.0) for node in nodes)
        return CI_Z * math.sqrt(total_var) if total_var > 0.0 else 0.0
