"""Vector-space text-relevance model (paper Equations 1 and 2).

The paper scores an object ``o`` against a query ``Q`` by

    σ(o.ψ, Q.ψ) = Σ_{t ∈ Q.ψ ∩ o.ψ}  w_{Q.ψ,t} · w_{o.ψ,t} / (W_{Q.ψ} · W_{o.ψ})

with ``w_{Q.ψ,t} = ln(1 + |D| / f_t)`` (IDF), ``w_{o.ψ,t} = 1 + ln(tf_{t,o.ψ})`` (TF)
and the usual L2 normalisers ``W``. At indexing time the per-object, per-term weight
``wto(t) = w_{o.ψ,t} / W_{o.ψ}`` is precomputed and stored in the postings lists, so
at query time the score is a single dot product against the query vector (Equation 2).
This module implements both the offline and online halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence

from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.textindex.tokenizer import normalize_keyword_set

if TYPE_CHECKING:  # pragma: no cover - typing only (columnar imports this module)
    from repro.textindex.columnar import ColumnarScoringIndex


def idf_weight(corpus_size: int, document_frequency: int) -> float:
    """Return the paper's IDF weight ``ln(1 + |D| / f_t)``.

    Terms that never occur in the corpus get ``f_t = 0``; the paper's formula is then
    undefined, and we return 0.0 because such a term cannot contribute to any object's
    score anyway (no object contains it).
    """
    if document_frequency <= 0:
        return 0.0
    return math.log(1.0 + corpus_size / document_frequency)


def tf_weight(term_frequency: int) -> float:
    """Return the paper's TF weight ``1 + ln(tf)`` (0.0 when the term is absent)."""
    if term_frequency <= 0:
        return 0.0
    return 1.0 + math.log(term_frequency)


@dataclass(frozen=True)
class QueryVector:
    """A query's keyword set with its IDF weights and L2 normaliser.

    Attributes:
        terms: Distinct query keywords (lower-cased).
        weights: Per-term IDF weight ``w_{Q.ψ,t}``.
        norm: The L2 normaliser ``W_{Q.ψ}`` (1.0 when all weights are zero so division
            is always safe).
    """

    terms: tuple
    weights: Mapping[str, float]
    norm: float

    @property
    def keyword_count(self) -> int:
        """Number of distinct query keywords."""
        return len(self.terms)


class VectorSpaceModel:
    """TF-IDF scoring over an :class:`ObjectCorpus` (paper Section 3).

    The model precomputes, for every object, the normalised term weights ``wto(t)``
    used both by the inverted index postings and by direct scoring. The corpus is
    treated as immutable after the model is built, matching the paper's offline
    indexing / online querying split.

    With ``lazy=True`` the per-object weight tables are not precomputed: each
    object's ``wto`` map is derived from its keyword frequencies on first use
    and memoised. The arithmetic is byte-for-byte the eager constructor's, so
    scores are bit-identical — what changes is the memory profile (no
    corpus-sized dict-of-dicts resident up front), which is what lets
    :meth:`IndexBundle.build_streaming
    <repro.service.bundle.IndexBundle.build_streaming>` index millions of
    objects in bounded memory. Lazy models also pickle without their memo
    caches, so the on-disk ``index.pkl`` stays small and independent of which
    objects happened to be scored before saving.
    """

    def __init__(self, corpus: ObjectCorpus, lazy: bool = False) -> None:
        self._corpus = corpus
        self._corpus_size = corpus.size
        self._lazy = lazy
        # Optional columnar acceleration for batch scoring (attached by the
        # index bundle after the columnar index is built over this model).
        self._columnar: Optional["ColumnarScoringIndex"] = None
        # Per-object L2 norm W_{o.ψ} over TF weights, and normalised term weights.
        self._object_norms: Dict[int, float] = {}
        self._object_term_weights: Dict[int, Dict[str, float]] = {}
        if not lazy:
            for obj in corpus:
                self._compute_object(obj)

    def _compute_object(self, obj: GeoTextualObject) -> Dict[str, float]:
        """Fill the weight tables for one object (the model's core arithmetic)."""
        weights = {term: tf_weight(freq) for term, freq in obj.keywords.items()}
        norm = math.sqrt(sum(w * w for w in weights.values()))
        self._object_norms[obj.object_id] = norm if norm > 0 else 1.0
        denominator = self._object_norms[obj.object_id]
        normalised = {term: weight / denominator for term, weight in weights.items()}
        self._object_term_weights[obj.object_id] = normalised
        return normalised

    def _weights_of(self, object_id: int) -> Optional[Dict[str, float]]:
        """Return an object's ``wto`` map, deriving it on demand in lazy mode."""
        stored = self._object_term_weights.get(object_id)
        if stored is not None:
            return stored
        if self._lazy and object_id in self._corpus:
            return self._compute_object(self._corpus.get(object_id))
        return None

    @property
    def corpus(self) -> ObjectCorpus:
        """The corpus this model was built over."""
        return self._corpus

    def attach_columnar(self, columnar: "ColumnarScoringIndex") -> None:
        """Attach a columnar index built over the same corpus.

        :meth:`batch_scores` then runs as vectorised array kernels instead of a
        per-object loop (bit-identical results — the columnar kernels replay
        this model's accumulation order exactly).
        """
        self._columnar = columnar

    def __getstate__(self):
        # The columnar arrays persist separately (repro.service.persist) and are
        # re-attached on load; never duplicate them inside this pickle. Lazy
        # models additionally drop their memo caches: the pickle must not
        # depend on which objects happened to be scored before saving (the
        # byte-determinism contract), and the caches rebuild on demand.
        state = dict(self.__dict__)
        state["_columnar"] = None
        if state.get("_lazy"):
            state["_object_norms"] = {}
            state["_object_term_weights"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.__dict__.setdefault("_lazy", False)

    @property
    def corpus_size(self) -> int:
        """Number of objects in the corpus (``|D|``)."""
        return self._corpus_size

    # ------------------------------------------------------------------ offline
    def object_term_weight(self, object_id: int, term: str) -> float:
        """Return the stored normalised weight ``wto(t)`` (0.0 if term absent)."""
        weights = self._weights_of(object_id)
        return weights.get(term, 0.0) if weights else 0.0

    def object_term_weights(self, object_id: int) -> Dict[str, float]:
        """Return all normalised term weights of an object (copy)."""
        return dict(self._weights_of(object_id) or {})

    def object_norm(self, object_id: int) -> float:
        """Return the object's L2 TF norm ``W_{o.ψ}``."""
        norm = self._object_norms.get(object_id)
        if norm is None and self._lazy and object_id in self._corpus:
            self._compute_object(self._corpus.get(object_id))
            norm = self._object_norms.get(object_id)
        return norm if norm is not None else 1.0

    # ------------------------------------------------------------------ online
    def query_vector(self, keywords: Iterable[str]) -> QueryVector:
        """Build the query-side vector (IDF weights and normaliser) for ``keywords``."""
        distinct = normalize_keyword_set(keywords)
        weights = {
            term: idf_weight(self._corpus_size, self._corpus.document_frequency(term))
            for term in distinct
        }
        norm = math.sqrt(sum(w * w for w in weights.values()))
        return QueryVector(terms=distinct, weights=weights, norm=norm if norm > 0 else 1.0)

    def score(self, obj: GeoTextualObject | int, query: QueryVector) -> float:
        """Return σ(o.ψ, Q.ψ) for one object against a prepared query vector.

        Accepts either an object or an object id. Implements Equation 2: the dot
        product of the query IDF weights with the stored ``wto(t)`` weights, divided
        by the query normaliser.
        """
        object_id = obj.object_id if isinstance(obj, GeoTextualObject) else obj
        stored = self._weights_of(object_id)
        if not stored:
            return 0.0
        total = 0.0
        for term in query.terms:
            weight = stored.get(term)
            if weight:
                total += query.weights[term] * weight
        return total / query.norm

    def score_keywords(self, obj: GeoTextualObject | int, keywords: Iterable[str]) -> float:
        """Convenience wrapper: build the query vector and score in one call."""
        return self.score(obj, self.query_vector(keywords))

    def batch_scores(
        self, objects: Sequence[GeoTextualObject | int], keywords: Iterable[str]
    ) -> Dict[int, float]:
        """Score many objects against one keyword set; returns only non-zero scores.

        With a columnar index attached (:meth:`attach_columnar`) the whole batch
        is scored with vectorised kernels; the per-object loop is the reference
        backend and returns bit-identical values.
        """
        if self._columnar is not None:
            keyword_list = normalize_keyword_set(keywords)
            column = self._columnar.tfidf_object_scores(keyword_list)
            scores: Dict[int, float] = {}
            for obj in objects:
                object_id = obj.object_id if isinstance(obj, GeoTextualObject) else obj
                row = self._columnar.object_row(object_id)
                if row is None:
                    continue
                value = float(column[row])
                if value > 0.0:
                    scores[object_id] = value
            return scores
        query = self.query_vector(keywords)
        scores = {}
        for obj in objects:
            object_id = obj.object_id if isinstance(obj, GeoTextualObject) else obj
            value = self.score(object_id, query)
            if value > 0.0:
                scores[object_id] = value
        return scores
