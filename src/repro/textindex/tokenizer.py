"""A small, dependency-free tokenizer for object descriptions and queries.

The paper's datasets use short descriptions (place names and category labels, Flickr
tags). Tokenisation therefore only needs to lower-case, split on non-alphanumeric
characters, and drop a handful of ubiquitous stop words and noise tokens; stemming is
deliberately omitted because the paper does not stem either (keywords such as
"restaurant" are matched verbatim).
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Set, Tuple

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def normalize_keyword_set(keywords: Iterable[str]) -> Tuple[str, ...]:
    """Strip, lower-case and de-duplicate keywords, preserving first-seen order.

    The ONE canonical keyword normalisation: :class:`~repro.core.query.LCMSRQuery`
    applies it at construction, and the query-vector / batch-scoring entry points
    that accept raw keywords share it, so the scoring backends and the cache keys
    can never diverge on what "the same keywords" means.
    """
    return tuple(dict.fromkeys(k.strip().lower() for k in keywords if k.strip()))

DEFAULT_STOP_WORDS: Set[str] = {
    "a",
    "an",
    "and",
    "at",
    "by",
    "for",
    "in",
    "of",
    "on",
    "or",
    "the",
    "to",
    "with",
}
"""Stop words removed by default; short and deliberately conservative."""


def tokenize(
    text: str,
    stop_words: Set[str] | None = None,
    min_length: int = 1,
) -> List[str]:
    """Split ``text`` into lower-cased alphanumeric tokens.

    Args:
        text: The raw description or query string.
        stop_words: Tokens to drop; defaults to :data:`DEFAULT_STOP_WORDS`. Pass an
            empty set to keep everything.
        min_length: Minimum token length to keep (useful for dropping single letters
            in noisy tag data).

    Returns:
        The list of kept tokens, in order of appearance (duplicates preserved so term
        frequencies can be counted downstream).
    """
    if stop_words is None:
        stop_words = DEFAULT_STOP_WORDS
    tokens = _TOKEN_PATTERN.findall(text.lower())
    return [token for token in tokens if len(token) >= min_length and token not in stop_words]


def tokenize_all(texts: Iterable[str], **kwargs) -> List[List[str]]:
    """Tokenise every string in ``texts`` with :func:`tokenize`."""
    return [tokenize(text, **kwargs) for text in texts]
