"""Text-relevance substrate.

Implements the paper's Section 3 scoring: the vector-space model of Equation 1, the
per-object precomputed term weights ``wto(t)`` and the query-time score of Equation 2,
plus a simple tokenizer used when object descriptions arrive as raw strings. A
language-model scorer is included as the alternative retrieval model the paper
mentions (Ponte & Croft), selectable through the same interface.
"""

from repro.textindex.tokenizer import tokenize, normalize_keyword_set
from repro.textindex.vector_space import VectorSpaceModel, QueryVector
from repro.textindex.columnar import ColumnarScoringIndex, WeightPipeline
from repro.textindex.relevance import RelevanceScorer, ScoringMode, LanguageModelScorer

__all__ = [
    "tokenize",
    "normalize_keyword_set",
    "VectorSpaceModel",
    "QueryVector",
    "ColumnarScoringIndex",
    "WeightPipeline",
    "RelevanceScorer",
    "ScoringMode",
    "LanguageModelScorer",
]
