"""Relevance scorers: the configurable object-weight function used by solvers.

The paper's region score is the sum of per-object weights, where a weight can be

* the vector-space text relevance (the default, Section 3),
* the object's rating/popularity if it matches the query keywords and 0 otherwise
  (mentioned as an alternative in Section 2), or
* a language-model probability (the other retrieval model the paper cites).

:class:`RelevanceScorer` wraps these choices behind one ``node_weights`` call that
returns the per-node weights the LCMSR solvers consume (node weight = sum of weights
of the objects mapped to the node).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Mapping, Optional

from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.objects.mapping import NodeObjectMap
from repro.textindex.columnar import ColumnarScoringIndex, WeightPipeline
from repro.textindex.vector_space import VectorSpaceModel


class ScoringMode(enum.Enum):
    """Which per-object weight definition a scorer uses.

    The mode also selects the engine's scoring path: ``TEXT_RELEVANCE`` scores
    through the grid index's TF-IDF postings (the paper's indexed hot path), while
    ``RATING_IF_MATCH`` and ``LANGUAGE_MODEL`` bypass the postings and score each
    object directly through :class:`RelevanceScorer`.
    """

    TEXT_RELEVANCE = "text_relevance"
    """Vector-space TF-IDF relevance (the paper's default)."""

    RATING_IF_MATCH = "rating_if_match"
    """The object's rating if it contains any query keyword, 0 otherwise."""

    LANGUAGE_MODEL = "language_model"
    """Jelinek–Mercer smoothed unigram language-model likelihood."""


class LanguageModelScorer:
    """Query-likelihood scorer with Jelinek–Mercer smoothing.

    ``score(o, Q) = Σ_{t ∈ Q} ln( (1-λ)·P(t|o) + λ·P(t|C) )`` shifted so that objects
    containing no query term score exactly 0 (the LCMSR solvers require non-negative
    weights that are 0 for irrelevant objects).
    """

    def __init__(self, corpus: ObjectCorpus, smoothing: float = 0.2) -> None:
        if not 0.0 < smoothing < 1.0:
            raise ValueError(f"smoothing must be in (0, 1), got {smoothing}")
        self._corpus = corpus
        self._smoothing = smoothing
        # Collection statistics are cached on the corpus (computed once,
        # invalidated on corpus.add), so constructing a scorer is O(1) instead
        # of a full corpus scan per construction.
        self._collection_counts: Mapping[str, int] = corpus.collection_term_counts()
        self._collection_total = corpus.collection_total_terms()

    @property
    def smoothing(self) -> float:
        """The Jelinek–Mercer smoothing parameter λ."""
        return self._smoothing

    def _collection_probability(self, term: str) -> float:
        if self._collection_total == 0:
            return 0.0
        return self._collection_counts.get(term, 0) / self._collection_total

    def score(self, obj: GeoTextualObject, keywords: Iterable[str]) -> float:
        """Return the (shifted, non-negative) query likelihood of ``obj``.

        ``keywords`` are used as given — :class:`~repro.core.query.LCMSRQuery`
        normalises (strip / lower-case / de-duplicate) at construction, so the
        query path never re-normalises per scored object.
        """
        terms = list(keywords)
        if not terms:
            return 0.0
        if not obj.contains_any(terms):
            return 0.0
        object_total = sum(obj.keywords.values())
        log_likelihood = 0.0
        background = 0.0
        for term in terms:
            p_doc = obj.keywords.get(term, 0) / object_total if object_total else 0.0
            p_col = self._collection_probability(term)
            mixed = (1.0 - self._smoothing) * p_doc + self._smoothing * p_col
            base = self._smoothing * p_col
            if mixed <= 0.0 or base <= 0.0:
                continue
            log_likelihood += math.log(mixed)
            background += math.log(base)
        # Shift by the background-only likelihood so irrelevant objects sit at 0 and
        # better-matching objects get strictly larger scores.
        return max(0.0, log_likelihood - background)


class RelevanceScorer:
    """Produces the per-node weights σ_v that every LCMSR solver consumes.

    Args:
        corpus: The dataset's object corpus.
        mapping: The object → node assignment produced by
            :func:`repro.objects.mapping.map_objects_to_network`.
        mode: Which per-object weight definition to use.
        language_model_smoothing: Smoothing parameter when ``mode`` is
            ``LANGUAGE_MODEL``.
        vsm: Optional prebuilt vector-space model over ``corpus``. Passing the
            bundle's shared model avoids building (and, in persisted artifacts,
            serialising) a second identical model; one is built when omitted.
        columnar: Optional frozen :class:`~repro.textindex.columnar.ColumnarScoringIndex`
            over the same corpus + mapping. When present, :meth:`node_weights`
            computes σ_v through the vectorised
            :class:`~repro.textindex.columnar.WeightPipeline` (bit-identical to
            the object loop); the loop is kept as the reference backend.
    """

    def __init__(
        self,
        corpus: ObjectCorpus,
        mapping: NodeObjectMap,
        mode: ScoringMode = ScoringMode.TEXT_RELEVANCE,
        language_model_smoothing: float = 0.2,
        vsm: Optional[VectorSpaceModel] = None,
        columnar: Optional[ColumnarScoringIndex] = None,
    ) -> None:
        self._corpus = corpus
        self._mapping = mapping
        self._mode = mode
        self._vsm = vsm if vsm is not None else VectorSpaceModel(corpus)
        self._lm: Optional[LanguageModelScorer] = None
        if mode is ScoringMode.LANGUAGE_MODEL:
            self._lm = LanguageModelScorer(corpus, smoothing=language_model_smoothing)
        self._columnar: Optional[ColumnarScoringIndex] = None
        self._pipeline: Optional[WeightPipeline] = None
        if columnar is not None:
            self.attach_columnar(columnar)

    @property
    def mode(self) -> ScoringMode:
        """The active scoring mode."""
        return self._mode

    @property
    def vector_space_model(self) -> VectorSpaceModel:
        """The underlying vector-space model (always built; used by the index layer)."""
        return self._vsm

    @property
    def columnar(self) -> Optional[ColumnarScoringIndex]:
        """The attached columnar index (``None`` when only the loop backend exists)."""
        return self._columnar

    @property
    def pipeline(self) -> Optional[WeightPipeline]:
        """The vectorised weight pipeline (``None`` without a compatible columnar index)."""
        return self._pipeline

    def attach_columnar(self, columnar: ColumnarScoringIndex) -> None:
        """Attach a columnar index built over this scorer's corpus + mapping.

        Enables the vectorised fast path of :meth:`node_weights`. A
        language-model scorer whose smoothing differs from the index's
        precomputed columns keeps the loop backend (the pipeline would answer a
        different model).
        """
        self._columnar = columnar
        self._pipeline = None
        if (
            self._mode is ScoringMode.LANGUAGE_MODEL
            and self._lm is not None
            and self._lm.smoothing != columnar.lm_smoothing
        ):
            return
        self._pipeline = WeightPipeline(columnar, self._mode)

    def __getstate__(self):
        # The columnar index persists as raw arrays next to the pickle (see
        # repro.service.persist) and is re-attached on load; pickling it here
        # would duplicate every column inside index.pkl.
        state = dict(self.__dict__)
        state["_columnar"] = None
        state["_pipeline"] = None
        return state

    def object_score(self, obj: GeoTextualObject, keywords: Iterable[str]) -> float:
        """Return the weight of one object for the given query keywords.

        ``keywords`` are used as given (queries normalise at construction, see
        :class:`~repro.core.query.LCMSRQuery`).
        """
        if self._mode is ScoringMode.TEXT_RELEVANCE:
            return self._vsm.score_keywords(obj, keywords)
        if self._mode is ScoringMode.RATING_IF_MATCH:
            return obj.rating if obj.contains_any(keywords) else 0.0
        assert self._lm is not None
        return self._lm.score(obj, keywords)

    def node_weights(
        self,
        keywords: Iterable[str],
        candidate_nodes: Optional[Iterable[int]] = None,
        window: Optional["Rectangle"] = None,
        backend: str = "auto",
    ) -> Dict[int, float]:
        """Return σ_v for every node carrying a relevant object.

        Args:
            keywords: Query keywords (normalised — lower-case, stripped,
                de-duplicated; :class:`~repro.core.query.LCMSRQuery` guarantees
                this for every query path).
            candidate_nodes: Optional restriction (e.g. the nodes inside ``Q.Λ``);
                nodes outside it are skipped.
            window: Optional spatial restriction on the *objects* themselves; when
                given, only objects located inside it contribute (this matches the
                grid-index query path, which only reads cells overlapping ``Q.Λ``).
            backend: ``"auto"`` (vectorised pipeline when a columnar index is
                attached, the loop otherwise), ``"columnar"`` (require the
                pipeline) or ``"reference"`` (force the object loop — the
                backend the parity suite checks the pipeline against).

        Returns:
            A mapping from node id to positive weight; nodes with zero weight are
            omitted (the solvers treat missing nodes as weight 0). Both backends
            return bit-identical values in identical iteration order.
        """
        keyword_list = list(keywords)
        if backend not in ("auto", "columnar", "reference"):
            raise ValueError(f"unknown node-weight backend {backend!r}")
        if backend != "reference" and self._pipeline is not None:
            return self._pipeline.node_weights(
                keyword_list, window=window, candidate_nodes=candidate_nodes
            )
        if backend == "columnar":
            raise ValueError(
                "no columnar pipeline attached to this scorer "
                "(build one with ColumnarScoringIndex.build and attach_columnar)"
            )
        allowed = set(candidate_nodes) if candidate_nodes is not None else None
        weights: Dict[int, float] = {}
        for node_id, object_ids in self._mapping.node_to_objects.items():
            if allowed is not None and node_id not in allowed:
                continue
            total = 0.0
            for object_id in object_ids:
                obj = self._corpus.get(object_id)
                if window is not None and not window.contains(obj.x, obj.y):
                    continue
                total += self.object_score(obj, keyword_list)
            if total > 0.0:
                weights[node_id] = total
        return weights
