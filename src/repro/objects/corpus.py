"""Collections of geo-textual objects.

An :class:`ObjectCorpus` owns the objects of one dataset and provides the collection
statistics the vector-space model needs (document frequency ``ft`` and the corpus size
``|D|``), plus simple spatial and keyword filtering used by the workload generators.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import DatasetError
from repro.network.subgraph import Rectangle
from repro.objects.geoobject import GeoTextualObject


class ObjectCorpus:
    """A set of geo-textual objects with corpus-level term statistics.

    The corpus is append-only: objects can be added, after which document frequencies
    are kept incrementally. That is all the paper's indexing layer needs (the datasets
    are loaded once and then queried many times).
    """

    def __init__(self, objects: Optional[Iterable[GeoTextualObject]] = None) -> None:
        self._objects: Dict[int, GeoTextualObject] = {}
        self._document_frequency: Dict[str, int] = defaultdict(int)
        # Collection term counts (Σ tf per term) are consumed by every
        # language-model scorer construction and by the columnar index build;
        # they are computed lazily once and invalidated by add().
        self._collection_counts: Optional[Dict[str, int]] = None
        self._collection_total = 0
        if objects is not None:
            for obj in objects:
                self.add(obj)

    # ------------------------------------------------------------------ mutation
    def add(self, obj: GeoTextualObject) -> None:
        """Add an object; duplicate identifiers are rejected."""
        if obj.object_id in self._objects:
            raise DatasetError(f"duplicate object id {obj.object_id}")
        self._objects[obj.object_id] = obj
        for term in obj.keywords:
            self._document_frequency[term] += 1
        self._collection_counts = None  # invalidate the cached collection counts

    def add_all(self, objects: Iterable[GeoTextualObject]) -> None:
        """Add every object from ``objects``."""
        for obj in objects:
            self.add(obj)

    # ------------------------------------------------------------------ access
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[GeoTextualObject]:
        return iter(self._objects.values())

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def get(self, object_id: int) -> GeoTextualObject:
        """Return the object with ``object_id``; raises :class:`DatasetError` if absent."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise DatasetError(f"unknown object id {object_id}") from None

    def object_ids(self) -> Iterator[int]:
        """Iterate over all object identifiers."""
        return iter(self._objects.keys())

    @property
    def size(self) -> int:
        """Number of objects in the corpus (the paper's ``|D|``)."""
        return len(self._objects)

    # ------------------------------------------------------------------ statistics
    def document_frequency(self, term: str) -> int:
        """Return the number of objects whose description contains ``term`` (``ft``)."""
        return self._document_frequency.get(term, 0)

    def vocabulary(self) -> Set[str]:
        """Return the set of distinct terms appearing in the corpus."""
        return set(self._document_frequency.keys())

    def vocabulary_size(self) -> int:
        """Return the number of distinct terms in the corpus."""
        return len(self._document_frequency)

    def term_frequencies(self) -> Dict[str, int]:
        """Return a copy of the document-frequency table."""
        return dict(self._document_frequency)

    def _ensure_collection_counts(self) -> Dict[str, int]:
        counts = self._collection_counts
        if counts is None:
            counts = {}
            total = 0
            for obj in self._objects.values():
                for term, freq in obj.keywords.items():
                    counts[term] = counts.get(term, 0) + freq
                    total += freq
            self._collection_counts = counts
            self._collection_total = total
        return counts

    def collection_term_counts(self) -> Dict[str, int]:
        """Return Σ tf per term over the whole corpus (the LM collection model).

        Computed once and cached; :meth:`add` invalidates the cache. Callers must
        treat the returned mapping as read-only (it IS the cache).
        """
        return self._ensure_collection_counts()

    def collection_total_terms(self) -> int:
        """Return the total number of term occurrences in the corpus (Σ_t Σ_o tf)."""
        self._ensure_collection_counts()
        return self._collection_total

    def most_frequent_terms(self, count: int) -> List[Tuple[str, int]]:
        """Return the ``count`` terms with the highest document frequency."""
        ordered = sorted(self._document_frequency.items(), key=lambda item: (-item[1], item[0]))
        return ordered[:count]

    # ------------------------------------------------------------------ filtering
    def objects_in_rectangle(self, window: Rectangle) -> List[GeoTextualObject]:
        """Return all objects located inside ``window`` (borders included)."""
        return [obj for obj in self._objects.values() if window.contains(obj.x, obj.y)]

    def objects_with_any_term(self, terms: Iterable[str]) -> List[GeoTextualObject]:
        """Return all objects whose description contains at least one of ``terms``."""
        term_set = {t.lower() for t in terms}
        return [obj for obj in self._objects.values() if obj.contains_any(term_set)]

    def terms_in_rectangle(self, window: Rectangle) -> Dict[str, int]:
        """Return document frequencies restricted to objects inside ``window``.

        Used by the query-workload generator, which samples keywords proportionally to
        their frequency inside the selected query area (paper Section 7.1).
        """
        frequencies: Dict[str, int] = defaultdict(int)
        for obj in self.objects_in_rectangle(window):
            for term in obj.keywords:
                frequencies[term] += 1
        return dict(frequencies)

    def bounding_box(self) -> Rectangle:
        """Return the bounding rectangle of all object locations."""
        if not self._objects:
            raise DatasetError("bounding_box of an empty corpus is undefined")
        xs = [obj.x for obj in self._objects.values()]
        ys = [obj.y for obj in self._objects.values()]
        return Rectangle(min(xs), min(ys), max(xs), max(ys))
