"""Geo-textual object substrate.

A geo-textual object (the paper's PoI) carries a planar location, a textual
description (bag of keywords), and optional popularity/rating attributes. Objects are
mapped onto their nearest road-network node, after which each network node carries the
multiset union of the descriptions of the objects mapped to it — exactly the model the
paper's Section 2 and Section 7.1 describe.
"""

from repro.objects.geoobject import GeoTextualObject
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import map_objects_to_network, nearest_node, NodeObjectMap

__all__ = [
    "GeoTextualObject",
    "ObjectCorpus",
    "map_objects_to_network",
    "nearest_node",
    "NodeObjectMap",
]
