"""The geo-textual object (PoI) model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class GeoTextualObject:
    """A point of interest with a web presence.

    Attributes:
        object_id: Stable integer identifier, unique within a corpus.
        x: Planar x coordinate in meters.
        y: Planar y coordinate in meters.
        keywords: Term-frequency mapping of the object's textual description. A plain
            iterable of terms may be passed to :meth:`create`, which counts
            occurrences — the paper's TF component (``1 + ln tf``) needs frequencies,
            not just term presence.
        rating: Optional rating/popularity attribute. The paper notes the region score
            can alternatively use rating or check-in counts; solvers accept a scoring
            mode that uses this field.
    """

    object_id: int
    x: float
    y: float
    keywords: Mapping[str, int]
    rating: float = 1.0

    @staticmethod
    def create(
        object_id: int,
        x: float,
        y: float,
        terms: Iterable[str],
        rating: float = 1.0,
    ) -> "GeoTextualObject":
        """Build an object from an iterable of (possibly repeated) terms.

        Terms are lower-cased; empty descriptions are allowed (such objects simply
        never match any query).
        """
        counts: Dict[str, int] = {}
        for term in terms:
            term = term.strip().lower()
            if not term:
                continue
            counts[term] = counts.get(term, 0) + 1
        return GeoTextualObject(object_id, float(x), float(y), counts, rating)

    def __post_init__(self) -> None:
        if self.rating < 0:
            raise DatasetError(f"object {self.object_id} has negative rating {self.rating}")
        for term, frequency in self.keywords.items():
            if frequency <= 0:
                raise DatasetError(
                    f"object {self.object_id} has non-positive frequency for term {term!r}"
                )

    @property
    def terms(self) -> Tuple[str, ...]:
        """Return the distinct terms of the description (order unspecified)."""
        return tuple(self.keywords.keys())

    def term_frequency(self, term: str) -> int:
        """Return the frequency of ``term`` in the description (0 if absent)."""
        return self.keywords.get(term, 0)

    def contains_any(self, terms: Iterable[str]) -> bool:
        """Return ``True`` if the description contains at least one of ``terms``."""
        return any(term in self.keywords for term in terms)

    def location(self) -> Tuple[float, float]:
        """Return the object's ``(x, y)`` location."""
        return (self.x, self.y)
