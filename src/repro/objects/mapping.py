"""Mapping geo-textual objects onto road-network nodes.

The paper maps every crawled object to its nearest node on the road network (Section
7.1) and notes the algorithms could also handle objects on edge interiors. We
reproduce the nearest-node mapping with a uniform-grid accelerated nearest-neighbour
search and keep, per node, the list of objects assigned to it — the structure every
solver uses to compute node weights for a query.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DatasetError, GraphError
from repro.network.graph import RoadNetwork
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject


@dataclass
class NodeObjectMap:
    """The result of mapping a corpus onto a network.

    Attributes:
        node_to_objects: For each node id, the object ids mapped to that node (only
            nodes with at least one object appear).
        object_to_node: For each object id, the node id it was mapped to.
    """

    node_to_objects: Dict[int, List[int]] = field(default_factory=dict)
    object_to_node: Dict[int, int] = field(default_factory=dict)

    def objects_at(self, node_id: int) -> List[int]:
        """Return the object ids mapped to ``node_id`` (empty list if none)."""
        return self.node_to_objects.get(node_id, [])

    def node_of(self, object_id: int) -> int:
        """Return the node an object was mapped to; raises if the object is unmapped."""
        try:
            return self.object_to_node[object_id]
        except KeyError:
            raise DatasetError(f"object {object_id} has not been mapped to a node") from None

    def nodes_with_objects(self) -> List[int]:
        """Return the node ids that carry at least one object."""
        return list(self.node_to_objects.keys())

    @property
    def num_mapped(self) -> int:
        """Number of mapped objects."""
        return len(self.object_to_node)


class _PointGrid:
    """Uniform grid over node embeddings for nearest-node queries.

    The grid cell size defaults to the average nearest-neighbour spacing estimate
    ``extent / sqrt(n)``, which keeps the expected number of candidates per probe
    constant for roughly uniform node distributions (true of road networks).
    """

    def __init__(self, network: RoadNetwork, cell_size: Optional[float] = None) -> None:
        if network.num_nodes == 0:
            raise GraphError("cannot build a point grid over an empty network")
        self._network = network
        min_x, min_y, max_x, max_y = network.bounding_box()
        extent = max(max_x - min_x, max_y - min_y, 1e-9)
        if cell_size is None:
            cell_size = max(extent / max(1.0, math.sqrt(network.num_nodes)), 1e-9)
        self._cell = cell_size
        self._origin = (min_x, min_y)
        self._cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for node in network.nodes():
            self._cells[self._cell_of(node.x, node.y)].append(node.node_id)

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (
            int((x - self._origin[0]) // self._cell),
            int((y - self._origin[1]) // self._cell),
        )

    def nearest(self, x: float, y: float) -> int:
        """Return the node id closest to ``(x, y)`` (ties broken by node id)."""
        cx, cy = self._cell_of(x, y)
        best_id = -1
        best_dist = math.inf
        ring = 0
        # Expand square rings of cells until a candidate is found, then one extra ring
        # to make sure no closer node hides in a neighbouring ring.
        while True:
            candidates: List[int] = []
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue
                    candidates.extend(self._cells.get((cx + dx, cy + dy), ()))
            for node_id in candidates:
                node = self._network.node(node_id)
                dist = (node.x - x) ** 2 + (node.y - y) ** 2
                if dist < best_dist or (dist == best_dist and node_id < best_id):
                    best_dist = dist
                    best_id = node_id
            if best_id >= 0 and ring > 0:
                # One extra ring beyond the first hit guards against grid-boundary
                # effects; the ring distance lower bound then exceeds the best match.
                ring_lower_bound = (ring - 1) * self._cell
                if ring_lower_bound * ring_lower_bound > best_dist:
                    return best_id
            ring += 1
            if ring > 2 * int(math.sqrt(len(self._cells))) + 4 and best_id >= 0:
                return best_id


def nearest_node(network: RoadNetwork, x: float, y: float) -> int:
    """Return the id of the network node nearest to ``(x, y)`` (linear scan fallback).

    For repeated queries use :func:`map_objects_to_network`, which builds a grid once.
    """
    best_id = -1
    best_dist = math.inf
    for node in network.nodes():
        dist = (node.x - x) ** 2 + (node.y - y) ** 2
        if dist < best_dist or (dist == best_dist and node.node_id < best_id):
            best_dist = dist
            best_id = node.node_id
    if best_id < 0:
        raise GraphError("cannot find the nearest node in an empty network")
    return best_id


def map_objects_to_network(
    network: RoadNetwork,
    corpus: ObjectCorpus | Iterable[GeoTextualObject],
) -> NodeObjectMap:
    """Map every object in ``corpus`` to its nearest network node.

    Args:
        network: The road network (must be non-empty).
        corpus: An :class:`ObjectCorpus` or any iterable of objects.

    Returns:
        A :class:`NodeObjectMap` recording the assignment in both directions.
    """
    grid = _PointGrid(network)
    mapping = NodeObjectMap()
    for obj in corpus:
        node_id = grid.nearest(obj.x, obj.y)
        mapping.object_to_node[obj.object_id] = node_id
        mapping.node_to_objects.setdefault(node_id, []).append(obj.object_id)
    return mapping
