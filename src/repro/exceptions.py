"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so callers can
use a single ``except ReproError`` to distinguish library failures from programming
errors in their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a road-network graph is malformed or an operation is invalid.

    Examples include adding an edge whose endpoints do not exist, asking for the
    neighbours of an unknown node, or negative edge lengths.
    """


class NodeNotFoundError(GraphError):
    """Raised when a node identifier is not present in the graph."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id!r} is not in the graph")
        self.node_id = node_id


class EdgeNotFoundError(GraphError):
    """Raised when an edge is not present in the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class RegionError(ReproError):
    """Raised when a region is malformed (e.g. disconnected or inconsistent)."""


class QueryError(ReproError):
    """Raised when an LCMSR query is malformed.

    Examples: empty keyword set, non-positive length constraint, degenerate query
    rectangle.
    """


class IndexError_(ReproError):
    """Raised for index-structure failures (grid, inverted lists, B+-tree).

    Named with a trailing underscore to avoid shadowing the built-in ``IndexError``.
    """


class DatasetError(ReproError):
    """Raised when dataset generation or loading fails."""


class ArtifactError(ReproError):
    """Raised when a persisted index-bundle artifact cannot be written or loaded.

    Covers missing or malformed manifests, unsupported artifact format versions,
    checksum mismatches (on-disk corruption) and refusals to overwrite an existing
    artifact directory. See :mod:`repro.service.persist`.
    """


class SolverError(ReproError):
    """Raised when an algorithm cannot produce a result.

    This covers cases such as a query region containing no relevant objects, or a
    k-MST quota that no tree in the graph can satisfy.
    """


class NoFeasibleRegionError(SolverError):
    """Raised when no feasible region exists for the query.

    A feasible region requires at least one node with positive weight inside the
    query rectangle; if every relevant object lies outside ``Q.Λ`` or no object
    matches the query keywords, this error is raised by solvers configured to be
    strict (the default is to return an empty result instead).
    """
