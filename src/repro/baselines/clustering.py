"""Query-independent spatio-textual clustering (the strawman of paper Section 2).

The paper argues that pre-clustering objects and returning the most query-relevant
cluster is a poor substitute for LCMSR queries because (a) clusters group objects that
are similar *to each other* rather than relevant to the query, (b) the number and size
of clusters are fixed before any query arrives, and (c) clusters need not satisfy the
query's length constraint (Figure 3). This module implements exactly that baseline —
k-means over object locations with an optional textual component — so the drawback can
be quantified in tests and the comparison benchmark instead of only being asserted.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import SolverError
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.textindex.vector_space import VectorSpaceModel


@dataclass(frozen=True)
class Cluster:
    """One pre-computed cluster of objects.

    Attributes:
        cluster_id: Index of the cluster.
        object_ids: Identifiers of the member objects.
        centroid: The spatial centroid of the members.
    """

    cluster_id: int
    object_ids: Tuple[int, ...]
    centroid: Tuple[float, float]

    @property
    def size(self) -> int:
        """Number of objects in the cluster."""
        return len(self.object_ids)


class SpatialTextualClustering:
    """K-means clustering of geo-textual objects, computed once, query-independent.

    Args:
        corpus: The objects to cluster.
        num_clusters: The fixed number of clusters (the paper's point: this cannot be
            chosen per query).
        text_weight: Relative weight of the textual similarity term when assigning
            objects to clusters (0 gives pure spatial k-means). Textual similarity is
            measured against the cluster's aggregated term profile with a cosine
            overlap on the top terms.
        seed: Seed for centroid initialisation.
        max_iterations: K-means iteration cap.
    """

    def __init__(
        self,
        corpus: ObjectCorpus,
        num_clusters: int = 8,
        text_weight: float = 0.0,
        seed: int = 13,
        max_iterations: int = 25,
    ) -> None:
        if num_clusters < 1:
            raise SolverError(f"num_clusters must be >= 1, got {num_clusters}")
        if not 0.0 <= text_weight <= 1.0:
            raise SolverError(f"text_weight must be in [0, 1], got {text_weight}")
        if len(corpus) == 0:
            raise SolverError("cannot cluster an empty corpus")
        self._corpus = corpus
        self._num_clusters = min(num_clusters, len(corpus))
        self._text_weight = text_weight
        self._rng = random.Random(seed)
        self._max_iterations = max_iterations
        self._vsm = VectorSpaceModel(corpus)
        self._clusters: List[Cluster] = []
        self._fit()

    # ------------------------------------------------------------------ offline
    def _fit(self) -> None:
        objects = list(self._corpus)
        centroids = [
            (obj.x, obj.y) for obj in self._rng.sample(objects, self._num_clusters)
        ]
        extent = self._spatial_extent(objects)
        assignment: Dict[int, int] = {}
        cluster_terms: List[Dict[str, float]] = [{} for _ in centroids]
        for _ in range(self._max_iterations):
            new_assignment: Dict[int, int] = {}
            for obj in objects:
                best_cluster = min(
                    range(len(centroids)),
                    key=lambda index: self._distance(obj, centroids[index], cluster_terms[index], extent),
                )
                new_assignment[obj.object_id] = best_cluster
            if new_assignment == assignment:
                break
            assignment = new_assignment
            centroids, cluster_terms = self._recompute(objects, assignment, len(centroids))
        self._clusters = self._materialise(objects, assignment, centroids)

    def _spatial_extent(self, objects: Sequence[GeoTextualObject]) -> float:
        xs = [obj.x for obj in objects]
        ys = [obj.y for obj in objects]
        return max(max(xs) - min(xs), max(ys) - min(ys), 1e-9)

    def _distance(
        self,
        obj: GeoTextualObject,
        centroid: Tuple[float, float],
        terms: Mapping[str, float],
        extent: float,
    ) -> float:
        spatial = math.hypot(obj.x - centroid[0], obj.y - centroid[1]) / extent
        if self._text_weight <= 0:
            return spatial
        overlap = sum(terms.get(term, 0.0) for term in obj.keywords)
        norm = sum(terms.values()) or 1.0
        textual = 1.0 - overlap / norm
        return (1.0 - self._text_weight) * spatial + self._text_weight * textual

    def _recompute(
        self,
        objects: Sequence[GeoTextualObject],
        assignment: Mapping[int, int],
        count: int,
    ) -> Tuple[List[Tuple[float, float]], List[Dict[str, float]]]:
        sums = [[0.0, 0.0, 0] for _ in range(count)]
        terms: List[Dict[str, float]] = [{} for _ in range(count)]
        for obj in objects:
            cluster = assignment[obj.object_id]
            sums[cluster][0] += obj.x
            sums[cluster][1] += obj.y
            sums[cluster][2] += 1
            for term, frequency in obj.keywords.items():
                terms[cluster][term] = terms[cluster].get(term, 0.0) + frequency
        centroids: List[Tuple[float, float]] = []
        for index, (sx, sy, n) in enumerate(sums):
            if n == 0:
                # Re-seed an empty cluster at a random object to keep k clusters alive.
                seed_obj = self._rng.choice(objects)
                centroids.append((seed_obj.x, seed_obj.y))
            else:
                centroids.append((sx / n, sy / n))
        return centroids, terms

    def _materialise(
        self,
        objects: Sequence[GeoTextualObject],
        assignment: Mapping[int, int],
        centroids: Sequence[Tuple[float, float]],
    ) -> List[Cluster]:
        members: Dict[int, List[int]] = {index: [] for index in range(len(centroids))}
        for obj in objects:
            members[assignment.get(obj.object_id, 0)].append(obj.object_id)
        clusters = []
        for index, object_ids in members.items():
            clusters.append(
                Cluster(
                    cluster_id=index,
                    object_ids=tuple(sorted(object_ids)),
                    centroid=centroids[index],
                )
            )
        return clusters

    # ------------------------------------------------------------------ online
    @property
    def clusters(self) -> List[Cluster]:
        """The precomputed clusters."""
        return list(self._clusters)

    def best_cluster(self, keywords: Iterable[str]) -> Cluster:
        """Return the cluster with the largest total text relevance to ``keywords``.

        This is the query-time behaviour of the strawman: the clusters are fixed, only
        the choice among them depends on the query.
        """
        keyword_list = list(keywords)
        query = self._vsm.query_vector(keyword_list)

        def relevance(cluster: Cluster) -> float:
            return sum(self._vsm.score(object_id, query) for object_id in cluster.object_ids)

        return max(self._clusters, key=relevance)

    def cluster_relevance(self, cluster: Cluster, keywords: Iterable[str]) -> float:
        """Total text relevance of a cluster's members to ``keywords``."""
        query = self._vsm.query_vector(list(keywords))
        return sum(self._vsm.score(object_id, query) for object_id in cluster.object_ids)
