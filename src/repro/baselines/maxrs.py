"""Maximum range-sum (MaxRS) baseline over fixed-size rectangles.

The MaxRS query (Choi et al., PVLDB 2012; Tao et al., PVLDB 2013) finds the placement
of an axis-aligned ``width x height`` rectangle that maximises the total weight of the
points it covers. The paper uses it as the competitor in the Section 7.5 quality
study: the best 500 m × 500 m rectangle is retrieved, the minimum road length needed
to connect its relevant objects becomes the LCMSR length budget, and human annotators
compare the two answers. This module implements the exact MaxRS computation with a
corner-candidate sweep (optimal placements can always be translated so that the
rectangle's right and top edges touch points), which is exact and fast enough for the
window sizes in the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.network.subgraph import Rectangle


@dataclass(frozen=True)
class MaxRSResult:
    """The answer to a MaxRS query.

    Attributes:
        rectangle: The best placement (``None`` when there are no weighted points).
        weight: Total weight of the points covered by the rectangle.
        covered_ids: Identifiers of the covered points.
        runtime_seconds: Wall-clock solve time.
    """

    rectangle: Optional[Rectangle]
    weight: float
    covered_ids: Tuple[int, ...]
    runtime_seconds: float = 0.0


class MaxRSSolver:
    """Exact MaxRS over weighted points.

    Args:
        width: Rectangle width (the paper's comparison uses 500 m).
        height: Rectangle height.
    """

    name = "MaxRS"

    def __init__(self, width: float = 500.0, height: float = 500.0) -> None:
        if width <= 0 or height <= 0:
            raise SolverError(f"rectangle dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height

    def solve(
        self,
        points: Mapping[int, Tuple[float, float]],
        weights: Mapping[int, float],
        window: Optional[Rectangle] = None,
    ) -> MaxRSResult:
        """Find the best rectangle placement.

        Args:
            points: ``point_id → (x, y)`` locations.
            weights: ``point_id → weight``; points with non-positive or missing weight
                are ignored.
            window: Optional region of interest; only points inside it are considered
                and the rectangle is conceptually placed inside it (the paper's
                comparison restricts both queries to the same ``Q.Λ``).

        Returns:
            The :class:`MaxRSResult`; when no weighted point exists the result has an
            empty cover and no rectangle.
        """
        start = time.perf_counter()
        items: List[Tuple[int, float, float, float]] = []
        for point_id, (x, y) in points.items():
            weight = weights.get(point_id, 0.0)
            if weight <= 0:
                continue
            if window is not None and not window.contains(x, y):
                continue
            items.append((point_id, x, y, weight))
        if not items:
            return MaxRSResult(None, 0.0, (), time.perf_counter() - start)

        best_weight = -1.0
        best_right = 0.0
        best_top = 0.0
        # A translate-to-touch argument shows some optimal rectangle has its right edge
        # at a point's x and its top edge at a point's y, so trying all such corner
        # candidates is exact.
        xs = sorted({x for _, x, _, _ in items})
        for right in xs:
            left = right - self.width
            in_strip = [(y, weight) for _, x, y, weight in items if left <= x <= right]
            if not in_strip:
                continue
            in_strip.sort()
            strip_ys = [y for y, _ in in_strip]
            strip_weights = [w for _, w in in_strip]
            # Sliding window over y: for each candidate top edge (a point's y), sum the
            # weights of points with y in [top - height, top].
            low_index = 0
            running = 0.0
            best_in_strip = -1.0
            best_strip_top = 0.0
            for high_index, top in enumerate(strip_ys):
                running += strip_weights[high_index]
                while strip_ys[low_index] < top - self.height - 1e-12:
                    running -= strip_weights[low_index]
                    low_index += 1
                if running > best_in_strip:
                    best_in_strip = running
                    best_strip_top = top
            if best_in_strip > best_weight + 1e-12:
                best_weight = best_in_strip
                best_right = right
                best_top = best_strip_top

        rectangle = Rectangle(
            best_right - self.width, best_top - self.height, best_right, best_top
        )
        covered = tuple(
            point_id
            for point_id, x, y, _ in items
            if rectangle.contains(x, y)
        )
        covered_weight = sum(weights[point_id] for point_id in covered)
        return MaxRSResult(rectangle, covered_weight, covered, time.perf_counter() - start)

    def solve_objects(
        self,
        objects: Iterable,
        weights: Mapping[int, float],
        window: Optional[Rectangle] = None,
    ) -> MaxRSResult:
        """Convenience wrapper taking :class:`~repro.objects.geoobject.GeoTextualObject`s."""
        points = {obj.object_id: (obj.x, obj.y) for obj in objects}
        return self.solve(points, weights, window)
