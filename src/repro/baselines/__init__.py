"""Baselines the paper compares against or discusses.

* :mod:`repro.baselines.maxrs` — the maximum range-sum query over fixed-size
  rectangles (Choi et al. 2012, Tao et al. 2013), used in the paper's Section 7.5
  quality comparison.
* :mod:`repro.baselines.clustering` — the query-independent clustering strawman the
  paper dismisses in Section 2 (Figure 3); included so the drawback can be measured
  rather than asserted.
"""

from repro.baselines.maxrs import MaxRSSolver, MaxRSResult
from repro.baselines.clustering import SpatialTextualClustering, Cluster

__all__ = ["MaxRSSolver", "MaxRSResult", "SpatialTextualClustering", "Cluster"]
