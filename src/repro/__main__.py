"""``python -m repro`` — the artifact build / inspect / query command line.

See :mod:`repro.cli` for the subcommands.
"""

import sys

from repro.cli import main

sys.exit(main())
