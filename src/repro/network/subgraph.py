"""Spatial windowing of a road network to a query rectangle ``Q.Λ``.

Every LCMSR algorithm works on the sub-network induced by the nodes that fall inside
the query's rectangular region of interest. :class:`Rectangle` is the axis-aligned
window type used throughout the library (queries, the grid index, MaxRS), and
:func:`induced_subgraph` extracts the windowed network.

The helpers are backend-polymorphic: handed a dict-backed
:class:`~repro.network.graph.RoadNetwork` they rebuild a dict-backed subgraph;
handed a frozen :class:`~repro.network.compact.CompactNetwork` snapshot they take
its vectorised ``window_view`` / array-filter path and return another snapshot.
The dispatch is duck-typed on the snapshot-only methods (``window_view`` /
``window_node_ids``) so this module does not import the compact backend (which
imports :mod:`repro.network.graph` itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

from repro.exceptions import QueryError
from repro.network.graph import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.compact import GraphView


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]`` in meters.

    Used for the query region of interest ``Q.Λ``, for grid-index cells, and for the
    MaxRS baseline's result rectangles.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise QueryError(
                f"degenerate rectangle: ({self.min_x}, {self.min_y}) .. ({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle (square meters)."""
        return self.width * self.height

    def center(self) -> Tuple[float, float]:
        """Return the rectangle's centre point."""
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Return ``True`` if the point ``(x, y)`` lies inside (borders included)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "Rectangle") -> bool:
        """Return ``True`` if the two rectangles overlap (touching counts)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expanded(self, margin: float) -> "Rectangle":
        """Return a copy grown by ``margin`` on every side."""
        return Rectangle(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Rectangle":
        """Build a rectangle of the given size centred at ``(cx, cy)``."""
        return Rectangle(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @staticmethod
    def square_of_area(cx: float, cy: float, area: float) -> "Rectangle":
        """Build a square of the given area (m²) centred at ``(cx, cy)``.

        The paper specifies query regions by area (e.g. 100 km²); this helper converts
        that convention to a concrete window.
        """
        if area <= 0:
            raise QueryError(f"rectangle area must be positive, got {area}")
        side = area ** 0.5
        return Rectangle.from_center(cx, cy, side, side)


def nodes_in_rectangle(network: "GraphView", window: Rectangle) -> List[int]:
    """Return the identifiers of all nodes whose embedding lies inside ``window``.

    On a frozen snapshot the point test is one vectorised coordinate comparison;
    on a dict-backed network it is a Python scan over the nodes.
    """
    window_node_ids = getattr(network, "window_node_ids", None)
    if window_node_ids is not None:
        return window_node_ids(window)
    return [node.node_id for node in network.nodes() if window.contains(node.x, node.y)]


def induced_subgraph(network: "GraphView", window: Rectangle) -> "GraphView":
    """Return the sub-network induced by the nodes inside ``window``.

    Only edges with both endpoints inside the window are kept, matching the paper's
    length-constraint definition, which sums ``τ(vi, vj)`` over edges whose endpoints
    are both in ``Q.Λ``. The result uses the same backend as the input: a
    dict-backed network yields a dict-backed subgraph, a frozen snapshot yields a
    (vectorised, much cheaper) frozen window view.
    """
    window_view = getattr(network, "window_view", None)
    if window_view is not None:
        return window_view(window)
    return network.subgraph(nodes_in_rectangle(network, window))


def largest_component_subgraph(network: "GraphView") -> "GraphView":
    """Return the sub-network induced by the largest connected component.

    Windowing can split a connected road network into several pieces; some callers
    (e.g. workload generators that need routable areas) want only the dominant piece.
    The result uses the same backend as the input.
    """
    components = network.connected_components()
    if not components:
        return RoadNetwork()
    largest = max(components, key=len)
    # Feed ids in network iteration order (not set order) so the dict backend's
    # order-following subgraph stays aligned with a snapshot's subgraph.
    return network.subgraph([n for n in network.node_ids() if n in largest])
