"""Shortest-path routines over any :class:`~repro.network.compact.GraphView`.

The LCMSR algorithms themselves do not route, but two substrates do: the MaxRS
comparison in the paper's Section 7.5 derives a comparable length budget by computing
the minimum total length of road segments connecting the relevant objects inside a
rectangle (a Steiner-tree-ish measure we approximate with shortest-path joins), and
the object-to-node mapping occasionally needs network distances. A binary-heap
Dijkstra plus convenience wrappers cover both.

:func:`dijkstra` accepts either network backend. A dict-backed
:class:`~repro.network.graph.RoadNetwork` is traversed through ``neighbor_items``;
a frozen :class:`~repro.network.compact.CompactNetwork` takes an array-indexed fast
path that walks the flat CSR lists with list-indexed distance/parent tables instead
of per-hop dict hashing. The two paths relax neighbours in the same order and break
heap ties by node id, so they return *identical* ``(dist, parent)`` mappings — not
merely equal distances.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError, SolverError
from repro.network.compact import CompactNetwork, GraphView


def dijkstra(
    network: GraphView,
    source: int,
    targets: Optional[Set[int]] = None,
    max_distance: Optional[float] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Run Dijkstra's algorithm from ``source``.

    Args:
        network: The road network (dict-backed or a frozen CSR snapshot).
        source: Source node identifier.
        targets: Optional set of node identifiers; the search stops early once all of
            them have been settled.
        max_distance: Optional search radius; nodes farther than this are not settled.

    Returns:
        A pair ``(dist, parent)`` where ``dist`` maps each settled node to its network
        distance from ``source`` and ``parent`` maps it to its predecessor on a
        shortest path (the source has no parent entry). Both backends produce
        identical mappings for the same graph.

    Raises:
        NodeNotFoundError: If ``source`` is not in the network.
    """
    if isinstance(network, CompactNetwork):
        return _dijkstra_csr(network, source, targets, max_distance)
    if not network.contains(source):
        raise NodeNotFoundError(source)
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    settled: Set[int] = set()
    remaining = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, length in network.neighbor_items(u):
            nd = d + length
            if max_distance is not None and nd > max_distance:
                continue
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def dijkstra_positions(
    network: CompactNetwork,
    source_index: int,
    target_indices: Optional[Set[int]] = None,
    max_distance: Optional[float] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Local-CSR Dijkstra: everything in and out is a dense node *position*.

    This is the substrate the array-first consumers (the k-MST metric closure,
    the dense solver backends) use directly — no global-id dict is materialised
    per pop or per run. Distance, parent and settled tables are flat lists
    indexed by position; heap entries carry ``(dist, id, position)`` so ties
    order by node id exactly as in the dict-backed loop, keeping both backends'
    ``(dist, parent)`` outputs identical.

    Args:
        network: The frozen CSR snapshot to traverse.
        source_index: Dense position of the source node.
        target_indices: Optional set of positions; the search stops early once
            all of them have been settled.
        max_distance: Optional search radius.

    Returns:
        ``(dist, parent, touched)`` where ``dist[p]`` is the distance of
        position ``p`` (``inf`` if never reached), ``parent[p]`` the
        predecessor position (-1 for the source / unreached nodes), and
        ``touched`` lists the reached positions in first-touch order (the
        iteration order of the dict the id-keyed wrapper builds).
    """
    indptr, positions, neighbor_ids, lengths, ids = network.adjacency_arrays()
    infinity = float("inf")
    num_nodes = len(ids)
    dist: List[float] = [infinity] * num_nodes
    parent: List[int] = [-1] * num_nodes
    settled: List[bool] = [False] * num_nodes
    dist[source_index] = 0.0
    touched: List[int] = [source_index]
    remaining = set(target_indices) if target_indices is not None else None
    heap: List[Tuple[float, int, int]] = [(0.0, ids[source_index], source_index)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for slot in range(indptr[u], indptr[u + 1]):
            nd = d + lengths[slot]
            if max_distance is not None and nd > max_distance:
                continue
            v = positions[slot]
            if nd < dist[v]:
                if dist[v] == infinity:
                    touched.append(v)
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, neighbor_ids[slot], v))
    return dist, parent, touched


def _dijkstra_csr(
    network: CompactNetwork,
    source: int,
    targets: Optional[Set[int]],
    max_distance: Optional[float],
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Id-keyed wrapper over :func:`dijkstra_positions` (the CSR fast path)."""
    source_index = network.index_of(source)
    target_indices: Optional[Set[int]] = None
    if targets is not None:
        # Targets absent from the network can never settle; they are mapped to
        # negative sentinels so the early-exit check keeps waiting on them, in
        # line with the dict-backed loop (which runs to exhaustion then).
        target_indices = set()
        sentinel = -1
        for t in targets:
            if network.contains(t):
                target_indices.add(network.index_of(t))
            else:
                target_indices.add(sentinel)
                sentinel -= 1
    dist, parent, touched = dijkstra_positions(
        network, source_index, target_indices, max_distance
    )
    ids = network.adjacency_arrays()[4]
    dist_out: Dict[int, float] = {}
    parent_out: Dict[int, int] = {}
    for v in touched:
        dist_out[ids[v]] = dist[v]
        p = parent[v]
        if p >= 0:
            parent_out[ids[v]] = ids[p]
    return dist_out, parent_out


def shortest_path_length(network: GraphView, source: int, target: int) -> float:
    """Return the network distance between two nodes.

    Raises:
        SolverError: If ``target`` is unreachable from ``source``.
    """
    dist, _ = dijkstra(network, source, targets={target})
    if target not in dist:
        raise SolverError(f"node {target} is unreachable from node {source}")
    return dist[target]


def shortest_path(network: GraphView, source: int, target: int) -> List[int]:
    """Return the node sequence of a shortest path from ``source`` to ``target``.

    Raises:
        SolverError: If ``target`` is unreachable from ``source``.
    """
    dist, parent = dijkstra(network, source, targets={target})
    if target not in dist:
        raise SolverError(f"node {target} is unreachable from node {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def steiner_tree_length(network: GraphView, terminals: Iterable[int]) -> float:
    """Approximate the length of a minimal tree connecting ``terminals``.

    Used by the Section 7.5 comparison: the paper derives the LCMSR length budget from
    "the minimum total length of the road segments connecting all relevant objects" in
    the MaxRS rectangle. We use the classic 2-approximation: build the metric closure
    over the terminals with Dijkstra, take its minimum spanning tree, and report that
    tree's length. Unreachable terminal pairs are skipped (each unreachable component
    contributes its own sub-tree).

    Returns:
        The approximate connecting length; ``0.0`` when fewer than two terminals.
    """
    terminal_list = [t for t in dict.fromkeys(terminals) if t in network]
    if len(terminal_list) < 2:
        return 0.0
    # Metric closure restricted to the terminals.
    closure: Dict[int, Dict[int, float]] = {}
    terminal_set = set(terminal_list)
    for t in terminal_list:
        dist, _ = dijkstra(network, t, targets=set(terminal_set) - {t})
        closure[t] = {u: d for u, d in dist.items() if u in terminal_set and u != t}

    # Prim's MST over the (possibly disconnected) closure.
    total = 0.0
    unvisited = set(terminal_list)
    while unvisited:
        start = next(iter(unvisited))
        unvisited.discard(start)
        heap: List[Tuple[float, int]] = []
        for v, d in closure[start].items():
            if v in unvisited:
                heapq.heappush(heap, (d, v))
        in_tree = {start}
        while heap:
            d, v = heapq.heappop(heap)
            if v not in unvisited:
                continue
            unvisited.discard(v)
            in_tree.add(v)
            total += d
            for w, dw in closure[v].items():
                if w in unvisited:
                    heapq.heappush(heap, (dw, w))
    return total


def eccentricity(network: GraphView, source: int) -> float:
    """Return the largest finite shortest-path distance from ``source``."""
    dist, _ = dijkstra(network, source)
    return max(dist.values()) if dist else 0.0
