"""Shortest-path routines over :class:`~repro.network.graph.RoadNetwork`.

The LCMSR algorithms themselves do not route, but two substrates do: the MaxRS
comparison in the paper's Section 7.5 derives a comparable length budget by computing
the minimum total length of road segments connecting the relevant objects inside a
rectangle (a Steiner-tree-ish measure we approximate with shortest-path joins), and
the object-to-node mapping occasionally needs network distances. A binary-heap
Dijkstra plus convenience wrappers cover both.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError, SolverError
from repro.network.graph import RoadNetwork


def dijkstra(
    network: RoadNetwork,
    source: int,
    targets: Optional[Set[int]] = None,
    max_distance: Optional[float] = None,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Run Dijkstra's algorithm from ``source``.

    Args:
        network: The road network.
        source: Source node identifier.
        targets: Optional set of node identifiers; the search stops early once all of
            them have been settled.
        max_distance: Optional search radius; nodes farther than this are not settled.

    Returns:
        A pair ``(dist, parent)`` where ``dist`` maps each settled node to its network
        distance from ``source`` and ``parent`` maps it to its predecessor on a
        shortest path (the source has no parent entry).

    Raises:
        NodeNotFoundError: If ``source`` is not in the network.
    """
    if source not in network:
        raise NodeNotFoundError(source)
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    settled: Set[int] = set()
    remaining = set(targets) if targets is not None else None
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, length in network.neighbor_items(u):
            nd = d + length
            if max_distance is not None and nd > max_distance:
                continue
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def shortest_path_length(network: RoadNetwork, source: int, target: int) -> float:
    """Return the network distance between two nodes.

    Raises:
        SolverError: If ``target`` is unreachable from ``source``.
    """
    dist, _ = dijkstra(network, source, targets={target})
    if target not in dist:
        raise SolverError(f"node {target} is unreachable from node {source}")
    return dist[target]


def shortest_path(network: RoadNetwork, source: int, target: int) -> List[int]:
    """Return the node sequence of a shortest path from ``source`` to ``target``.

    Raises:
        SolverError: If ``target`` is unreachable from ``source``.
    """
    dist, parent = dijkstra(network, source, targets={target})
    if target not in dist:
        raise SolverError(f"node {target} is unreachable from node {source}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def steiner_tree_length(network: RoadNetwork, terminals: Iterable[int]) -> float:
    """Approximate the length of a minimal tree connecting ``terminals``.

    Used by the Section 7.5 comparison: the paper derives the LCMSR length budget from
    "the minimum total length of the road segments connecting all relevant objects" in
    the MaxRS rectangle. We use the classic 2-approximation: build the metric closure
    over the terminals with Dijkstra, take its minimum spanning tree, and report that
    tree's length. Unreachable terminal pairs are skipped (each unreachable component
    contributes its own sub-tree).

    Returns:
        The approximate connecting length; ``0.0`` when fewer than two terminals.
    """
    terminal_list = [t for t in dict.fromkeys(terminals) if t in network]
    if len(terminal_list) < 2:
        return 0.0
    # Metric closure restricted to the terminals.
    closure: Dict[int, Dict[int, float]] = {}
    terminal_set = set(terminal_list)
    for t in terminal_list:
        dist, _ = dijkstra(network, t, targets=set(terminal_set) - {t})
        closure[t] = {u: d for u, d in dist.items() if u in terminal_set and u != t}

    # Prim's MST over the (possibly disconnected) closure.
    total = 0.0
    unvisited = set(terminal_list)
    while unvisited:
        start = next(iter(unvisited))
        unvisited.discard(start)
        heap: List[Tuple[float, int]] = []
        for v, d in closure[start].items():
            if v in unvisited:
                heapq.heappush(heap, (d, v))
        in_tree = {start}
        while heap:
            d, v = heapq.heappop(heap)
            if v not in unvisited:
                continue
            unvisited.discard(v)
            in_tree.add(v)
            total += d
            for w, dw in closure[v].items():
                if w in unvisited:
                    heapq.heappush(heap, (dw, w))
    return total


def eccentricity(network: RoadNetwork, source: int) -> float:
    """Return the largest finite shortest-path distance from ``source``."""
    dist, _ = dijkstra(network, source)
    return max(dist.values()) if dist else 0.0
