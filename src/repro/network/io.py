"""Road-network readers and writers.

The paper downloads its New York network from the DIMACS shortest-path challenge
website, which distributes graphs as a pair of plain-text files: a ``.gr`` file with
``a <u> <v> <length>`` arc lines and a ``.co`` file with ``v <id> <x> <y>`` coordinate
lines. :func:`load_dimacs` reads that format (arcs are de-duplicated into undirected
edges), so the reproduction can run on the real data when a user supplies it, and
:func:`save_dimacs` writes it back so synthetic networks can be exported. A simpler
whitespace edge-list format is supported for quick interchange with other tools, and
:func:`load_ways` reads the OSM-extract-style *ways* format (node declarations plus
polyline node sequences, edge lengths derived from the geometry) so continental-scale
graphs exported from OpenStreetMap tooling stream into the same
:class:`~repro.network.graph.RoadNetwork` → CSR snapshot pipeline as everything else.
"""

from __future__ import annotations

import math
import os
from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import DatasetError
from repro.network.graph import RoadNetwork


def load_dimacs(gr_path: str, co_path: str, length_scale: float = 1.0) -> RoadNetwork:
    """Load a DIMACS ``.gr`` + ``.co`` file pair into a :class:`RoadNetwork`.

    Args:
        gr_path: Path to the graph (arc) file. Lines starting with ``a`` define arcs;
            ``c`` lines are comments and ``p`` lines are headers (both ignored).
        co_path: Path to the coordinate file. Lines starting with ``v`` define node
            coordinates; DIMACS stores them as integers (longitude/latitude * 1e6),
            which is preserved verbatim — callers may re-project afterwards.
        length_scale: Multiplier applied to every arc length (DIMACS distance graphs
            store lengths in decimeters or similar integer units; pass e.g. ``0.1`` to
            convert to meters).

    Returns:
        The loaded network with undirected, de-duplicated edges.

    Raises:
        DatasetError: If either file is missing or malformed.
    """
    if not os.path.exists(co_path):
        raise DatasetError(f"coordinate file not found: {co_path}")
    if not os.path.exists(gr_path):
        raise DatasetError(f"graph file not found: {gr_path}")

    network = RoadNetwork()
    with open(co_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts or parts[0] in ("c", "p"):
                continue
            if parts[0] != "v" or len(parts) != 4:
                raise DatasetError(f"{co_path}:{line_no}: malformed coordinate line: {line!r}")
            node_id = int(parts[1])
            x = float(parts[2])
            y = float(parts[3])
            if node_id not in network:
                network.add_node(node_id, x, y)

    with open(gr_path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            parts = line.split()
            if not parts or parts[0] in ("c", "p"):
                continue
            if parts[0] != "a" or len(parts) != 4:
                raise DatasetError(f"{gr_path}:{line_no}: malformed arc line: {line!r}")
            u = int(parts[1])
            v = int(parts[2])
            length = float(parts[3]) * length_scale
            if u == v:
                continue
            if u not in network or v not in network:
                raise DatasetError(
                    f"{gr_path}:{line_no}: arc references unknown node ({u}, {v})"
                )
            network.add_edge(u, v, length)
    return network


def save_dimacs(network: RoadNetwork, gr_path: str, co_path: str) -> None:
    """Write a network as a DIMACS ``.gr`` + ``.co`` file pair.

    Every undirected edge is emitted as two directed arcs, matching the convention of
    the DIMACS challenge files the paper uses.
    """
    with open(co_path, "w", encoding="utf-8") as handle:
        handle.write(f"p aux sp co {network.num_nodes}\n")
        for node in network.nodes():
            handle.write(f"v {node.node_id} {node.x:.6f} {node.y:.6f}\n")
    with open(gr_path, "w", encoding="utf-8") as handle:
        handle.write(f"p sp {network.num_nodes} {2 * network.num_edges}\n")
        for edge in network.edges():
            handle.write(f"a {edge.u} {edge.v} {edge.length:.6f}\n")
            handle.write(f"a {edge.v} {edge.u} {edge.length:.6f}\n")


def load_edge_list(path: str) -> RoadNetwork:
    """Load a network from a simple whitespace edge-list file.

    The expected format is one record per line:

    * ``n <id> <x> <y>`` declares a node,
    * ``e <u> <v> <length>`` declares an undirected edge,
    * blank lines and lines starting with ``#`` are ignored.

    Raises:
        DatasetError: If the file is missing or a line cannot be parsed.
    """
    if not os.path.exists(path):
        raise DatasetError(f"edge-list file not found: {path}")
    network = RoadNetwork()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] == "n" and len(parts) == 4:
                    network.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
                elif parts[0] == "e" and len(parts) == 4:
                    network.add_edge(int(parts[1]), int(parts[2]), float(parts[3]))
                else:
                    raise ValueError("unknown record type")
            except (ValueError, KeyError) as exc:
                raise DatasetError(f"{path}:{line_no}: malformed line {line!r}") from exc
    return network


def load_ways(path: str) -> RoadNetwork:
    """Load a network from a plain-text OSM-extract-style *ways* file.

    OpenStreetMap exports (and most tools that post-process them) describe a
    road network as point declarations plus *ways* — ordered node sequences
    tracing each street's polyline. This reader accepts that shape directly,
    one record per line:

    * ``node <id> <x> <y>`` declares a junction/shape point in projected
      coordinates (meters);
    * ``way <way_id> <node> <node> ...`` declares a street: its own id (kept
      only for file readability, like OSM way ids) followed by the sequence of
      nodes it passes through (two or more); every consecutive pair becomes
      one undirected edge whose length is the Euclidean distance between the
      two points — the way's geometry *is* the length source, so no length
      column is needed in the file;
    * blank lines and lines starting with ``#`` are ignored.

    A node may appear in any number of ways (intersections), and the same edge
    re-declared by overlapping ways is de-duplicated by
    :meth:`RoadNetwork.add_edge` just like repeated DIMACS arcs. Zero-length
    segments (consecutive duplicate points) are skipped.

    The file streams line by line — memory is bounded by the network itself,
    never by the file size — matching the module's role as the real-data entry
    point for million-node graphs.

    Raises:
        DatasetError: If the file is missing, a line cannot be parsed, or a way
            references an undeclared node.
    """
    if not os.path.exists(path):
        raise DatasetError(f"ways file not found: {path}")
    network = RoadNetwork()
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                if parts[0] == "node" and len(parts) == 4:
                    network.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
                    continue
                if parts[0] == "way" and len(parts) >= 4:
                    sequence = [int(token) for token in parts[2:]]
                else:
                    raise ValueError("unknown record type")
            except (ValueError, KeyError) as exc:
                raise DatasetError(f"{path}:{line_no}: malformed line {line!r}") from exc
            for u, v in zip(sequence, sequence[1:]):
                if u == v:
                    continue
                if u not in network or v not in network:
                    raise DatasetError(
                        f"{path}:{line_no}: way references undeclared node "
                        f"({u if u not in network else v})"
                    )
                a, b = network.node(u), network.node(v)
                length = math.hypot(a.x - b.x, a.y - b.y)
                if length <= 0.0:
                    continue
                network.add_edge(u, v, length)
    return network


def save_edge_list(network: RoadNetwork, path: str) -> None:
    """Write a network in the simple edge-list format readable by :func:`load_edge_list`."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# repro road-network edge list\n")
        for node in network.nodes():
            handle.write(f"n {node.node_id} {node.x:.6f} {node.y:.6f}\n")
        for edge in network.edges():
            handle.write(f"e {edge.u} {edge.v} {edge.length:.6f}\n")
