"""Road-network substrate.

This subpackage implements the paper's Definition 1: an undirected road-network graph
``G = (V, E, τ, λ)`` where every node carries a planar embedding and every edge a
non-negative road-segment length, plus the utilities the query algorithms need —
spatial windowing of the graph to the query rectangle ``Q.Λ``, shortest-path
computation, synthetic network builders and a plain-text (DIMACS-style) reader/writer.
"""

from repro.network.graph import RoadNetwork, Node, Edge
from repro.network.compact import CompactNetwork, GraphView
from repro.network.builders import (
    grid_network,
    manhattan_network,
    random_geometric_network,
    star_network,
    path_network,
)
from repro.network.subgraph import induced_subgraph, nodes_in_rectangle, Rectangle
from repro.network.shortest_path import dijkstra, shortest_path_length, shortest_path
from repro.network.projection import equirectangular_to_meters, haversine_meters
from repro.network.io import (
    load_dimacs,
    save_dimacs,
    load_edge_list,
    save_edge_list,
)
from repro.network.stats import NetworkStats, compute_stats

__all__ = [
    "RoadNetwork",
    "CompactNetwork",
    "GraphView",
    "Node",
    "Edge",
    "Rectangle",
    "grid_network",
    "manhattan_network",
    "random_geometric_network",
    "star_network",
    "path_network",
    "induced_subgraph",
    "nodes_in_rectangle",
    "dijkstra",
    "shortest_path_length",
    "shortest_path",
    "equirectangular_to_meters",
    "haversine_meters",
    "load_dimacs",
    "save_dimacs",
    "load_edge_list",
    "save_edge_list",
    "NetworkStats",
    "compute_stats",
]
