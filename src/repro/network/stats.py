"""Descriptive statistics for road networks.

Used by the dataset builders to report that the synthetic stand-ins have the structural
properties (degree distribution, edge-length distribution, density) of the paper's NY
and USANW networks, and by EXPERIMENTS.md to document the substituted workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network.graph import RoadNetwork


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of a road network."""

    num_nodes: int
    num_edges: int
    average_degree: float
    min_edge_length: float
    max_edge_length: float
    mean_edge_length: float
    total_length: float
    num_components: int
    bounding_box_area: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary (useful for reporting)."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "average_degree": self.average_degree,
            "min_edge_length": self.min_edge_length,
            "max_edge_length": self.max_edge_length,
            "mean_edge_length": self.mean_edge_length,
            "total_length": self.total_length,
            "num_components": self.num_components,
            "bounding_box_area": self.bounding_box_area,
        }


def compute_stats(network: RoadNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``network``.

    An empty network yields all-zero statistics rather than raising, so reporting code
    can be applied uniformly to windowed sub-networks that happen to be empty.
    """
    if network.num_nodes == 0:
        return NetworkStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
    lengths: List[float] = [edge.length for edge in network.edges()]
    total_length = sum(lengths)
    if network.num_nodes > 0:
        try:
            min_x, min_y, max_x, max_y = network.bounding_box()
            bbox_area = (max_x - min_x) * (max_y - min_y)
        except Exception:  # pragma: no cover - defensive; bounding_box raises only when empty
            bbox_area = 0.0
    else:
        bbox_area = 0.0
    return NetworkStats(
        num_nodes=network.num_nodes,
        num_edges=network.num_edges,
        average_degree=2.0 * network.num_edges / network.num_nodes,
        min_edge_length=min(lengths) if lengths else 0.0,
        max_edge_length=max(lengths) if lengths else 0.0,
        mean_edge_length=(total_length / len(lengths)) if lengths else 0.0,
        total_length=total_length,
        num_components=len(network.connected_components()),
        bounding_box_area=bbox_area,
    )
