"""Geographic-to-planar projection helpers.

The paper converts latitude/longitude coordinates to the UTM planar system (WGS-84) so
that road-segment lengths are metric. A full UTM implementation is unnecessary for the
reproduction because the synthetic datasets are generated directly in meters; what we
provide is (a) a faithful haversine great-circle distance and (b) a local
equirectangular projection that is accurate to well under 0.5 % for city-scale extents,
which is the property the experiments depend on (metric edge lengths inside ``Q.Λ``).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

EARTH_RADIUS_METERS = 6_371_008.8
"""Mean Earth radius (IUGG) used for both projections, in meters."""


def haversine_meters(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Return the great-circle distance between two WGS-84 points, in meters.

    Args:
        lat1, lon1: First point, in decimal degrees.
        lat2, lon2: Second point, in decimal degrees.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(a)))


def equirectangular_to_meters(
    lat: float, lon: float, origin_lat: float, origin_lon: float
) -> Tuple[float, float]:
    """Project a WGS-84 point to local planar coordinates in meters.

    Uses an equirectangular projection centred on ``(origin_lat, origin_lon)``: the x
    axis points east, the y axis north. This is the standard small-extent substitute
    for UTM and keeps Euclidean distances within a fraction of a percent of
    great-circle distances over city-scale regions such as the paper's 100–200 km²
    query areas.

    Args:
        lat, lon: Point to project, decimal degrees.
        origin_lat, origin_lon: Projection origin, decimal degrees.

    Returns:
        ``(x, y)`` planar coordinates in meters relative to the origin.
    """
    x = math.radians(lon - origin_lon) * EARTH_RADIUS_METERS * math.cos(math.radians(origin_lat))
    y = math.radians(lat - origin_lat) * EARTH_RADIUS_METERS
    return (x, y)


def project_points(
    points: Iterable[Tuple[float, float]],
    origin: Tuple[float, float] | None = None,
) -> List[Tuple[float, float]]:
    """Project a sequence of ``(lat, lon)`` points to planar meters.

    If ``origin`` is not given, the centroid of the input points is used, which keeps
    projection distortion symmetric over the extent.

    Args:
        points: Iterable of ``(lat, lon)`` pairs in decimal degrees.
        origin: Optional ``(lat, lon)`` projection origin.

    Returns:
        A list of ``(x, y)`` pairs in meters, in input order.
    """
    pts = list(points)
    if not pts:
        return []
    if origin is None:
        origin_lat = sum(p[0] for p in pts) / len(pts)
        origin_lon = sum(p[1] for p in pts) / len(pts)
    else:
        origin_lat, origin_lon = origin
    return [equirectangular_to_meters(lat, lon, origin_lat, origin_lon) for lat, lon in pts]
