"""Synthetic road-network builders.

The paper runs on two real road networks (New York City and the north-west USA) that
are not shipped with this reproduction. The builders below create networks with the
structural properties the LCMSR algorithms are sensitive to — metric edge lengths,
low node degree (2–4), grid-like urban cores and sparser suburban fringes — so the
experiment harness can reproduce the *shape* of the paper's results at laptop scale.
Real DIMACS files can still be loaded through :mod:`repro.network.io`.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> RoadNetwork:
    """Build a rectangular grid network.

    Node ``(r, c)`` receives identifier ``r * cols + c`` and coordinates
    ``(c * spacing, r * spacing)`` (optionally jittered). Horizontal and vertical
    neighbours are connected by edges whose lengths equal the Euclidean distance
    between the (possibly jittered) embeddings.

    Args:
        rows: Number of grid rows (must be >= 1).
        cols: Number of grid columns (must be >= 1).
        spacing: Distance between adjacent grid points, in meters.
        jitter: Maximum absolute coordinate perturbation applied per axis, in meters.
        rng: Random generator used for jitter; a fresh seeded generator when omitted.

    Returns:
        The constructed :class:`RoadNetwork`.
    """
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be positive, got {rows}x{cols}")
    if spacing <= 0:
        raise GraphError(f"grid spacing must be positive, got {spacing}")
    rng = rng or random.Random(0)
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            x = c * spacing
            y = r * spacing
            if jitter > 0:
                x += rng.uniform(-jitter, jitter)
                y += rng.uniform(-jitter, jitter)
            network.add_node(r * cols + c, x, y)
    for r in range(rows):
        for c in range(cols):
            node_id = r * cols + c
            if c + 1 < cols:
                network.add_edge(node_id, node_id + 1)
            if r + 1 < rows:
                network.add_edge(node_id, node_id + cols)
    return network


def manhattan_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    diagonal_fraction: float = 0.05,
    removal_fraction: float = 0.03,
    jitter_fraction: float = 0.08,
    seed: int = 7,
) -> RoadNetwork:
    """Build a Manhattan-style street grid with avenues, diagonals and missing blocks.

    The generator starts from a jittered grid, removes a small fraction of interior
    edges (closed streets, parks) while keeping the network connected, and adds a few
    diagonal shortcuts (Broadway-style avenues). The result has the degree distribution
    and metric structure of a dense downtown road network.

    Args:
        rows: Grid rows.
        cols: Grid columns.
        spacing: Block size in meters (Manhattan blocks are roughly 80 x 270 m; a
            square 100 m default keeps densities comparable).
        diagonal_fraction: Fraction of grid nodes that receive a diagonal shortcut.
        removal_fraction: Fraction of edges removed (subject to staying connected).
        jitter_fraction: Coordinate jitter as a fraction of ``spacing``.
        seed: Seed for the internal random generator, for reproducibility.

    Returns:
        The constructed :class:`RoadNetwork`.
    """
    rng = random.Random(seed)
    network = grid_network(rows, cols, spacing=spacing, jitter=spacing * jitter_fraction, rng=rng)

    # Add diagonal avenues: each selected node connects to its down-right neighbour.
    num_diagonals = int(diagonal_fraction * rows * cols)
    for _ in range(num_diagonals):
        r = rng.randrange(0, max(1, rows - 1))
        c = rng.randrange(0, max(1, cols - 1))
        u = r * cols + c
        v = (r + 1) * cols + (c + 1)
        if not network.has_edge(u, v):
            network.add_edge(u, v)

    # Remove a fraction of edges while preserving connectivity.
    edges = list(network.edges())
    rng.shuffle(edges)
    to_remove = int(removal_fraction * len(edges))
    removed = 0
    for edge in edges:
        if removed >= to_remove:
            break
        network.remove_edge(edge.u, edge.v)
        if network.is_connected():
            removed += 1
        else:
            network.add_edge(edge.u, edge.v, edge.length)
    return network


def random_geometric_network(
    num_nodes: int,
    extent: float = 10_000.0,
    target_degree: float = 3.0,
    seed: int = 11,
) -> RoadNetwork:
    """Build a sparse random geometric network resembling a rural / suburban road net.

    Nodes are scattered uniformly over an ``extent`` x ``extent`` square and each node
    is connected to its nearest unconnected neighbours until the average degree reaches
    ``target_degree``; a spanning pass then guarantees connectivity. Edge lengths are
    Euclidean, so the network is metric like a real road graph.

    Args:
        num_nodes: Number of nodes.
        extent: Side length of the square embedding area, in meters.
        target_degree: Desired average node degree (real road networks are ~2.5–3.5).
        seed: Seed for the internal random generator.

    Returns:
        The constructed :class:`RoadNetwork`.
    """
    if num_nodes < 1:
        raise GraphError("random_geometric_network needs at least one node")
    rng = random.Random(seed)
    network = RoadNetwork()
    coords = []
    for node_id in range(num_nodes):
        x = rng.uniform(0.0, extent)
        y = rng.uniform(0.0, extent)
        network.add_node(node_id, x, y)
        coords.append((x, y, node_id))

    # Sort nodes on a space-filling-ish key (x then y) and connect near neighbours.
    # A simple uniform-grid bucketing keeps this O(n * k) instead of O(n^2).
    cell = max(extent / max(1.0, math.sqrt(num_nodes)), 1e-9)
    buckets: dict[Tuple[int, int], list[int]] = {}
    for x, y, node_id in coords:
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(node_id)

    def nearby(node_id: int) -> list[int]:
        node = network.node(node_id)
        cx, cy = int(node.x // cell), int(node.y // cell)
        out: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                out.extend(buckets.get((cx + dx, cy + dy), ()))
        return [other for other in out if other != node_id]

    target_edges = int(target_degree * num_nodes / 2)
    candidates: list[Tuple[float, int, int]] = []
    for node_id in range(num_nodes):
        node = network.node(node_id)
        neighbours = nearby(node_id)
        neighbours.sort(key=lambda other: network.euclidean(node_id, other))
        for other in neighbours[:6]:
            if node_id < other:
                candidates.append((network.euclidean(node_id, other), node_id, other))
    candidates.sort()
    for dist, u, v in candidates:
        if network.num_edges >= target_edges:
            break
        if not network.has_edge(u, v):
            network.add_edge(u, v, dist)

    # Connect remaining components through their closest node pairs.
    components = network.connected_components()
    while len(components) > 1:
        base = components[0]
        best: Tuple[float, int, int] | None = None
        for other_component in components[1:]:
            for u in base:
                for v in other_component:
                    d = network.euclidean(u, v)
                    if best is None or d < best[0]:
                        best = (d, u, v)
        assert best is not None
        network.add_edge(best[1], best[2], best[0])
        components = network.connected_components()
    return network


def star_network(num_leaves: int, edge_length: float = 1.0, center_id: int = 0) -> RoadNetwork:
    """Build a star graph: one centre node connected to ``num_leaves`` leaves.

    Stars are the graphs the paper's Theorem 3 (knapsack reduction) uses, so they are
    convenient both for unit tests and for the findOptTree DP's worst case.

    Args:
        num_leaves: Number of leaf nodes.
        edge_length: Length of every centre-to-leaf edge.
        center_id: Identifier of the centre node; leaves get ``center_id + 1, ...``.
    """
    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    network = RoadNetwork()
    network.add_node(center_id, 0.0, 0.0)
    for i in range(num_leaves):
        leaf_id = center_id + 1 + i
        angle = 2.0 * math.pi * i / max(1, num_leaves)
        network.add_node(leaf_id, edge_length * math.cos(angle), edge_length * math.sin(angle))
        network.add_edge(center_id, leaf_id, edge_length)
    return network


def path_network(num_nodes: int, edge_length: float = 1.0) -> RoadNetwork:
    """Build a path graph ``0 - 1 - 2 - ... - (n-1)`` with uniform edge lengths."""
    if num_nodes < 1:
        raise GraphError("path_network needs at least one node")
    network = RoadNetwork()
    for i in range(num_nodes):
        network.add_node(i, i * edge_length, 0.0)
    for i in range(num_nodes - 1):
        network.add_edge(i, i + 1, edge_length)
    return network


def paper_example_network() -> RoadNetwork:
    """Build the 6-node example graph of the paper's Figure 2.

    Node ids are 1..6 matching ``v1``..``v6``; edge lengths are the figure's values
    (3.1, 5, 4, 2.8, 3.4, 1.5, 3.2 — the figure draws seven segments). The node
    weights of Figure 2 are *not* part of the graph; they are query-dependent scores
    and are supplied by the tests that use this builder.
    """
    network = RoadNetwork()
    # Coordinates are only for plotting; distances are given explicitly.
    positions = {1: (0, 2), 2: (1, 2), 3: (2, 2), 4: (2, 0), 5: (1, 0), 6: (0.8, 1)}
    for node_id, (x, y) in positions.items():
        network.add_node(node_id, float(x), float(y))
    network.add_edge(1, 2, 3.1)
    network.add_edge(2, 3, 5.0)
    network.add_edge(1, 5, 4.0)
    network.add_edge(2, 6, 1.5)
    network.add_edge(6, 5, 2.8)
    network.add_edge(5, 4, 1.6)
    network.add_edge(3, 4, 3.2)
    network.add_edge(6, 4, 3.4)
    return network
