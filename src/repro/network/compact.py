"""Frozen CSR (compressed sparse row) snapshots of road networks.

:class:`~repro.network.graph.RoadNetwork` is a mutable dict-of-dicts structure —
ideal while a network is being built, wasteful once it only gets read: every query
used to re-materialise node and adjacency dictionaries for its window, and every
traversal paid Python hashing per neighbour hop. :class:`CompactNetwork` is the
read-optimised counterpart: an immutable snapshot holding the graph as flat arrays

* ``ids``      — node identifiers, in the source network's iteration order;
* ``xs / ys``  — planar coordinates (float64), aligned with ``ids``;
* ``indptr``   — CSR row pointers (int32), one entry per node plus one;
* ``indices``  — CSR column indices (int32 dense node positions), each undirected
  edge appearing once per direction;
* ``lengths``  — edge lengths (float64), aligned with ``indices``.

Snapshots are created once — :meth:`CompactNetwork.from_network` (or
:meth:`RoadNetwork.freeze <repro.network.graph.RoadNetwork.freeze>`) — and shared
read-only by every consumer thereafter: they are safe to use concurrently and cheap
to pickle (only the six arrays cross process boundaries), which is what makes them
the unit of sharding and multiprocess serving.

Two further properties matter for correctness:

* **Order preservation.** The CSR rows and the per-row neighbour order replicate the
  source network's iteration order exactly, and :meth:`window_view` /
  :meth:`subgraph` preserve the snapshot's relative order. Traversals that break
  ties by discovery order therefore behave identically on both backends.
* **O(|V|) windowing.** :meth:`window_view` filters nodes with one vectorised
  coordinate comparison and re-numbers the CSR with a handful of numpy kernels —
  no per-node or per-edge Python work — which is where the per-query speedup of the
  compact backend comes from.

Snapshots also carry flat Python list mirrors of the arrays for the traversal hot
loops (per-element numpy access is far slower than list indexing). The mirrors are
built **lazily** on first traversal: windowing, coordinate masks, statistics and the
whole :mod:`repro.service.persist` load path run on the raw arrays alone. A snapshot
whose arrays are memory-mapped from an on-disk artifact therefore does no Python-side
materialisation at load time — construction touches only shapes plus one vectorised
id-uniqueness scan, and the expensive per-element mirror build is deferred until a
traversal actually happens (artifact loads with checksum verification enabled stream
the file once for hashing, which warms the page cache but still builds nothing).

:class:`GraphView` is the minimal protocol shared by :class:`RoadNetwork` and
:class:`CompactNetwork`; solver and routing code is written against it so either
backend can be plugged in.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.network.graph import Edge, Node, RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.network.subgraph import Rectangle


@runtime_checkable
class GraphView(Protocol):
    """The read-only graph surface the LCMSR algorithms are written against.

    Both the mutable :class:`~repro.network.graph.RoadNetwork` and the frozen
    :class:`CompactNetwork` satisfy this protocol, so solvers, Dijkstra and the
    instance builder accept either backend interchangeably.
    """

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the view."""
        ...

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node identifiers."""
        ...

    def neighbor_items(self, node_id: int) -> Iterable[Tuple[int, float]]:
        """Iterate over ``(neighbor_id, edge_length)`` pairs of ``node_id``."""
        ...

    def degree(self, node_id: int) -> int:
        """Return the number of incident edges of ``node_id``."""
        ...

    def edge_length(self, u: int, v: int) -> float:
        """Return the road-segment length τ(u, v)."""
        ...

    def coords(self, node_id: int) -> Tuple[float, float]:
        """Return the planar ``(x, y)`` embedding of ``node_id``."""
        ...

    def contains(self, node_id: int) -> bool:
        """Return ``True`` if ``node_id`` is a node of the view."""
        ...


class CompactNetwork:
    """An immutable CSR snapshot of a road network (see the module docstring).

    Instances are normally obtained through :meth:`from_network`,
    :meth:`window_view` or :meth:`subgraph` rather than the raw constructor. The
    read API mirrors :class:`~repro.network.graph.RoadNetwork` exactly (minus the
    mutators), so a snapshot is a drop-in replacement wherever a network is only
    read.
    """

    __slots__ = (
        "_ids",
        "_xs",
        "_ys",
        "_indptr",
        "_indices",
        "_lengths",
        "_ids_list",
        "_indptr_list",
        "_nbr_ids_list",
        "_nbr_pos_list",
        "_lengths_list",
        "_nbr_pairs_list",
        "_id_to_index",
        "_num_edges",
        "_row_of_entry",
        "_length_stats",
        "_id_sort_order",
    )

    def __init__(
        self,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        lengths: np.ndarray,
        validate_ids: bool = True,
    ) -> None:
        self._ids = np.asarray(ids, dtype=np.int64)
        self._xs = np.asarray(xs, dtype=np.float64)
        self._ys = np.asarray(ys, dtype=np.float64)
        self._indptr = np.asarray(indptr, dtype=np.int32)
        self._indices = np.asarray(indices, dtype=np.int32)
        self._lengths = np.asarray(lengths, dtype=np.float64)
        n = self._ids.shape[0]
        if self._xs.shape[0] != n or self._ys.shape[0] != n:
            raise GraphError("coordinate arrays must align with the id array")
        if self._indptr.shape[0] != n + 1:
            raise GraphError("indptr must have num_nodes + 1 entries")
        if self._indices.shape[0] != self._lengths.shape[0]:
            raise GraphError("indices and lengths must align")
        # Vectorised uniqueness check: keeps the "corrupt snapshot fails at
        # construction" guarantee (important for artifact loading) without
        # materialising the Python id map. Derived views (window/subgraph) keep
        # a subset of already-validated ids and skip the re-check.
        if validate_ids and np.unique(self._ids).shape[0] != n:
            raise GraphError("duplicate node ids in snapshot")
        self._num_edges = int(self._indices.shape[0]) // 2
        # Flat Python mirrors (traversal loops index these instead of numpy arrays
        # because per-element numpy access costs far more than list indexing) and
        # the id → dense-position map are built lazily by _materialize_lists /
        # _id_map: pure-array consumers — windowing, stats, persistence — never
        # pay for them, which keeps mmap-loaded snapshots engine-ready without
        # reading the arrays.
        self._ids_list: List[int] | None = None
        self._indptr_list: List[int] | None = None
        self._nbr_ids_list: List[int] | None = None
        self._nbr_pos_list: List[int] | None = None
        self._lengths_list: List[float] | None = None
        self._nbr_pairs_list: List[Tuple[int, float]] | None = None
        self._id_to_index: Dict[int, int] | None = None
        self._row_of_entry: np.ndarray | None = None  # lazy np.repeat cache
        self._length_stats: Tuple[float, float, float] | None = None
        self._id_sort_order: Tuple[np.ndarray, np.ndarray] | None = None

    def _materialize_lists(self) -> None:
        """Build the flat list mirrors of the CSR arrays (idempotent, lazy)."""
        if self._ids_list is not None:
            return
        indptr_list = self._indptr.tolist()
        nbr_ids_list: List[int] = (
            self._ids[self._indices].tolist() if self._indices.size else []
        )
        nbr_pos_list: List[int] = self._indices.tolist()
        lengths_list: List[float] = self._lengths.tolist()
        # Pre-zipped (neighbor_id, length) pairs: neighbor_items() slices this one
        # flat list (pointer copies only) instead of zipping two slices per call,
        # which would allocate fresh tuples on every visit of a node.
        nbr_pairs_list: List[Tuple[int, float]] = list(zip(nbr_ids_list, lengths_list))
        self._indptr_list = indptr_list
        self._nbr_ids_list = nbr_ids_list
        self._nbr_pos_list = nbr_pos_list
        self._lengths_list = lengths_list
        self._nbr_pairs_list = nbr_pairs_list
        # Assigned last: readers gate on _ids_list, so under the GIL a concurrent
        # reader either sees None (and rebuilds, idempotently) or a complete set.
        self._ids_list = self._ids.tolist()

    def _lists(self) -> Tuple[List[int], List[int], List[int], List[float], List[int]]:
        """Return ``(indptr, positions, neighbor_ids, lengths, ids)`` flat lists."""
        if self._ids_list is None:
            self._materialize_lists()
        return (
            self._indptr_list,  # type: ignore[return-value]
            self._nbr_pos_list,
            self._nbr_ids_list,
            self._lengths_list,
            self._ids_list,
        )

    def _id_map(self) -> Dict[int, int]:
        """Return the node-id → dense-position map (built lazily).

        Id uniqueness was already validated vectorised in ``__init__``.
        """
        if self._id_to_index is None:
            self._id_to_index = {
                node_id: index for index, node_id in enumerate(self._ids.tolist())
            }
        return self._id_to_index

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_network(cls, network: "GraphView") -> "CompactNetwork":
        """Freeze ``network`` into a CSR snapshot.

        Node order and per-node neighbour order replicate the source network's
        iteration order, so traversals tie-break identically on both backends.
        Freezing a :class:`CompactNetwork` returns it unchanged (snapshots are
        immutable, so sharing is always safe).
        """
        if isinstance(network, CompactNetwork):
            return network
        ids: List[int] = []
        xs: List[float] = []
        ys: List[float] = []
        for node_id in network.node_ids():
            x, y = network.coords(node_id)
            ids.append(node_id)
            xs.append(x)
            ys.append(y)
        id_to_index = {node_id: index for index, node_id in enumerate(ids)}
        indptr: List[int] = [0]
        indices: List[int] = []
        lengths: List[float] = []
        for node_id in ids:
            for neighbor_id, length in network.neighbor_items(node_id):
                indices.append(id_to_index[neighbor_id])
                lengths.append(length)
            indptr.append(len(indices))
        return cls(
            np.asarray(ids, dtype=np.int64),
            np.asarray(xs, dtype=np.float64),
            np.asarray(ys, dtype=np.float64),
            np.asarray(indptr, dtype=np.int32),
            np.asarray(indices, dtype=np.int32),
            np.asarray(lengths, dtype=np.float64),
        )

    def to_network(self) -> RoadNetwork:
        """Thaw the snapshot back into a mutable :class:`RoadNetwork`."""
        network = RoadNetwork()
        ids = self._lists()[4]
        xs = self._xs.tolist()
        ys = self._ys.tolist()
        for index, node_id in enumerate(ids):
            network.add_node(node_id, xs[index], ys[index])
        for edge in self.edges():
            network.add_edge(edge.u, edge.v, edge.length)
        return network

    def __reduce__(self):
        # Pickle only the six defining arrays; every derived structure (flat list
        # mirrors, the id map) is rebuilt on unpickling.
        return (
            CompactNetwork,
            (self._ids, self._xs, self._ys, self._indptr, self._indices, self._lengths),
        )

    # ------------------------------------------------------------------ inspection
    def __contains__(self, node_id: int) -> bool:
        return node_id in self._id_map()

    def contains(self, node_id: int) -> bool:
        """Return ``True`` if ``node_id`` is a node of the snapshot."""
        return node_id in self._id_map()

    def __len__(self) -> int:
        return int(self._ids.shape[0])

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return int(self._ids.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the snapshot."""
        return self._num_edges

    def index_of(self, node_id: int) -> int:
        """Return the dense array position of ``node_id``.

        Raises:
            NodeNotFoundError: If ``node_id`` is not in the snapshot.
        """
        try:
            return self._id_map()[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def adjacency_arrays(
        self,
    ) -> Tuple[List[int], List[int], List[int], List[float], List[int]]:
        """Return ``(indptr, positions, neighbor_ids, lengths, ids)`` flat lists.

        This is the traversal surface used by array-indexed kernels (e.g. the CSR
        Dijkstra): row ``i`` of the CSR spans ``indptr[i]:indptr[i + 1]`` in the
        flat ``positions`` (dense node positions), ``neighbor_ids`` and
        ``lengths`` lists, and ``ids[p]`` maps a dense position back to a node
        id. The lists are shared, not copied — callers must treat them as
        read-only.
        """
        return self._lists()

    def csr_index_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the raw ``(indptr, indices, lengths)`` numpy arrays (read-only)."""
        return self._indptr, self._indices, self._lengths

    def id_sort_order(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(permutation, sorted_ids)`` for vectorised id → position lookups.

        ``permutation[k]`` is the dense position of the k-th smallest node id
        and ``sorted_ids = ids[permutation]``; a batch of node ids maps to
        positions via ``permutation[np.searchsorted(sorted_ids, keys)]``. The
        permutation is a constant of the immutable snapshot, so it is computed
        once and cached — per-query consumers (the dense-instance builder on
        the window-less hot path) then pay O(k log |V|) instead of re-sorting
        the whole id array.
        """
        if self._id_sort_order is None:
            order = np.argsort(self._ids, kind="stable")
            self._id_sort_order = (order, self._ids[order])
        return self._id_sort_order

    def csr_node_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the raw ``(ids, xs, ys)`` numpy arrays (read-only).

        Together with :meth:`csr_index_arrays` this is the complete defining state
        of a snapshot — the six arrays :mod:`repro.service.persist` writes to and
        memory-maps from an on-disk artifact.
        """
        return self._ids, self._xs, self._ys

    def node(self, node_id: int) -> Node:
        """Return the :class:`Node` for ``node_id``; raises :class:`NodeNotFoundError`."""
        index = self.index_of(node_id)
        return Node(node_id, float(self._xs[index]), float(self._ys[index]))

    def coords(self, node_id: int) -> Tuple[float, float]:
        """Return the ``(x, y)`` embedding of ``node_id``."""
        index = self.index_of(node_id)
        return (float(self._xs[index]), float(self._ys[index]))

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        ids = self._lists()[4]
        xs = self._xs.tolist()
        ys = self._ys.tolist()
        for index, node_id in enumerate(ids):
            yield Node(node_id, xs[index], ys[index])

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node identifiers (snapshot order)."""
        return iter(self._lists()[4])

    def edges(self) -> Iterator[Edge]:
        """Iterate over all undirected edges, each reported once in normalised order."""
        indptr, _, neighbor_ids, lengths, ids = self._lists()
        for index, u in enumerate(ids):
            for slot in range(indptr[index], indptr[index + 1]):
                v = neighbor_ids[slot]
                if u < v:
                    yield Edge(u, v, lengths[slot])

    def neighbors(self, node_id: int) -> Iterator[int]:
        """Iterate over the neighbour identifiers of ``node_id``."""
        index = self.index_of(node_id)
        indptr, _, neighbor_ids, _, _ = self._lists()
        return iter(neighbor_ids[indptr[index] : indptr[index + 1]])

    def neighbor_items(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbor_id, edge_length)`` pairs of ``node_id``."""
        index = self.index_of(node_id)
        self._materialize_lists()
        indptr = self._indptr_list
        return iter(self._nbr_pairs_list[indptr[index] : indptr[index + 1]])

    def degree(self, node_id: int) -> int:
        """Return the number of incident edges of ``node_id``."""
        index = self.index_of(node_id)
        return int(self._indptr[index + 1]) - int(self._indptr[index])

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        index = self._id_map().get(u)
        if index is None:
            return False
        indptr, _, neighbor_ids, _, _ = self._lists()
        start, end = indptr[index], indptr[index + 1]
        return v in neighbor_ids[start:end]

    def edge_length(self, u: int, v: int) -> float:
        """Return the road-segment length τ(u, v); raises if the edge does not exist."""
        index = self._id_map().get(u)
        if index is not None:
            indptr, _, neighbor_ids, lengths, _ = self._lists()
            start, end = indptr[index], indptr[index + 1]
            for slot in range(start, end):
                if neighbor_ids[slot] == v:
                    return lengths[slot]
        raise EdgeNotFoundError(u, v)

    def euclidean(self, u: int, v: int) -> float:
        """Return the Euclidean distance between the embeddings of two nodes."""
        ax, ay = self.coords(u)
        bx, by = self.coords(v)
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

    def total_length(self) -> float:
        """Return the sum of all road-segment lengths in the snapshot."""
        return self._edge_length_stats()[0]

    def min_edge_length(self) -> float:
        """Return the minimum edge length (the paper's ``dmin``), or 0.0 if no edges."""
        return self._edge_length_stats()[1]

    def max_edge_length(self) -> float:
        """Return the maximum edge length (the paper's ``τmax``), or 0.0 if no edges."""
        return self._edge_length_stats()[2]

    def _edge_length_stats(self) -> Tuple[float, float, float]:
        if self._length_stats is None:
            if self._lengths.size == 0:
                self._length_stats = (0.0, 0.0, 0.0)
            else:
                # Each undirected edge appears twice in the CSR, hence the /2.
                self._length_stats = (
                    float(self._lengths.sum()) / 2.0,
                    float(self._lengths.min()),
                    float(self._lengths.max()),
                )
        return self._length_stats

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all node embeddings."""
        if self._ids.size == 0:
            raise GraphError("bounding_box of an empty network is undefined")
        return (
            float(self._xs.min()),
            float(self._ys.min()),
            float(self._xs.max()),
            float(self._ys.max()),
        )

    # ------------------------------------------------------------------ traversal
    def bfs_order(self, start: int) -> List[int]:
        """Return node ids reachable from ``start`` in breadth-first order."""
        start_index = self.index_of(start)
        indptr, columns, _, _, ids = self._lists()
        visited = [False] * len(ids)
        visited[start_index] = True
        order_indices: List[int] = [start_index]
        head = 0
        while head < len(order_indices):
            u = order_indices[head]
            head += 1
            for slot in range(indptr[u], indptr[u + 1]):
                v = columns[slot]
                if not visited[v]:
                    visited[v] = True
                    order_indices.append(v)
        return [ids[index] for index in order_indices]

    def connected_components(self) -> List[Set[int]]:
        """Return the connected components of the snapshot as sets of node ids."""
        remaining: Set[int] = set(self._lists()[4])
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            component = set(self.bfs_order(start))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Return ``True`` if the snapshot has one connected component (or is empty)."""
        ids = self._lists()[4]
        if not ids:
            return True
        return len(self.bfs_order(ids[0])) == len(ids)

    # ------------------------------------------------------------------ derived views
    def window_view(self, window: "Rectangle") -> "CompactNetwork":
        """Return the snapshot restricted to the nodes inside ``window``.

        The node filter is one vectorised coordinate comparison and the CSR is
        re-numbered with numpy kernels — no per-node Python work — so extracting a
        query window from a frozen snapshot costs a small fraction of rebuilding a
        dict-backed subgraph. Only edges with both endpoints inside the window are
        kept, matching :func:`repro.network.subgraph.induced_subgraph`.
        """
        mask = (
            (self._xs >= window.min_x)
            & (self._xs <= window.max_x)
            & (self._ys >= window.min_y)
            & (self._ys <= window.max_y)
        )
        return self._masked_view(mask)

    def window_node_ids(self, window: "Rectangle") -> List[int]:
        """Return the ids of the nodes inside ``window`` (vectorised point test)."""
        mask = (
            (self._xs >= window.min_x)
            & (self._xs <= window.max_x)
            & (self._ys >= window.min_y)
            & (self._ys <= window.max_y)
        )
        return self._ids[mask].tolist()

    def subgraph(self, node_ids: Iterable[int]) -> "CompactNetwork":
        """Return the snapshot induced by ``node_ids`` (nodes must exist).

        The result keeps the snapshot's node order restricted to the kept set,
        regardless of the order ``node_ids`` provides them in
        (:meth:`RoadNetwork.subgraph <repro.network.graph.RoadNetwork.subgraph>`
        by contrast follows the caller-provided order — pass ids in network
        iteration order there when cross-backend order parity matters).

        Raises:
            NodeNotFoundError: If any requested node is not in the snapshot.
        """
        mask = np.zeros(self._ids.shape[0], dtype=bool)
        for node_id in node_ids:
            mask[self.index_of(node_id)] = True
        return self._masked_view(mask)

    def _masked_view(self, mask: np.ndarray) -> "CompactNetwork":
        keep = np.flatnonzero(mask)
        new_position = np.full(self._ids.shape[0], -1, dtype=np.int32)
        new_position[keep] = np.arange(keep.size, dtype=np.int32)
        rows = self._entry_rows()
        entry_keep = mask[rows] & mask[self._indices]
        new_indices = new_position[self._indices[entry_keep]]
        new_lengths = self._lengths[entry_keep]
        # Kept entries stay grouped by (ordered) source row, so a bincount over the
        # re-numbered rows rebuilds the row pointers directly.
        counts = np.bincount(new_position[rows[entry_keep]], minlength=keep.size)
        new_indptr = np.zeros(keep.size + 1, dtype=np.int32)
        np.cumsum(counts, out=new_indptr[1:])
        return CompactNetwork(
            self._ids[keep],
            self._xs[keep],
            self._ys[keep],
            new_indptr,
            new_indices.astype(np.int32, copy=False),
            new_lengths,
            validate_ids=False,  # a subset of this snapshot's already-unique ids
        )

    def _entry_rows(self) -> np.ndarray:
        """Row (source-node position) of every CSR entry, cached after first use."""
        if self._row_of_entry is None:
            self._row_of_entry = np.repeat(
                np.arange(self._ids.shape[0], dtype=np.int32), np.diff(self._indptr)
            )
        return self._row_of_entry

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CompactNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
