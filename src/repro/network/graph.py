"""Road-network graph model (paper Definition 1).

A :class:`RoadNetwork` is an undirected graph whose nodes represent road junctions,
dead ends, or locations of geo-textual objects. Each node has a planar coordinate
``(x, y)`` (the paper's spatial mapping ``λ``) and each edge a non-negative length
(the paper's distance function ``τ``). The class is a thin, dependency-free adjacency
structure tuned for the access patterns the LCMSR algorithms need:

* constant-time neighbour iteration (``neighbors``),
* constant-time edge-length lookup (``edge_length``),
* cheap induced-subgraph construction for the query window ``Q.Λ``,
* stable integer node identifiers so tuple arrays can be plain dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only (compact imports this module)
    from repro.network.compact import CompactNetwork


@dataclass(frozen=True)
class Node:
    """A road-network node.

    Attributes:
        node_id: Stable integer identifier, unique within a network.
        x: Planar x coordinate in meters (after projection).
        y: Planar y coordinate in meters (after projection).
    """

    node_id: int
    x: float
    y: float

    def coords(self) -> Tuple[float, float]:
        """Return the ``(x, y)`` coordinate pair of the node."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Edge:
    """An undirected road segment between two nodes.

    The endpoints are stored in normalised order (``u <= v``) so that an edge compares
    and hashes identically regardless of the direction it was added or traversed in.
    """

    u: int
    v: int
    length: float

    def __post_init__(self) -> None:
        if self.length < 0:
            raise GraphError(f"edge ({self.u}, {self.v}) has negative length {self.length}")
        if self.u == self.v:
            raise GraphError(f"self-loop on node {self.u} is not a road segment")

    @staticmethod
    def make(u: int, v: int, length: float) -> "Edge":
        """Create an edge with endpoints stored in normalised (sorted) order."""
        if u == v:
            raise GraphError(f"self-loop on node {u} is not a road segment")
        if length < 0:
            raise GraphError(f"edge ({u}, {v}) has negative length {length}")
        if u > v:
            u, v = v, u
        return Edge(u, v, length)

    def key(self) -> Tuple[int, int]:
        """Return the normalised ``(min, max)`` endpoint pair identifying the edge."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)

    def other(self, node_id: int) -> int:
        """Return the endpoint of the edge that is not ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise GraphError(f"node {node_id} is not an endpoint of edge ({self.u}, {self.v})")


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Return the canonical (sorted) key for the undirected edge ``(u, v)``."""
    return (u, v) if u <= v else (v, u)


class RoadNetwork:
    """Undirected spatial road-network graph (paper Definition 1).

    The graph stores nodes keyed by integer identifiers, adjacency as a dictionary of
    neighbour → edge-length maps, and exposes the handful of operations used by the
    LCMSR algorithms. It intentionally mirrors a subset of the ``networkx`` API
    (``add_node`` / ``add_edge`` / ``neighbors``) so it is familiar, but avoids the
    per-edge attribute-dict overhead that would dominate runtime at benchmark scale.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._adj: Dict[int, Dict[int, float]] = {}
        self._num_edges: int = 0
        # Cached (total, min, max) edge-length aggregates; invalidated whenever an
        # edge is added, shortened or removed. Solvers probe max_edge_length() per
        # query, which used to be a full O(E) scan every call.
        self._length_stats: Optional[Tuple[float, float, float]] = None

    # ------------------------------------------------------------------ construction
    def add_node(self, node_id: int, x: float, y: float) -> Node:
        """Add a node with planar coordinates; replacing an existing node is an error."""
        if node_id in self._nodes:
            raise GraphError(f"node {node_id} already exists")
        node = Node(node_id, float(x), float(y))
        self._nodes[node_id] = node
        self._adj[node_id] = {}
        return node

    def add_edge(self, u: int, v: int, length: Optional[float] = None) -> Edge:
        """Add an undirected edge between existing nodes.

        If ``length`` is omitted, the Euclidean distance between the node embeddings is
        used, which matches how the synthetic builders create metric networks.
        Adding an edge twice keeps the shorter length (parallel road segments collapse
        to the best one, which is what every algorithm in the paper assumes).
        """
        if u not in self._nodes:
            raise NodeNotFoundError(u)
        if v not in self._nodes:
            raise NodeNotFoundError(v)
        if u == v:
            raise GraphError(f"self-loop on node {u} is not a road segment")
        if length is None:
            length = self.euclidean(u, v)
        length = float(length)
        if length < 0:
            raise GraphError(f"edge ({u}, {v}) has negative length {length}")
        existing = self._adj[u].get(v)
        if existing is None:
            self._num_edges += 1
            self._adj[u][v] = length
            self._adj[v][u] = length
            self._length_stats = None
        elif length < existing:
            self._adj[u][v] = length
            self._adj[v][u] = length
            self._length_stats = None
        return Edge.make(u, v, self._adj[u][v])

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)``; raises if it does not exist."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._length_stats = None

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all of its incident edges."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        for neighbor in list(self._adj[node_id]):
            self.remove_edge(node_id, neighbor)
        del self._adj[node_id]
        del self._nodes[node_id]

    # ------------------------------------------------------------------ inspection
    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the network."""
        return self._num_edges

    def node(self, node_id: int) -> Node:
        """Return the :class:`Node` for ``node_id``; raises :class:`NodeNotFoundError`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def contains(self, node_id: int) -> bool:
        """Return ``True`` if ``node_id`` is a node of the network.

        Method form of ``in``, required by the
        :class:`~repro.network.compact.GraphView` protocol (protocols cannot
        express ``__contains__`` cleanly).
        """
        return node_id in self._nodes

    def coords(self, node_id: int) -> Tuple[float, float]:
        """Return the planar ``(x, y)`` embedding of ``node_id``."""
        return self.node(node_id).coords()

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def edge_length(self, u: int, v: int) -> float:
        """Return the road-segment length τ(u, v); raises if the edge does not exist."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node identifiers."""
        return iter(self._nodes.keys())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all undirected edges, each reported once in normalised order."""
        for u, nbrs in self._adj.items():
            for v, length in nbrs.items():
                if u < v:
                    yield Edge(u, v, length)

    def neighbors(self, node_id: int) -> Iterator[int]:
        """Iterate over the neighbour identifiers of ``node_id``."""
        try:
            return iter(self._adj[node_id])
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def neighbor_items(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbor_id, edge_length)`` pairs of ``node_id``."""
        try:
            return iter(self._adj[node_id].items())
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def degree(self, node_id: int) -> int:
        """Return the number of incident edges of ``node_id``."""
        try:
            return len(self._adj[node_id])
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def euclidean(self, u: int, v: int) -> float:
        """Return the Euclidean distance between the embeddings of two nodes."""
        a = self.node(u)
        b = self.node(v)
        return ((a.x - b.x) ** 2 + (a.y - b.y) ** 2) ** 0.5

    def total_length(self) -> float:
        """Return the sum of all road-segment lengths in the network (cached)."""
        return self._edge_length_stats()[0]

    def min_edge_length(self) -> float:
        """Return the minimum edge length (the paper's ``dmin``), or 0.0 if no edges.

        The value is cached until the next edge mutation.
        """
        return self._edge_length_stats()[1]

    def max_edge_length(self) -> float:
        """Return the maximum edge length (the paper's ``τmax``), or 0.0 if no edges.

        The value is cached until the next edge mutation.
        """
        return self._edge_length_stats()[2]

    def _edge_length_stats(self) -> Tuple[float, float, float]:
        """``(total, min, max)`` edge length, recomputed only after edge mutations."""
        if self._length_stats is None:
            total = 0.0
            minimum: Optional[float] = None
            maximum: Optional[float] = None
            for u, nbrs in self._adj.items():
                for v, length in nbrs.items():
                    if u < v:
                        total += length
                        if minimum is None or length < minimum:
                            minimum = length
                        if maximum is None or length > maximum:
                            maximum = length
            self._length_stats = (total, minimum or 0.0, maximum or 0.0)
        return self._length_stats

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all node embeddings."""
        if not self._nodes:
            raise GraphError("bounding_box of an empty network is undefined")
        xs = [node.x for node in self._nodes.values()]
        ys = [node.y for node in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    # ------------------------------------------------------------------ traversal
    def bfs_order(self, start: int) -> List[int]:
        """Return node ids reachable from ``start`` in breadth-first order."""
        if start not in self._nodes:
            raise NodeNotFoundError(start)
        visited: Set[int] = {start}
        order: List[int] = [start]
        frontier: List[int] = [start]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in visited:
                        visited.add(v)
                        order.append(v)
                        next_frontier.append(v)
            frontier = next_frontier
        return order

    def connected_components(self) -> List[Set[int]]:
        """Return the connected components of the network as sets of node ids."""
        remaining: Set[int] = set(self._nodes)
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            component = set(self.bfs_order(start))
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Return ``True`` if the network has one connected component (or is empty)."""
        if not self._nodes:
            return True
        return len(self.bfs_order(next(iter(self._nodes)))) == len(self._nodes)

    # ------------------------------------------------------------------ copies
    def copy(self) -> "RoadNetwork":
        """Return a deep copy of the network."""
        clone = RoadNetwork()
        for node in self._nodes.values():
            clone.add_node(node.node_id, node.x, node.y)
        for edge in self.edges():
            clone.add_edge(edge.u, edge.v, edge.length)
        return clone

    def freeze(self) -> "CompactNetwork":
        """Return an immutable CSR snapshot of the network.

        Shorthand for :meth:`CompactNetwork.from_network
        <repro.network.compact.CompactNetwork.from_network>`; see that class for
        the snapshot's guarantees (shared read-only use, order preservation,
        vectorised windowing).
        """
        from repro.network.compact import CompactNetwork

        return CompactNetwork.from_network(self)

    def subgraph(self, node_ids: Iterable[int]) -> "RoadNetwork":
        """Return the subgraph induced by ``node_ids`` (nodes must exist).

        Nodes and edges are inserted in the order ``node_ids`` provides them
        (duplicates ignored), so a windowed subgraph iterates in the same order
        as the parent network — and therefore in the same order as a
        :class:`~repro.network.compact.CompactNetwork` window view, keeping
        order-sensitive tie-breaking identical across backends.
        """
        keep_order = list(dict.fromkeys(node_ids))
        keep = set(keep_order)
        sub = RoadNetwork()
        for node_id in keep_order:
            node = self.node(node_id)
            sub.add_node(node.node_id, node.x, node.y)
        # Fill each adjacency row in the parent's row order (add_edge would
        # order rows by edge-insertion time instead, breaking the cross-backend
        # order guarantee above); lengths are already validated in the parent.
        num_edges = 0
        for u in keep_order:
            row = sub._adj[u]
            for v, length in self._adj[u].items():
                if v in keep:
                    row[v] = length
                    if u < v:
                        num_edges += 1
        sub._num_edges = num_edges
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
