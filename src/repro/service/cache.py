"""A small thread-safe LRU cache with hit/miss/eviction accounting.

The serving layer keeps two of these: one over full query results and one over built
problem instances. Both are read and written concurrently by the worker pool, so
every operation takes the cache's lock; the critical sections are a dictionary probe
or insert, orders of magnitude cheaper than the solver work they guard.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's accounting counters.

    Attributes:
        hits: Number of ``get`` calls that found their key.
        misses: Number of ``get`` calls that did not.
        evictions: Number of entries dropped to respect ``max_size``.
        size: Current number of entries.
        max_size: Configured capacity (0 disables the cache entirely).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never probed)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """Least-recently-used cache safe for concurrent use.

    Args:
        max_size: Capacity in entries. ``0`` disables caching: every ``get`` misses
            and ``put`` is a no-op, which lets callers switch caching off without
            branching at every call site.

    Raises:
        ValueError: If ``max_size`` is negative.
    """

    def __init__(self, max_size: int = 256) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self._max_size = max_size
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_size(self) -> int:
        """Configured capacity."""
        return self._max_size

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for ``key`` (and mark it most recently used).

        Args:
            key: The cache key.
            default: Returned (and a miss recorded) when the key is absent.

        Returns:
            The cached value, or ``default`` on a miss.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry when over capacity."""
        if self._max_size == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._max_size:
                self._data.popitem(last=False)
                self._evictions += 1

    def keys(self) -> list:
        """Return a snapshot of the cached keys, LRU first."""
        with self._lock:
            return list(self._data)

    def clear(self) -> None:
        """Drop every entry (accounting counters are preserved)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """Return a consistent snapshot of the accounting counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                max_size=self._max_size,
            )
