"""The batched, concurrent serving layer over :class:`~repro.engine.LCMSREngine`.

The engine answers one query at a time and rebuilds its problem instance from
scratch on every call. :class:`QueryService` turns it into a throughput-oriented
front end:

* **Batch API** — :meth:`QueryService.submit` / :meth:`QueryService.submit_many`
  hand queries to a worker pool and return futures; :meth:`QueryService.run_batch`
  is the blocking convenience that preserves request order.
* **Result cache** — an LRU over normalized query keys
  (:class:`~repro.service.keys.ResultKey`): a repeated query is answered without
  touching the index or a solver.
* **Instance cache** — an LRU over :class:`~repro.service.keys.InstanceKey`: queries
  that share a keyword set and window (e.g. a ``∆``-sweep, or the same query under
  two algorithms) skip ``build_instance`` — the windowed subgraph extraction and the
  grid probe — and only pay for solving. When the engine's hot path attaches a
  :class:`~repro.core.dense.DenseInstance` (the columnar-pipeline default), the
  cache stores that substrate instead of the full
  :class:`~repro.core.instance.ProblemInstance`: it is smaller (flat arrays, no
  per-entry weight dict — the dict view re-materialises lazily in the original
  order on demand), picklable as-is, and re-binding it to an incoming query is a
  constant-time wrap.

Sharing built instances across workers is safe because solvers treat instances as
read-only (the evaluation runner has always shared one instance across solvers) and
the engine's :class:`~repro.service.bundle.IndexBundle` is immutable after
construction. Two concurrent misses on the same key may both compute the answer —
the cache then keeps one of the two identical results; the service trades that small
duplicated effort for a lock-free hot path.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.anytime import QueryPolicy
from repro.core.dense import DenseInstance
from repro.core.instance import ProblemInstance
from repro.core.query import LCMSRQuery
from repro.core.result import RegionResult, TopKResult
from repro.exceptions import QueryError
from repro.network.subgraph import Rectangle
from repro.service.cache import LRUCache
from repro.service.keys import InstanceKey, ResultKey
from repro.service.stats import QueryTiming, ServiceStats, StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports the bundle)
    from repro.engine import LCMSREngine

ServiceResult = Union[RegionResult, TopKResult]


@dataclass(frozen=True)
class QueryRequest:
    """One LCMSR query as submitted to the service.

    Attributes:
        keywords: Query keywords ``Q.ψ`` (caller order is preserved in execution;
            cache keys normalize it away).
        delta: Length constraint ``Q.∆``.
        region: Region of interest ``Q.Λ``; ``None`` means the whole network.
        algorithm: Solver name ("app", "tgen", "greedy", "exact"); the engine
            default when ``None``.
        k: Number of regions to return; ``k > 1`` routes to the top-k variant and
            yields a :class:`~repro.core.result.TopKResult`.
        policy: Per-query service level
            (:class:`~repro.core.anytime.QueryPolicy`); ``None`` means exact —
            the byte-identical legacy path. The policy rides along in cache
            keys (via its ``cache_token``), so an exact answer is never served
            from an approximate entry or vice versa.
    """

    keywords: Tuple[str, ...]
    delta: float
    region: Optional[Rectangle] = None
    algorithm: Optional[str] = None
    k: int = 1
    policy: Optional[QueryPolicy] = None

    @staticmethod
    def create(
        keywords: Iterable[str],
        delta: float,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
        k: int = 1,
        policy: Optional[QueryPolicy] = None,
    ) -> "QueryRequest":
        """Build a request from any keyword iterable."""
        return QueryRequest(
            keywords=tuple(keywords),
            delta=float(delta),
            region=region,
            algorithm=algorithm,
            k=int(k),
            policy=policy,
        )


class QueryService:
    """High-throughput batched front end over one engine.

    Args:
        engine: The engine whose indexes (via its
            :class:`~repro.service.bundle.IndexBundle`) and solver registry serve
            the queries — or the path of a persisted index artifact (written by
            ``python -m repro build``), from which an engine is loaded via
            :meth:`LCMSREngine.from_artifact <repro.engine.LCMSREngine.from_artifact>`.
        max_workers: Worker-pool size for the batch API; defaults to
            ``min(8, cpu_count)``.
        result_cache_size: Capacity of the result LRU (0 disables result caching).
        instance_cache_size: Capacity of the instance LRU (0 disables instance
            reuse).

    Raises:
        QueryError: If ``max_workers`` is not positive.
        ArtifactError: If an artifact path was given and cannot be loaded.
    """

    def __init__(
        self,
        engine: Union["LCMSREngine", str, Path],
        max_workers: Optional[int] = None,
        result_cache_size: int = 512,
        instance_cache_size: int = 128,
    ) -> None:
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 2)
        if max_workers < 1:
            raise QueryError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(engine, (str, Path)):
            from repro.engine import LCMSREngine  # deferred: engine imports service

            engine = LCMSREngine.from_artifact(engine)
        self._engine = engine
        self._max_workers = max_workers
        self._result_cache = LRUCache(result_cache_size)
        self._instance_cache = LRUCache(instance_cache_size)
        self._collector = StatsCollector()
        self._pool_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._generation_lock = threading.Lock()
        self._seen_generation = engine.bundle_generation

    # ------------------------------------------------------------------ lifecycle
    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool; subsequent submissions raise ``QueryError``."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        # Shut down outside the lock: a still-running task that calls submit()
        # blocks on the lock, and shutdown(wait=True) waits for that task —
        # holding the lock here would deadlock both.
        if pool is not None:
            pool.shutdown(wait=True)

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise QueryError("the query service has been closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="lcmsr-service",
                )
            return self._pool

    # ------------------------------------------------------------------ accessors
    @property
    def engine(self) -> "LCMSREngine":
        """The engine this service fronts."""
        return self._engine

    @property
    def max_workers(self) -> int:
        """Size of the worker pool."""
        return self._max_workers

    def stats(self) -> ServiceStats:
        """Return an immutable snapshot of the per-query timings and cache counters."""
        return self._collector.snapshot(
            result_cache=self._result_cache.stats(),
            instance_cache=self._instance_cache.stats(),
        )

    def reset_stats(self) -> None:
        """Drop the per-query timing records (cache contents are kept)."""
        self._collector.reset()

    def clear_caches(self) -> None:
        """Empty both caches (timing records are kept)."""
        self._result_cache.clear()
        self._instance_cache.clear()

    def _invalidate_on_generation_change(self) -> None:
        """Drop every cache entry once a bundle (generation) swap is observed.

        Correctness does not depend on this — every key embeds the engine's
        ``bundle_cache_key``, so an entry from generation N can never be
        *served* for a generation-N+1 query — but without the sweep the
        retired entries would linger until LRU pressure evicted them. The
        double-checked lock keeps the hot path to one integer comparison.
        """
        generation = self._engine.bundle_generation
        if generation == self._seen_generation:
            return
        with self._generation_lock:
            if generation == self._seen_generation:
                return
            self._result_cache.clear()
            self._instance_cache.clear()
            self._seen_generation = generation

    # ------------------------------------------------------------------ execution
    def execute(self, request: QueryRequest) -> ServiceResult:
        """Serve one request synchronously on the calling thread.

        Args:
            request: The query to answer.

        Returns:
            A :class:`~repro.core.result.RegionResult` for ``k == 1`` requests, a
            :class:`~repro.core.result.TopKResult` otherwise — identical to what
            :meth:`LCMSREngine.query` / :meth:`LCMSREngine.query_topk` would return
            for the same arguments.

        Raises:
            QueryError: On a malformed request (empty keywords, negative ``∆``,
                unknown algorithm).
        """
        result, _ = self.execute_timed(request)
        return result

    def execute_timed(self, request: QueryRequest) -> Tuple[ServiceResult, QueryTiming]:
        """Serve one request and also return its recorded timing.

        The timing is the same :class:`~repro.service.stats.QueryTiming` that
        :meth:`execute` records in this service's collector — process-pool
        workers (:mod:`repro.service.sharding`) use this to ship both the answer
        and the accounting back to the gateway in one picklable pair.
        """
        start = time.perf_counter()
        self._invalidate_on_generation_change()
        algorithm = (request.algorithm or self._engine.default_algorithm).lower()
        # The query normalises its keywords at construction (strip / lower /
        # de-duplicate) and rejects empty keyword sets; the cache keys are then
        # built from the already-normalised tuple, so key construction only
        # sorts — nothing on the serving path re-normalises.
        query = LCMSRQuery.create(
            request.keywords, delta=request.delta, region=request.region, k=request.k
        )
        # The generations (solver and bundle) must be read BEFORE the solver /
        # bundle state is used: if a concurrent configure_solver or
        # swap_bundle lands in between, the old answer gets stored under the
        # old generation (harmless, never served again) instead of the new one
        # (permanently stale).
        policy = request.policy if request.policy is not None else QueryPolicy.exact()
        key = ResultKey.create(
            keywords=query.keywords,
            delta=request.delta,
            region=request.region,
            k=request.k,
            algorithm=algorithm,
            scoring_mode=self._engine.scoring_mode,
            solver_generation=self._engine.solver_generation,
            bundle_key=self._engine.bundle_cache_key,
            policy=policy.cache_token(),
        )
        solver = self._engine.solver(request.algorithm)

        cached = self._result_cache.get(key)
        if cached is not None:
            # A result hit never probes the instance cache, so it is not an
            # instance hit.
            timing = QueryTiming(
                key=key,
                algorithm=algorithm,
                result_cache_hit=True,
                instance_cache_hit=False,
                build_seconds=0.0,
                solve_seconds=0.0,
                total_seconds=time.perf_counter() - start,
            )
            self._collector.record(timing)
            return cached, timing

        instance, instance_hit, build_seconds = self._instance_for(
            key.instance_key, query, policy
        )

        # The deadline budget is attached here, at solve time, so cached
        # instances never carry a stale clock; sampled CI annotation reads the
        # (budget-free) instance's sampling record afterwards.
        solve_instance = self._engine._apply_policy(instance, policy)
        if request.k > 1:
            result: ServiceResult = solver.solve_topk(solve_instance, request.k)
            solve_seconds = result.runtime_seconds
        else:
            result = solver.solve(solve_instance)
            solve_seconds = result.runtime_seconds
        result = self._engine._annotate_sampled(result, instance, policy)

        self._result_cache.put(key, result)
        # Close the insert-after-sweep race: an in-flight query that started
        # before a generation swap stores its (never-servable) old-generation
        # entry only to drop it here — so once every in-flight query has
        # drained, no entry keyed to a retired generation survives.
        if key.bundle_key != self._engine.bundle_cache_key:
            self._result_cache.clear()
            self._instance_cache.clear()
        timing = QueryTiming(
            key=key,
            algorithm=algorithm,
            result_cache_hit=False,
            instance_cache_hit=instance_hit,
            build_seconds=build_seconds,
            solve_seconds=solve_seconds,
            total_seconds=time.perf_counter() - start,
        )
        self._collector.record(timing)
        return result, timing

    def _instance_for(
        self, key: InstanceKey, query: LCMSRQuery, policy: Optional[QueryPolicy] = None
    ) -> Tuple[ProblemInstance, bool, float]:
        """Fetch or build the problem instance for a query.

        Returns:
            ``(instance, was_cache_hit, build_seconds)``. A cached entry is
            re-bound to the incoming query (``∆`` / ``k`` differ between queries
            that legitimately share a window graph and weights). Cache entries
            are :class:`~repro.core.dense.DenseInstance` substrates whenever the
            builder attached one (the hot path), full instances otherwise —
            except sampled builds, which are cached as full instances so the
            :class:`~repro.textindex.columnar.SampledWeights` record (variance
            for CI annotation) survives the round trip.
        """
        cached = self._instance_cache.get(key)
        if cached is not None:
            # Rebound instances carry the engine's pruning policy just like
            # freshly built ones — cache hits and misses must solve identically.
            if isinstance(cached, DenseInstance):
                return (
                    cached.to_problem_instance(query, pruning=self._engine.pruning),
                    True,
                    0.0,
                )
            rebound = ProblemInstance(
                graph=cached.graph,
                weights=cached.weights,
                query=query,
                build_seconds=0.0,
                pruning=self._engine.pruning,
                sampling=cached.sampling,
            )
            return rebound, True, 0.0
        # Window-less instances already share the engine's graph view (the
        # instance builder stopped copying the network), so caching them pins no
        # extra graph memory; windowed instances carry their own (compact) view.
        instance = self._engine.build_instance(query, policy=policy)
        if instance.sampling is not None:
            self._instance_cache.put(key, instance)
        else:
            self._instance_cache.put(
                key, instance.dense if instance.dense is not None else instance
            )
        return instance, False, instance.build_seconds

    # ------------------------------------------------------------------ batch API
    def submit(self, request: QueryRequest) -> "Future[ServiceResult]":
        """Enqueue one request on the worker pool and return its future.

        Raises:
            QueryError: If the service has been closed (including a concurrent
                ``close`` racing the submission).
        """
        try:
            return self._executor().submit(self.execute, request)
        except RuntimeError as exc:  # pool shut down between _executor() and submit
            raise QueryError("the query service has been closed") from exc

    def submit_many(
        self, requests: Sequence[QueryRequest]
    ) -> List["Future[ServiceResult]"]:
        """Enqueue a batch of requests; futures are returned in request order.

        Raises:
            QueryError: If the service has been closed.
        """
        executor = self._executor()
        try:
            return [executor.submit(self.execute, request) for request in requests]
        except RuntimeError as exc:
            raise QueryError("the query service has been closed") from exc

    def run_batch(self, requests: Sequence[QueryRequest]) -> List[ServiceResult]:
        """Execute a batch concurrently and return results in request order.

        Args:
            requests: The queries to answer.

        Returns:
            One result per request, positionally aligned with ``requests`` — the
            same answers a sequential loop over :meth:`LCMSREngine.query` would
            produce.

        Raises:
            QueryError: Re-raised from the first failing request, if any.
        """
        futures = self.submit_many(requests)
        return [future.result() for future in futures]
