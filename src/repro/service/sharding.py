"""Sharded multi-process serving: tile shards with halo edges over mmap artifacts.

The thread-pool :class:`~repro.service.query_service.QueryService` is capped by
the GIL: its workers interleave on one core whenever the solver is in Python.
This module scales the serving layer across *processes* instead, without giving
up the repo's byte-identity contract:

* :func:`build_shards` — the **spatial partitioner**. It splits a built
  :class:`~repro.service.bundle.IndexBundle` into ``K`` tile shards. Each shard
  is a complete, self-contained artifact directory (own ``network.npz`` /
  ``scoring.npz`` / ``index.pkl`` / ``manifest.json``, loadable with
  :meth:`IndexBundle.load <repro.service.bundle.IndexBundle.load>` and checksum
  verified like any artifact) covering its tile **expanded by a halo margin**.
  The halo-containment invariant: a feasible LCMSR region has total edge length
  ``≤ δ``, so it lies within the ``δ``-ball of any of its nodes — with
  ``halo_margin ≥ δ_max``, any query window contained in a shard's extent
  resolves on that shard alone, and any feasible region with a node inside a
  tile lies fully inside that tile's extent.
* :class:`ShardRouter` — maps a query window to the shard(s) that can answer
  it, using the PR 6 per-cell bound columns of the *base* artifact to skip
  shards whose share of the window carries zero reachable σ-mass.
* :class:`ShardedQueryService` — the scatter-gather gateway: a lazily created
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers open their
  shard bundle on first use (fork-safe lazy init — nothing heavyweight crosses
  the fork; requests, results and timings are plain picklable dataclasses),
  admission control via a bounded in-flight semaphore with explicit rejection,
  and :func:`merge_topk` for cross-shard top-k merging.

**Byte-identity routing contract.** A query is answered bit-identically to the
unsharded service exactly when it is dispatched to ONE artifact whose extent
contains its window — the heuristic solvers are not decomposable, so the router
never splits a single query's answer across shards. Windows contained in no
shard extent (wider than a tile plus its halo, or ``region=None`` with ``K>1``)
fall back to the base artifact, which every gateway keeps addressable. The
scatter-gather path (:meth:`ShardedQueryService.scatter_topk`) is the separate,
recall-oriented fan-out: it unions per-shard top-k answers; for the Exact
solver with ``halo_margin ≥ δ`` the merged optimum equals the global optimum
(the halo-containment invariant above).

Worker processes share the page cache of the read-only mmap artifacts, so ``N``
workers cost no array copies — the Polynesia-style split of read-optimized
replicas from the serving front end.
"""

from __future__ import annotations

import json
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.anytime import QueryPolicy
from repro.core.result import RegionResult, TopKResult
from repro.exceptions import ArtifactError, QueryError
from repro.network.compact import CompactNetwork
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import NodeObjectMap
from repro.service.persist import (
    MANIFEST_NAME,
    SCORING_NAME,
    VOCABULARY_NAME,
    PathLike,
    _mmap_npz,
    _write_bytes_atomic,
    dataset_fingerprint,
    read_manifest,
    save_bundle,
)
from repro.service.query_service import QueryRequest, QueryService, ServiceResult
from repro.service.stats import ServiceStats, StatsCollector
from repro.textindex.columnar import ColumnarScoringIndex

SHARDS_DIRNAME = "shards"
"""Subdirectory of the base artifact holding the shard sub-artifacts."""

SHARD_SET_NAME = "shards.json"
"""The shard-set manifest file inside the shards directory."""

DEFAULT_HALO_MARGIN = 2000.0
"""Default halo width in meters — the workload generators' default ``δ``."""

_RectTuple = Tuple[float, float, float, float]


def _rect_tuple(rect: Rectangle) -> _RectTuple:
    return (rect.min_x, rect.min_y, rect.max_x, rect.max_y)


def _rect(values: Sequence[float]) -> Rectangle:
    return Rectangle(*(float(v) for v in values))


def _contains_rect(outer: Rectangle, inner: Rectangle) -> bool:
    return (
        outer.min_x <= inner.min_x
        and outer.min_y <= inner.min_y
        and outer.max_x >= inner.max_x
        and outer.max_y >= inner.max_y
    )


def _intersection(a: Rectangle, b: Rectangle) -> Optional[Rectangle]:
    min_x, min_y = max(a.min_x, b.min_x), max(a.min_y, b.min_y)
    max_x, max_y = min(a.max_x, b.max_x), min(a.max_y, b.max_y)
    if min_x > max_x or min_y > max_y:
        return None
    return Rectangle(min_x, min_y, max_x, max_y)


# ---------------------------------------------------------------------- manifest
@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the shard-set manifest.

    Attributes:
        name: Directory name of the shard under ``<artifact>/shards/``.
        part: Shard index (row-major over the tile grid).
        tile: The shard's owned tile ``[min_x, min_y, max_x, max_y]``.
        extent: The tile expanded by the halo margin — the shard's actual
            spatial coverage; any window inside it resolves on this shard.
        fingerprint: :func:`~repro.service.persist.dataset_fingerprint` of the
            shard's own (sub-network, sub-corpus) content.
        covers_all: ``True`` when the extent contains the whole dataset bounding
            box (always true for ``K=1``) — such a shard can also serve
            whole-network (``region=None``) queries bit-identically.
    """

    name: str
    part: int
    tile: _RectTuple
    extent: _RectTuple
    fingerprint: str
    covers_all: bool


@dataclass(frozen=True)
class ShardSetManifest:
    """The machine-readable description of a complete shard set.

    Attributes:
        base_fingerprint: Dataset fingerprint of the base artifact the set was
            partitioned from; serving refuses a set whose base no longer
            matches (the staleness check).
        halo_margin: Halo width (m) every tile was expanded by. Queries with
            ``δ > halo_margin`` may fall back to the base artifact; queries
            with ``δ ≤ halo_margin`` whose window sits inside a tile always
            resolve on one shard.
        tiles: ``(kx, ky)`` tile-grid factorisation of the shard count.
        bbox: Dataset bounding box the tiles partition.
        shards: Per-shard entries, ordered by ``part``.
    """

    base_fingerprint: str
    halo_margin: float
    tiles: Tuple[int, int]
    bbox: _RectTuple
    shards: Tuple[ShardInfo, ...]

    def to_json(self) -> str:
        """Render as canonical (sorted-keys) JSON."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ShardSetManifest":
        """Parse a shard-set manifest; raises :class:`ArtifactError` when malformed."""
        try:
            raw = json.loads(text)
            shards = tuple(
                ShardInfo(
                    name=str(s["name"]),
                    part=int(s["part"]),
                    tile=tuple(float(v) for v in s["tile"]),
                    extent=tuple(float(v) for v in s["extent"]),
                    fingerprint=str(s["fingerprint"]),
                    covers_all=bool(s["covers_all"]),
                )
                for s in raw["shards"]
            )
            return cls(
                base_fingerprint=str(raw["base_fingerprint"]),
                halo_margin=float(raw["halo_margin"]),
                tiles=(int(raw["tiles"][0]), int(raw["tiles"][1])),
                bbox=tuple(float(v) for v in raw["bbox"]),
                shards=shards,
            )
        except (ValueError, KeyError, TypeError, IndexError) as exc:
            raise ArtifactError(f"malformed shard-set manifest: {exc}") from exc

    @property
    def num_shards(self) -> int:
        """Number of shards in the set."""
        return len(self.shards)


def _tile_grid(num_shards: int) -> Tuple[int, int]:
    """Factor ``K`` into the most square ``kx × ky`` grid (kx along x)."""
    best = (num_shards, 1)
    for ky in range(1, int(num_shards**0.5) + 1):
        if num_shards % ky == 0:
            best = (num_shards // ky, ky)
    return best


# ---------------------------------------------------------------------- partitioner
def build_shards(
    bundle,
    path: PathLike,
    num_shards: int,
    halo_margin: float = DEFAULT_HALO_MARGIN,
    base_fingerprint: Optional[str] = None,
    overwrite: bool = False,
    compression: Optional[Dict[str, object]] = None,
) -> ShardSetManifest:
    """Partition a built bundle into ``K`` tile shards under ``<path>/shards/``.

    The dataset bounding box is split into a row-major ``kx × ky`` tile grid
    (the most square factorisation of ``K``); each tile is expanded by
    ``halo_margin`` into the shard's *extent*, and a complete sub-artifact is
    written for the extent: the window view of the CSR network (order-preserving,
    so window extraction inside the extent is bit-identical to the full
    network), the extent subset of the columnar scoring index (which keeps the
    full vocabulary and the corpus-global IDF / language-model statistics — see
    :meth:`ColumnarScoringIndex.subset_for_extent
    <repro.textindex.columnar.ColumnarScoringIndex.subset_for_extent>`), and
    the derived corpus / mapping / grid structures for the extent's objects.

    Args:
        bundle: The built :class:`~repro.service.bundle.IndexBundle` of the base
            artifact (must carry ``compact`` and ``columnar``).
        path: The base artifact directory; shards land in ``<path>/shards/``.
        num_shards: ``K ≥ 1``.
        halo_margin: Halo width in meters; choose ``≥`` the largest query ``δ``
            the shards should resolve locally.
        base_fingerprint: Precomputed dataset fingerprint of the base bundle
            (computed here when omitted).
        overwrite: Replace an existing shard set.
        compression: Optional chunk-compression spec from
            :func:`repro.service.persist.compression_spec`; shards then
            inherit the base artifact's compressed column layout.

    Returns:
        The written :class:`ShardSetManifest`.

    Raises:
        ArtifactError: On invalid parameters, an existing shard set without
            ``overwrite``, or a tile whose extent contains no objects (use
            fewer shards or a larger halo).
    """
    from repro.index.grid import GridIndex
    from repro.service.bundle import IndexBundle
    from repro.textindex.relevance import RelevanceScorer

    if num_shards < 1:
        raise ArtifactError(f"num_shards must be >= 1, got {num_shards}")
    if halo_margin < 0.0:
        raise ArtifactError(f"halo_margin must be >= 0, got {halo_margin}")
    compact = bundle.compact
    if compact is None:
        compact = CompactNetwork.from_network(bundle.network)
    columnar = bundle.columnar
    if columnar is None:
        columnar = ColumnarScoringIndex.build(
            bundle.corpus, bundle.mapping, compact.coords, vsm=bundle.vsm
        )

    shards_dir = Path(path) / SHARDS_DIRNAME
    set_path = shards_dir / SHARD_SET_NAME
    if set_path.exists() and not overwrite:
        raise ArtifactError(
            f"shard set already exists at {shards_dir}; pass overwrite=True "
            f"(or --force on the CLI) to replace it"
        )
    shards_dir.mkdir(parents=True, exist_ok=True)

    if base_fingerprint is None:
        base_fingerprint = dataset_fingerprint(compact, bundle.corpus)
    min_x, min_y, max_x, max_y = compact.bounding_box()
    bbox = Rectangle(min_x, min_y, max_x, max_y)
    kx, ky = _tile_grid(num_shards)
    tile_w = bbox.width / kx or 1.0
    tile_h = bbox.height / ky or 1.0

    infos: List[ShardInfo] = []
    for part in range(num_shards):
        ix, iy = part % kx, part // kx
        tile = Rectangle(
            min_x + ix * tile_w,
            min_y + iy * tile_h,
            max_x if ix == kx - 1 else min_x + (ix + 1) * tile_w,
            max_y if iy == ky - 1 else min_y + (iy + 1) * tile_h,
        )
        extent = tile.expanded(halo_margin)
        name = f"shard-{part:02d}"

        shard_compact = compact.window_view(extent)
        sub_columnar = columnar.subset_for_extent(extent)
        # The columnar subset is the membership authority (it keeps objects
        # whose coordinates OR mapped node fall inside the extent); the corpus
        # must agree exactly or boundary-node σ values would drift.
        kept_ids = set(sub_columnar.object_ids.tolist())
        sub_corpus = ObjectCorpus(
            obj for obj in bundle.corpus if obj.object_id in kept_ids
        )
        if len(sub_corpus) == 0:
            raise ArtifactError(
                f"shard tile {part} of {num_shards} contains no objects; "
                f"use fewer shards (--shards) or a larger halo (--halo)"
            )
        # Derive the mapping from the columnar subset so the pickled index
        # structures agree exactly with the persisted arrays.
        node_to_objects: Dict[int, List[int]] = {}
        for pos in range(sub_columnar.num_nodes):
            rows = sub_columnar.object_rows_at_node(pos)
            if len(rows) == 0:
                continue
            node_id = int(sub_columnar.node_ids[pos])
            node_to_objects[node_id] = [
                int(sub_columnar.object_ids[row]) for row in rows
            ]
        object_to_node = {
            object_id: node_id
            for node_id, object_ids in node_to_objects.items()
            for object_id in object_ids
        }
        sub_mapping = NodeObjectMap(
            node_to_objects=node_to_objects, object_to_node=object_to_node
        )
        sub_grid = GridIndex(
            sub_corpus, resolution=bundle.grid_resolution, vsm=bundle.vsm
        )
        sub_scorer = RelevanceScorer(
            sub_corpus,
            sub_mapping,
            mode=bundle.scoring_mode,
            language_model_smoothing=sub_columnar.lm_smoothing,
            vsm=bundle.vsm,
            columnar=sub_columnar,
        )
        sub_bundle = IndexBundle(
            network=None,
            corpus=sub_corpus,
            mapping=sub_mapping,
            vsm=bundle.vsm,
            grid=sub_grid,
            scorer=sub_scorer,
            scoring_mode=bundle.scoring_mode,
            grid_resolution=bundle.grid_resolution,
            build_seconds={},
            compact=shard_compact,
            columnar=sub_columnar,
        )
        fingerprint = dataset_fingerprint(shard_compact, sub_corpus)
        save_bundle(
            sub_bundle,
            shards_dir / name,
            overwrite=overwrite,
            fingerprint=fingerprint,
            shard={
                "tile": list(_rect_tuple(tile)),
                "extent": list(_rect_tuple(extent)),
                "halo_margin": float(halo_margin),
                "part": part,
                "of": num_shards,
                "base_fingerprint": base_fingerprint,
            },
            compression=compression,
        )
        infos.append(
            ShardInfo(
                name=name,
                part=part,
                tile=_rect_tuple(tile),
                extent=_rect_tuple(extent),
                fingerprint=fingerprint,
                covers_all=_contains_rect(extent, bbox),
            )
        )

    manifest = ShardSetManifest(
        base_fingerprint=base_fingerprint,
        halo_margin=float(halo_margin),
        tiles=(kx, ky),
        bbox=_rect_tuple(bbox),
        shards=tuple(infos),
    )
    _write_bytes_atomic(set_path, manifest.to_json().encode("utf-8"))
    return manifest


def load_shard_set(path: PathLike) -> Optional[ShardSetManifest]:
    """Load and validate the shard set of the artifact at ``path``.

    Returns ``None`` when the artifact has no shard set (serving then runs
    entirely on the base artifact).

    Raises:
        ArtifactError: When the shard set exists but is stale or inconsistent:
            the base artifact's fingerprint no longer matches the one the
            shards were partitioned from, a shard directory is missing, or a
            shard manifest disagrees with the set (every message says how to
            rebuild: ``python -m repro build ... --shards K --force``).
    """
    directory = Path(path)
    set_path = directory / SHARDS_DIRNAME / SHARD_SET_NAME
    if not set_path.is_file():
        return None
    manifest = ShardSetManifest.from_json(set_path.read_text(encoding="utf-8"))
    base_manifest = read_manifest(directory)
    rebuild = (
        "rebuild the shard set with `python -m repro build ... "
        f"--shards {manifest.num_shards} --force`"
    )
    if base_manifest.fingerprint != manifest.base_fingerprint:
        raise ArtifactError(
            f"stale shard set at {directory / SHARDS_DIRNAME}: the base artifact's "
            f"fingerprint {base_manifest.fingerprint[:12]}… does not match the "
            f"fingerprint {manifest.base_fingerprint[:12]}… the shards were "
            f"partitioned from; {rebuild}"
        )
    for info in manifest.shards:
        shard_dir = directory / SHARDS_DIRNAME / info.name
        if not (shard_dir / MANIFEST_NAME).is_file():
            raise ArtifactError(
                f"shard {info.name} is missing from {directory / SHARDS_DIRNAME}; {rebuild}"
            )
        shard_manifest = read_manifest(shard_dir)
        block = shard_manifest.shard
        if block is None or str(block.get("base_fingerprint")) != manifest.base_fingerprint:
            raise ArtifactError(
                f"shard {info.name} at {shard_dir} was not partitioned from this "
                f"base artifact (base fingerprint mismatch); {rebuild}"
            )
        if shard_manifest.fingerprint != info.fingerprint:
            raise ArtifactError(
                f"shard {info.name} at {shard_dir} does not match the shard-set "
                f"manifest (content fingerprint mismatch); {rebuild}"
            )
    return manifest


# ---------------------------------------------------------------------- router
@dataclass(frozen=True)
class ShardRoute:
    """Where one query goes.

    Attributes:
        shard: The shard index to dispatch to; ``-1`` means the base artifact.
        candidates: Every shard whose extent contains the window (owner first);
            empty when the query must run on the base artifact.
        zero_mass: ``True`` when the base bound columns prove the window holds
            no reachable σ-mass (the answer is empty wherever it runs).
    """

    shard: int
    candidates: Tuple[int, ...]
    zero_mass: bool = False


class ShardRouter:
    """Map query windows to shards (byte-identity single-shard dispatch).

    Args:
        manifest: The validated shard set, or ``None`` (everything routes to
            the base artifact).
        bounds: Optional :class:`~repro.core.bounds.UpperBoundIndex` built over
            the *base* artifact's bound columns; used to skip shards with zero
            reachable σ-mass in scatter plans and to annotate routes.
    """

    def __init__(self, manifest: Optional[ShardSetManifest], bounds=None) -> None:
        self._manifest = manifest
        self._bounds = bounds
        self._extents: List[Rectangle] = (
            [_rect(s.extent) for s in manifest.shards] if manifest else []
        )
        self._tiles: List[Rectangle] = (
            [_rect(s.tile) for s in manifest.shards] if manifest else []
        )

    @property
    def manifest(self) -> Optional[ShardSetManifest]:
        """The shard set this router serves (``None`` = unsharded)."""
        return self._manifest

    def _window_mass(self, region: Rectangle) -> Optional[float]:
        if self._bounds is None:
            return None
        return float(self._bounds.window_mass_bound(region))

    def _owner(self, region: Rectangle) -> Optional[int]:
        cx, cy = region.center()
        for part, tile in enumerate(self._tiles):
            if tile.contains(cx, cy):
                return part
        return None

    def route(self, region: Optional[Rectangle]) -> ShardRoute:
        """Return the single-artifact dispatch decision for a query window.

        A window is dispatched to a shard only when that shard's extent fully
        contains it (the byte-identity contract); the owning shard — the tile
        holding the window's center — is preferred. ``region=None``
        (whole-network) queries go to a ``covers_all`` shard when one exists,
        else to the base artifact, as do windows no extent contains.
        """
        if self._manifest is None:
            return ShardRoute(shard=-1, candidates=())
        if region is None:
            for info in self._manifest.shards:
                if info.covers_all:
                    return ShardRoute(shard=info.part, candidates=(info.part,))
            return ShardRoute(shard=-1, candidates=())
        containing = [
            part
            for part, extent in enumerate(self._extents)
            if _contains_rect(extent, region)
        ]
        zero_mass = self._window_mass(region) == 0.0
        if not containing:
            return ShardRoute(shard=-1, candidates=(), zero_mass=zero_mass)
        owner = self._owner(region)
        if owner in containing:
            containing.remove(owner)
            containing.insert(0, owner)
        return ShardRoute(
            shard=containing[0], candidates=tuple(containing), zero_mass=zero_mass
        )

    def scatter_plan(self, region: Optional[Rectangle]) -> Tuple[int, ...]:
        """Return the shards a scatter-gather top-k should fan out to.

        Every shard whose *tile* intersects the window participates (tiles
        partition space, so together they see every candidate region), except
        shards whose share of the window — ``window ∩ extent`` — provably
        carries zero σ-mass under the base bound columns (Provenance-style data
        skipping: nothing with positive weight can come from there). With no
        shard set, or when every shard is skipped, the plan is ``(-1,)`` (run
        on the base artifact).
        """
        if self._manifest is None:
            return (-1,)
        if region is None:
            return tuple(range(len(self._tiles)))
        plan: List[int] = []
        for part, tile in enumerate(self._tiles):
            if not tile.intersects(region):
                continue
            share = _intersection(region, self._extents[part])
            if share is not None and self._window_mass(share) == 0.0:
                continue
            plan.append(part)
        return tuple(plan) if plan else (-1,)


# ---------------------------------------------------------------------- merge
def merge_topk(
    partials: Sequence[ServiceResult], k: int
) -> TopKResult:
    """Merge per-shard answers into one top-k, in ``solve_topk`` tie-break order.

    The merge contract matches the Exact solver's candidate ranking (the one
    solver whose top-k is a provable optimum): candidates rank by **descending
    weight, then descending length**; remaining ties keep the input order
    (shard order, then each shard's own rank order — the sort is stable).
    Duplicate regions (the same node and edge sets found by two shards whose
    halos overlap) are kept once, at their best rank. Empty partial answers are
    dropped; merging only empties yields an empty :class:`TopKResult`.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    candidates: List[RegionResult] = []
    algorithm = "merged"
    runtime = 0.0
    stats: Dict[str, float] = {"shards_merged": float(len(partials))}
    for partial in partials:
        if isinstance(partial, TopKResult):
            items: List[RegionResult] = list(partial.results)
            runtime += partial.runtime_seconds
        else:
            items = [] if partial.is_empty else [partial]
            runtime += partial.runtime_seconds
        if items:
            algorithm = items[0].algorithm
        for item in items:
            if not item.is_empty:
                candidates.append(item)
    seen = set()
    unique: List[RegionResult] = []
    for item in candidates:
        key = (item.region.nodes, item.region.edges)
        if key in seen:
            continue
        seen.add(key)
        unique.append(item)
    unique.sort(key=lambda item: (-item.weight, -item.length))
    return TopKResult(
        results=tuple(unique[:k]),
        algorithm=algorithm,
        runtime_seconds=runtime,
        stats=stats,
    )


# ---------------------------------------------------------------------- workers
@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to open its shard bundles (picklable).

    Attributes:
        base_path: The base artifact directory.
        shard_paths: Shard artifact directories, indexed by shard ``part``.
        pruning: The engine pruning policy every worker serves with.
        result_cache_size / instance_cache_size: Per-worker cache capacities.
        verify: Verify artifact checksums when a worker opens a bundle.
        preload_base: Open the base-artifact engine eagerly in the worker
            initializer (benchmarks use it to keep engine loads out of the
            timed window); shard engines always open lazily on first use.
    """

    base_path: str
    shard_paths: Tuple[str, ...]
    pruning: str = "auto"
    result_cache_size: int = 512
    instance_cache_size: int = 128
    verify: bool = True
    preload_base: bool = False


_WORKER_CONFIG: Optional[WorkerConfig] = None
_WORKER_SERVICES: Dict[int, QueryService] = {}


def _worker_init(config: WorkerConfig) -> None:
    """Process-pool initializer: record the config, open nothing else eagerly."""
    global _WORKER_CONFIG
    _WORKER_CONFIG = config
    _WORKER_SERVICES.clear()
    if config.preload_base:
        _worker_service(-1)


def _worker_service(shard_index: int) -> QueryService:
    """Lazily open (and cache) the worker's service for one shard (-1 = base)."""
    service = _WORKER_SERVICES.get(shard_index)
    if service is None:
        from repro.engine import LCMSREngine  # deferred: engine imports service

        config = _WORKER_CONFIG
        if config is None:  # pragma: no cover - initializer always ran
            raise QueryError("worker process was not initialised with a WorkerConfig")
        path = (
            config.base_path if shard_index < 0 else config.shard_paths[shard_index]
        )
        # with_overlay=False: the gateway already resolved the generation to
        # serve, and sharded workers serve that frozen world only — merging a
        # pending delta on some workers but not others would break the
        # byte-identity routing contract.
        engine = LCMSREngine.from_artifact(
            path, verify=config.verify, pruning=config.pruning, with_overlay=False
        )
        # max_workers=1 and direct execute(): the worker never spawns threads
        # of its own, keeping the process pool the only concurrency layer.
        service = QueryService(
            engine,
            max_workers=1,
            result_cache_size=config.result_cache_size,
            instance_cache_size=config.instance_cache_size,
        )
        _WORKER_SERVICES[shard_index] = service
    return service


def _worker_execute(shard_index: int, request: QueryRequest):
    """Serve one request on the worker's shard service; returns (result, timing)."""
    return _worker_service(shard_index).execute_timed(request)


# ---------------------------------------------------------------------- gateway
class ShardedQueryService:
    """Multi-process scatter-gather front end over a (possibly sharded) artifact.

    Args:
        artifact: The artifact root. A ``CURRENT`` generation pointer written
            by ``python -m repro compact`` is followed automatically, and a
            shard set under the served generation's ``shards/`` subdirectory
            is picked up and validated; without one, every query runs on the
            base artifact (the pure process-scaling mode the throughput
            benchmark measures). After a later compaction, call
            :meth:`refresh` to swap to the new generation without a restart.
            Workers always serve the resolved generation frozen — pending
            delta-log mutations are ignored here (single-process
            :class:`~repro.engine.LCMSREngine` serving merges them).
        num_workers: Worker-process count; defaults to ``min(4, cpu_count)``.
        max_in_flight: Admission-control bound on concurrently executing +
            queued queries; defaults to ``4 × num_workers``. :meth:`submit`
            rejects (raises :class:`QueryError`) when the bound is reached;
            :meth:`run_batch` blocks instead (backpressure).
        pruning: Engine pruning policy for every worker.
        result_cache_size / instance_cache_size: Per-worker cache capacities.
        verify: Verify artifact checksums when workers open bundles.
        preload_base: See :attr:`WorkerConfig.preload_base`.
        shed_threshold: Load-shedding trip point: when the number of
            in-flight queries is ``≥ shed_threshold`` at submission time, an
            exact-policy request is downgraded to ``degraded_policy`` (the
            overload keeps answering, just approximately). ``None`` (default)
            disables shedding. Requests that already carry an approximate
            policy are never rewritten.
        degraded_policy: The :class:`~repro.core.anytime.QueryPolicy` shed
            requests are downgraded to; required when ``shed_threshold`` is
            set. Shed counts are surfaced via :attr:`shed` (like
            :attr:`rejected`).

    Raises:
        ArtifactError: On a missing/stale base artifact or shard set.
        QueryError: On non-positive worker / in-flight bounds, or a
            ``shed_threshold`` without a ``degraded_policy``.
    """

    def __init__(
        self,
        artifact: PathLike,
        num_workers: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        pruning: str = "auto",
        result_cache_size: int = 512,
        instance_cache_size: int = 128,
        verify: bool = True,
        preload_base: bool = False,
        shed_threshold: Optional[int] = None,
        degraded_policy: Optional[QueryPolicy] = None,
    ) -> None:
        if num_workers is None:
            num_workers = min(4, os.cpu_count() or 2)
        if num_workers < 1:
            raise QueryError(f"num_workers must be >= 1, got {num_workers}")
        if max_in_flight is None:
            max_in_flight = 4 * num_workers
        if max_in_flight < 1:
            raise QueryError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if shed_threshold is not None:
            if shed_threshold < 1:
                raise QueryError(
                    f"shed_threshold must be >= 1, got {shed_threshold}"
                )
            if degraded_policy is None:
                raise QueryError(
                    "shed_threshold requires a degraded_policy to downgrade to"
                )
            if degraded_policy.is_exact:
                raise QueryError(
                    "degraded_policy must be approximate (anytime/sampled); "
                    "shedding to exact would be a no-op"
                )
        from repro.service.generations import resolve_generation  # deferred: cycle

        self._root = Path(artifact)
        self._path = resolve_generation(self._root)
        self._manifest = read_manifest(self._path)
        self._shard_set = load_shard_set(self._path)
        self._pruning = pruning
        self._result_cache_size = result_cache_size
        self._instance_cache_size = instance_cache_size
        self._verify = verify
        self._preload_base = preload_base
        self._config = self._build_config(self._path)
        self._num_workers = num_workers
        self._max_in_flight = max_in_flight
        self._admission = threading.Semaphore(max_in_flight)
        self._router: Optional[ShardRouter] = None
        self._router_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._collector = StatsCollector()
        self._rejected = 0
        self._closed = False
        self._shed_threshold = shed_threshold
        self._degraded_policy = degraded_policy
        self._inflight_lock = threading.Lock()
        self._in_flight = 0
        self._shed = 0

    # ------------------------------------------------------------------ lifecycle
    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker processes; later submissions raise ``QueryError``."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _build_config(self, path: Path) -> WorkerConfig:
        """Assemble the worker configuration for the generation at ``path``."""
        shard_paths = tuple(
            str(path / SHARDS_DIRNAME / info.name)
            for info in (self._shard_set.shards if self._shard_set else ())
        )
        return WorkerConfig(
            base_path=str(path),
            shard_paths=shard_paths,
            pruning=self._pruning,
            result_cache_size=self._result_cache_size,
            instance_cache_size=self._instance_cache_size,
            verify=self._verify,
            preload_base=self._preload_base,
        )

    def refresh(self) -> bool:
        """Re-resolve the artifact's ``CURRENT`` generation and swap to it.

        Call after a compaction published a new ``gen-NNNN/`` directory: the
        gateway re-reads the ``CURRENT`` pointer, reloads the manifest and the
        new generation's shard set, and replaces the worker pool so every
        worker reopens the swapped-in artifacts. Outstanding queries on the
        old pool finish against the old generation (the pool is drained, not
        aborted); queries submitted after ``refresh`` returns are served from
        the new one.

        Returns:
            ``True`` when the served generation changed, ``False`` when the
            ``CURRENT`` pointer still names the generation already being
            served (no-op).

        Raises:
            ArtifactError: If the new generation's manifest or shard set is
                missing or stale.
            QueryError: If the service has been closed.
        """
        from repro.service.generations import resolve_generation  # deferred: cycle

        new_path = resolve_generation(self._root)
        if new_path == self._path:
            return False
        # Validate the new generation before touching serving state so a bad
        # CURRENT pointer leaves the old generation in service.
        manifest = read_manifest(new_path)
        shard_set = load_shard_set(new_path)
        with self._pool_lock:
            if self._closed:
                raise QueryError("the sharded query service has been closed")
            pool, self._pool = self._pool, None
            self._path = new_path
            self._manifest = manifest
            self._shard_set = shard_set
            self._config = self._build_config(new_path)
        with self._router_lock:
            self._router = None
        if pool is not None:
            pool.shutdown(wait=True)
        return True

    def _executor(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise QueryError("the sharded query service has been closed")
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._num_workers,
                    initializer=_worker_init,
                    initargs=(self._config,),
                )
            return self._pool

    # ------------------------------------------------------------------ accessors
    @property
    def num_workers(self) -> int:
        """Worker-process count."""
        return self._num_workers

    @property
    def max_in_flight(self) -> int:
        """Admission-control bound."""
        return self._max_in_flight

    @property
    def shard_set(self) -> Optional[ShardSetManifest]:
        """The validated shard set (``None`` when serving the base artifact only)."""
        return self._shard_set

    @property
    def served_path(self) -> Path:
        """The artifact directory (generation) queries are currently served from."""
        return self._path

    @property
    def rejected(self) -> int:
        """Number of submissions rejected by admission control."""
        return self._rejected

    @property
    def shed(self) -> int:
        """Number of requests downgraded to the degraded policy under load."""
        return self._shed

    @property
    def in_flight(self) -> int:
        """Number of queries currently admitted and not yet completed."""
        return self._in_flight

    @property
    def router(self) -> ShardRouter:
        """The shard router (base bound columns attached lazily on first use)."""
        with self._router_lock:
            if self._router is None:
                self._router = ShardRouter(self._shard_set, bounds=self._load_bounds())
            return self._router

    def _load_bounds(self):
        """Open the base artifact's bound columns without unpickling the indexes."""
        from repro.core.bounds import UpperBoundIndex  # deferred: cycle guard

        try:
            arrays = _mmap_npz(self._path / SCORING_NAME)
            terms = json.loads(
                (self._path / VOCABULARY_NAME).read_text(encoding="utf-8")
            )
            columnar = ColumnarScoringIndex.from_arrays(
                terms, arrays, lm_smoothing=self._manifest.lm_smoothing
            )
            return UpperBoundIndex.from_columnar(columnar, self._manifest.scoring_mode)
        except Exception:
            # Routing bounds are an optimisation; serve without skipping rather
            # than failing the gateway.
            return None

    def stats(self) -> ServiceStats:
        """Gateway-side aggregate of every worker-reported query timing.

        The cache counters are the gateway-visible approximation derived from
        the timing flags (hits = per-worker cache hits the workers reported;
        sizes are not observable across processes and read 0).
        """
        from repro.service.cache import CacheStats

        snapshot = self._collector.snapshot(
            result_cache=CacheStats(hits=0, misses=0, evictions=0, size=0, max_size=0),
            instance_cache=CacheStats(hits=0, misses=0, evictions=0, size=0, max_size=0),
        )
        totals = snapshot.totals
        result_cache = CacheStats(
            hits=totals.result_hits,
            misses=totals.queries - totals.result_hits,
            evictions=0,
            size=0,
            max_size=self._config.result_cache_size,
        )
        instance_cache = CacheStats(
            hits=totals.instance_hits,
            misses=totals.queries - totals.result_hits - totals.instance_hits,
            evictions=0,
            size=0,
            max_size=self._config.instance_cache_size,
        )
        return ServiceStats(
            timings=snapshot.timings,
            result_cache=result_cache,
            instance_cache=instance_cache,
            totals=totals,
        )

    def reset_stats(self) -> None:
        """Drop the gateway's recorded timings and totals."""
        self._collector.reset()

    # ------------------------------------------------------------------ dispatch
    def _maybe_shed(self, request: QueryRequest) -> QueryRequest:
        """Downgrade an exact request to the degraded policy under load.

        The shedding rule reads the explicit in-flight counter *before* the
        admission acquire: once ``in_flight ≥ shed_threshold``, newly arriving
        exact requests are rewritten to the configured degraded policy (and
        counted in :attr:`shed`). Requests that already carry an approximate
        policy pass through untouched — the caller opted into a specific
        quality and the gateway must not change it.
        """
        if self._shed_threshold is None or self._degraded_policy is None:
            return request
        if request.policy is not None and not request.policy.is_exact:
            return request
        with self._inflight_lock:
            if self._in_flight < self._shed_threshold:
                return request
            self._shed += 1
        return replace(request, policy=self._degraded_policy)

    def _dispatch(self, request: QueryRequest, blocking: bool) -> "Future":
        request = self._maybe_shed(request)
        route = self.router.route(request.region)
        if not self._admission.acquire(blocking=blocking):
            with self._pool_lock:
                self._rejected += 1
            raise QueryError(
                f"admission queue full ({self._max_in_flight} queries in flight); "
                f"retry later or raise max_in_flight"
            )
        with self._inflight_lock:
            self._in_flight += 1
        try:
            inner = self._executor().submit(_worker_execute, route.shard, request)
        except BaseException:
            with self._inflight_lock:
                self._in_flight -= 1
            self._admission.release()
            raise
        inner.add_done_callback(self._on_done)
        return inner

    def _on_done(self, inner: "Future") -> None:
        with self._inflight_lock:
            self._in_flight -= 1
        self._admission.release()
        if inner.cancelled() or inner.exception() is not None:
            return
        _, timing = inner.result()
        self._collector.record(timing)

    @staticmethod
    def _unwrap(inner: "Future") -> "Future":
        outer: "Future[ServiceResult]" = Future()
        outer.set_running_or_notify_cancel()

        def _complete(fut: "Future") -> None:
            exc = fut.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(fut.result()[0])

        inner.add_done_callback(_complete)
        return outer

    def execute(self, request: QueryRequest) -> ServiceResult:
        """Serve one request synchronously (routed to one shard or the base).

        Bit-identical to :meth:`QueryService.execute
        <repro.service.query_service.QueryService.execute>` on the unsharded
        artifact — the router only ever picks an artifact whose extent contains
        the query window.
        """
        result, _ = self._dispatch(request, blocking=True).result()
        return result

    def submit(self, request: QueryRequest) -> "Future[ServiceResult]":
        """Enqueue one request; rejects instead of queueing past the bound.

        Raises:
            QueryError: When admission control is full (explicit rejection —
                the caller decides whether to retry, shed or block) or the
                service is closed.
        """
        return self._unwrap(self._dispatch(request, blocking=False))

    def run_batch(self, requests: Sequence[QueryRequest]) -> List[ServiceResult]:
        """Execute a batch across the worker processes; results in request order.

        Admission control applies backpressure here (blocking acquire), so a
        batch larger than ``max_in_flight`` streams through the bound instead
        of rejecting.
        """
        futures = [self._dispatch(request, blocking=True) for request in requests]
        return [future.result()[0] for future in futures]

    # ------------------------------------------------------------------ scatter-gather
    def scatter_topk(
        self,
        keywords: Iterable[str],
        delta: float,
        k: int,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
    ) -> TopKResult:
        """Fan a top-k query out to every shard that can contribute and merge.

        Each shard in the router's :meth:`~ShardRouter.scatter_plan` solves the
        query over its own content; the per-shard answers are merged by
        :func:`merge_topk` (descending weight, then descending length — the
        Exact solver's own tie-break order), deduplicating regions found by two
        overlapping halos. This is the recall-oriented cross-shard path: for
        heuristic solvers the union of per-shard answers may differ from the
        unsharded heuristic's answer; for the Exact solver with
        ``halo_margin ≥ δ`` the merged optimum is the global optimum.
        """
        request_keywords = tuple(keywords)
        plan = self.router.scatter_plan(region)
        futures = [
            self._dispatch_to(
                shard,
                QueryRequest.create(
                    request_keywords, delta=delta, region=region,
                    algorithm=algorithm, k=k,
                ),
            )
            for shard in plan
        ]
        partials = [future.result()[0] for future in futures]
        return merge_topk(partials, k)

    def _dispatch_to(self, shard_index: int, request: QueryRequest) -> "Future":
        self._admission.acquire()
        with self._inflight_lock:
            self._in_flight += 1
        try:
            inner = self._executor().submit(_worker_execute, shard_index, request)
        except BaseException:
            with self._inflight_lock:
                self._in_flight -= 1
            self._admission.release()
            raise
        inner.add_done_callback(self._on_done)
        return inner


__all__ = [
    "DEFAULT_HALO_MARGIN",
    "SHARDS_DIRNAME",
    "SHARD_SET_NAME",
    "ShardInfo",
    "ShardSetManifest",
    "ShardRoute",
    "ShardRouter",
    "ShardedQueryService",
    "WorkerConfig",
    "build_shards",
    "load_shard_set",
    "merge_topk",
]
