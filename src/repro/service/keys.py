"""Normalized cache keys for the serving layer.

Two queries that differ only in presentation — keyword order, duplicate keywords,
surrounding whitespace, letter case, or an equal-but-distinct ``Rectangle`` object —
must hit the same cache entries. This module owns that normalization so the result
cache and the instance cache agree on what "the same query" means:

* :class:`ResultKey` identifies a full query execution — everything that can change
  the answer: keywords, ``∆``, the window, ``k``, the resolved algorithm name and the
  engine's scoring mode.
* :class:`InstanceKey` identifies a built :class:`~repro.core.instance.ProblemInstance`
  — only the inputs the index probe depends on (keywords, window, scoring mode).
  ``∆``, ``k`` and the algorithm deliberately do not appear: the windowed graph and
  the node weights are identical across them, which is exactly why the instance cache
  can serve a ``∆``-sweep from one build.

Keywords are sorted in keys (queries are sets in the paper, Definition 3) while the
executed :class:`~repro.core.query.LCMSRQuery` preserves the caller's order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.network.subgraph import Rectangle
from repro.textindex.relevance import ScoringMode
from repro.textindex.tokenizer import normalize_keyword_set

RegionTupleKey = Tuple[float, float, float, float]


def normalize_keywords(keywords: Iterable[str]) -> Tuple[str, ...]:
    """Lower-case, strip, de-duplicate and sort a keyword iterable.

    On the serving path the input is already normalised — the keywords come
    from an :class:`~repro.core.query.LCMSRQuery`, which normalises at
    construction — so this reduces to the canonical sort; the full
    normalisation is kept for raw callers building keys directly.

    Args:
        keywords: Keywords, normalised or raw.

    Returns:
        The canonical (sorted) keyword tuple used in cache keys.
    """
    return tuple(sorted(normalize_keyword_set(keywords)))


def region_key(region: Optional[Rectangle]) -> Optional[RegionTupleKey]:
    """Collapse a query window to a hashable value (``None`` for "whole network")."""
    if region is None:
        return None
    return (region.min_x, region.min_y, region.max_x, region.max_y)


@dataclass(frozen=True)
class InstanceKey:
    """Cache key for a built problem instance (window graph + node weights).

    Attributes:
        keywords: Canonical keyword tuple (sorted, deduplicated, lower-cased).
        region: The window as a coordinate tuple, or ``None`` for the whole network.
        scoring_mode: The scoring mode the weights were computed under.
        bundle_key: The engine's
            :attr:`~repro.engine.LCMSREngine.bundle_cache_key` — dataset
            fingerprint + bundle generation + overlay version — so instances
            built over different artifacts, across a generation swap, or under
            different pending mutations never collide. Defaults to ``""`` for
            direct constructions outside the serving path.
        policy: The *instance-affecting* policy token. ``"exact"`` (the
            default, so pre-existing keys keep their identity) covers both the
            exact and the anytime policies — an anytime query solves the same
            built instance, the deadline budget is attached at solve time —
            while ``sampled`` policies carry their full
            :meth:`~repro.core.anytime.QueryPolicy.cache_token` because their
            node weights are estimates and must never be served to (or from)
            an exact build.
    """

    keywords: Tuple[str, ...]
    region: Optional[RegionTupleKey]
    scoring_mode: str
    bundle_key: str = ""
    policy: str = "exact"

    @staticmethod
    def create(
        keywords: Iterable[str],
        region: Optional[Rectangle],
        scoring_mode: ScoringMode,
        bundle_key: str = "",
        policy: str = "exact",
    ) -> "InstanceKey":
        """Build the canonical instance key for a query's index probe."""
        return InstanceKey(
            keywords=normalize_keywords(keywords),
            region=region_key(region),
            scoring_mode=scoring_mode.value,
            bundle_key=bundle_key,
            policy=policy,
        )


@dataclass(frozen=True)
class ResultKey:
    """Cache key for a complete query execution.

    Attributes:
        keywords: Canonical keyword tuple.
        delta: The length constraint ``Q.∆``.
        region: The window as a coordinate tuple, or ``None``.
        k: Number of requested regions (1 for plain LCMSR).
        algorithm: The resolved (lower-case) solver name — the engine default is
            resolved *before* the key is built, so "default" and its explicit name
            share an entry.
        scoring_mode: The engine's scoring mode.
        solver_generation: The engine's
            :attr:`~repro.engine.LCMSREngine.solver_generation` at execution time,
            so ``configure_solver`` replacing a solver invalidates its cached
            results instead of silently serving the old solver's answers.
        bundle_key: The engine's
            :attr:`~repro.engine.LCMSREngine.bundle_cache_key` at execution
            time — dataset fingerprint + bundle generation + overlay version —
            so two services over different artifacts in one process can never
            cross-pollinate, and a generation swap (or a new pending mutation)
            retires every earlier result. Defaults to ``""`` for direct
            constructions outside the serving path.
        policy: The query's :meth:`~repro.core.anytime.QueryPolicy.cache_token`.
            ``"exact"`` is the default — the token exact policies render — so
            pre-existing exact entries keep their identity, while every
            approximate policy (``anytime:…`` / ``sampled:…``) gets a disjoint
            key: an exact lookup can never be answered from an approximate
            entry, and vice versa.
    """

    keywords: Tuple[str, ...]
    delta: float
    region: Optional[RegionTupleKey]
    k: int
    algorithm: str
    scoring_mode: str
    solver_generation: int = 0
    bundle_key: str = ""
    policy: str = "exact"

    @staticmethod
    def create(
        keywords: Iterable[str],
        delta: float,
        region: Optional[Rectangle],
        k: int,
        algorithm: str,
        scoring_mode: ScoringMode,
        solver_generation: int = 0,
        bundle_key: str = "",
        policy: str = "exact",
    ) -> "ResultKey":
        """Build the canonical result key for one query execution."""
        return ResultKey(
            keywords=normalize_keywords(keywords),
            delta=float(delta),
            region=region_key(region),
            k=int(k),
            algorithm=algorithm.lower(),
            scoring_mode=scoring_mode.value,
            solver_generation=int(solver_generation),
            bundle_key=bundle_key,
            policy=policy,
        )

    @property
    def instance_key(self) -> InstanceKey:
        """The instance-cache key this result's execution probes.

        Anytime result keys map to the *exact* instance key: a budgeted query
        solves the same built instance (the deadline is attached at solve
        time), so exact and anytime queries legitimately share one build.
        Sampled keys keep their token — estimated weights get their own entry.
        """
        return InstanceKey(
            keywords=self.keywords,
            region=self.region,
            scoring_mode=self.scoring_mode,
            bundle_key=self.bundle_key,
            policy=self.policy if self.policy.startswith("sampled") else "exact",
        )
