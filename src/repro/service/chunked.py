"""Chunk-compressed column storage for format-version-5 artifacts.

The Parquet lesson at continental scale: a columnar file fits an order of
magnitude more rows on the same disk when each column is split into fixed-size
chunks and every chunk is compressed independently — readers then decode only
the chunks a query touches instead of inflating whole columns. This module is
that layout for the ``.npz`` payload files of :mod:`repro.service.persist`:

* :func:`encode_chunk` / :func:`decode_chunk` — one chunk's raw array bytes
  through a per-chunk filter and a stdlib codec (``zlib`` or ``lzma``; no
  third-party dependencies). Two filters are chosen adaptively per chunk and
  recorded in a one-byte mode tag inside the compressed body: a byte-shuffle
  (grouping the k-th byte of every element together, which turns
  slowly-varying numeric columns into long near-constant runs the entropy
  coder can exploit), and a value dictionary (unique bit patterns + small
  integer indices) for low-cardinality columns — scoring weights like
  ``wto = tf/‖o‖`` take only dozens of distinct float64 values per chunk, so
  dictionary chunks compress an order of magnitude better than shuffled ones.
  Every chunk records the CRC-32 of its *decoded* bytes, so a flipped bit
  inside a compressed payload is detected at decode time even when the
  per-file SHA-256 verification was skipped (``load_bundle(verify=False)``).
* :class:`ChunkedColumn` — a lazy, read-only, array-like view over one
  compressed column inside a zip container. Chunks are decoded on demand and
  kept in a small per-column LRU cache (repeated window gathers over the same
  postings ranges amortise to cache hits); whole-array consumers (numpy ufuncs,
  boolean masks) trigger a one-time full materialisation that is cached for the
  life of the column. Decoded bytes are bit-identical to the uncompressed
  build, so every kernel downstream — scoring, pruning, solvers — returns
  byte-identical results on compressed and raw artifacts.

Determinism: both codecs are deterministic for a fixed level, the shuffle
filter is a pure permutation, the dictionary filter is built by ``np.unique``
(deterministic sort order over bit patterns), and chunk boundaries depend only
on the element count — two same-seed builds therefore still produce
byte-identical compressed artifacts (the PR 3 contract).
"""

from __future__ import annotations

import lzma
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ArtifactError

CODECS: Tuple[str, ...] = ("zlib", "lzma")
"""Supported chunk codecs (both from the standard library)."""

DEFAULT_CODEC = "zlib"
"""Codec used when compression is requested without an explicit choice."""

DEFAULT_LEVELS: Dict[str, int] = {"zlib": 6, "lzma": 1}
"""Default effort per codec: zlib-6 is the ratio/speed sweet spot for the
numeric columns; lzma preset 1 already beats zlib on the pickle payload while
staying fast enough for million-object builds on one core."""

DEFAULT_CHUNK_ELEMS = 1 << 16
"""Elements per chunk (64 Ki): 512 KiB per float64 chunk — large enough for
the codec to find structure, small enough that a point lookup never inflates
more than half a megabyte."""

DEFAULT_CACHE_CHUNKS = 32
"""Per-column LRU capacity, in chunks (≈16 MiB of float64 at the default
chunk size) — covers the hot postings ranges of a keyword workload."""


def _shuffle(raw: bytes, itemsize: int) -> bytes:
    """Byte-shuffle filter: group byte k of every element together."""
    if itemsize <= 1 or not raw:
        return raw
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, itemsize).T.tobytes()


def _unshuffle(shuffled: bytes, itemsize: int) -> bytes:
    if itemsize <= 1 or not shuffled:
        return shuffled
    return np.frombuffer(shuffled, dtype=np.uint8).reshape(itemsize, -1).T.tobytes()


# One-byte filter tag leading every decompressed chunk body.
_MODE_RAW = 0        # body is the raw array bytes
_MODE_SHUFFLE = 1    # body is byte-shuffled raw bytes
_MODE_DICT8 = 2      # body is [uint32 n][n unique elements][uint8 indices]
_MODE_DICT16 = 3     # body is [uint32 n][n unique elements][shuffled uint16 indices]

_DICT_VIEWS = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _dict_encode(raw: bytes, itemsize: int) -> "bytes | None":
    """Value-dictionary filter: unique bit patterns + small integer indices.

    Returns ``None`` when the chunk has too many distinct values (or an
    unsupported element width) for the dictionary to pay off. Uniquing runs on
    unsigned-integer views of the element bit patterns, so float columns —
    including NaN payloads — round-trip bit-exactly.
    """
    view_dtype = _DICT_VIEWS.get(itemsize)
    if view_dtype is None or len(raw) < 2 * itemsize:
        return None
    elements = np.frombuffer(raw, dtype=view_dtype)
    unique, inverse = np.unique(elements, return_inverse=True)
    if len(unique) > 0xFFFF:
        return None
    if len(unique) > 0xFF:
        mode, indices = _MODE_DICT16, inverse.astype("<u2")
        index_bytes = _shuffle(indices.tobytes(), 2)
    else:
        mode, indices = _MODE_DICT8, inverse.astype(np.uint8)
        index_bytes = indices.tobytes()
    encoded = (
        bytes([mode])
        + np.array(len(unique), dtype="<u4").tobytes()
        + unique.tobytes()
        + index_bytes
    )
    if len(encoded) >= len(raw):
        return None
    return encoded


def encode_chunk(
    raw: bytes, itemsize: int, codec: str, level: int, shuffle: bool
) -> Tuple[bytes, int]:
    """Compress one chunk's raw array bytes.

    With ``shuffle`` enabled the chunk goes through the better of the two
    filters for its content — the value dictionary when the chunk is
    low-cardinality, the byte-shuffle otherwise; the chosen filter is recorded
    in the body's leading mode byte so :func:`decode_chunk` self-describes.

    Returns:
        ``(payload, crc32)`` — the compressed payload and the CRC-32 of the
        *raw* (pre-filter) bytes, which :func:`decode_chunk` re-checks.
    """
    if codec not in CODECS:
        raise ArtifactError(f"unknown chunk codec {codec!r} (supported: {CODECS})")
    crc = zlib.crc32(raw)
    body = None
    if shuffle:
        body = _dict_encode(raw, itemsize)
        if body is None:
            body = bytes([_MODE_SHUFFLE]) + _shuffle(raw, itemsize)
    else:
        body = bytes([_MODE_RAW]) + raw
    if codec == "zlib":
        payload = zlib.compress(body, level)
    else:
        payload = lzma.compress(body, preset=level)
    return payload, crc


def _dict_decode(body: bytes, itemsize: int, mode: int, context: str) -> bytes:
    view_dtype = _DICT_VIEWS.get(itemsize)
    if view_dtype is None or len(body) < 4:
        raise ArtifactError(f"corrupt dictionary chunk in {context}")
    count = int(np.frombuffer(body[:4], dtype="<u4")[0])
    table_end = 4 + count * itemsize
    unique = np.frombuffer(body[4:table_end], dtype=view_dtype)
    if len(unique) != count:
        raise ArtifactError(f"corrupt dictionary chunk in {context}")
    index_bytes = body[table_end:]
    if mode == _MODE_DICT16:
        index_bytes = _unshuffle(index_bytes, 2)
        indices = np.frombuffer(index_bytes, dtype="<u2")
    else:
        indices = np.frombuffer(index_bytes, dtype=np.uint8)
    if len(indices) and indices.max(initial=0) >= count:
        raise ArtifactError(f"corrupt dictionary chunk in {context}")
    return unique[indices].tobytes()


def decode_chunk(
    payload: bytes,
    itemsize: int,
    codec: str,
    shuffle: bool,
    expected_crc: int,
    context: str,
) -> bytes:
    """Decompress one chunk, undo its filter, and verify its CRC-32.

    The ``shuffle`` flag is advisory (it records the build-time policy); the
    decode path dispatches on the body's own mode byte.

    Raises:
        ArtifactError: If the payload is not a valid stream for ``codec``, the
            filter body is malformed, or the decoded bytes do not hash to
            ``expected_crc`` (chunk-level corruption that per-file checksum
            verification may have skipped).
    """
    try:
        if codec == "zlib":
            body = zlib.decompress(payload)
        elif codec == "lzma":
            body = lzma.decompress(payload)
        else:
            raise ArtifactError(f"unknown chunk codec {codec!r} in {context}")
    except (zlib.error, lzma.LZMAError) as exc:
        raise ArtifactError(f"corrupt compressed chunk in {context}: {exc}") from exc
    if not body:
        raise ArtifactError(f"corrupt compressed chunk in {context}: empty body")
    mode, body = body[0], body[1:]
    if mode == _MODE_RAW:
        raw = body
    elif mode == _MODE_SHUFFLE:
        raw = _unshuffle(body, itemsize)
    elif mode in (_MODE_DICT8, _MODE_DICT16):
        raw = _dict_decode(body, itemsize, mode, context)
    else:
        raise ArtifactError(f"unknown chunk filter mode {mode} in {context}")
    actual = zlib.crc32(raw)
    if actual != expected_crc:
        raise ArtifactError(
            f"chunk checksum mismatch in {context}: stored crc32 "
            f"{expected_crc:#010x}, decoded bytes hash to {actual:#010x} "
            f"(artifact corrupted or tampered with)"
        )
    return raw


class CompressingWriter:
    """File-like sink that compresses everything written through it.

    Lets ``pickle.dump`` stream straight into a compressed file: the pickler's
    writes pass through an incremental codec into the underlying handle, so the
    full pickle byte string is never materialised in memory (the old
    ``pickle.dumps`` path held a second full copy of the index during save).
    Also used with ``codec=None`` as a plain counting pass-through, so every
    save path reports how many raw bytes it serialised.
    """

    def __init__(self, handle, codec: "str | None", level: int = 0) -> None:
        self._handle = handle
        self.raw_bytes = 0
        if codec is None:
            self._compressor = None
        elif codec == "zlib":
            self._compressor = zlib.compressobj(level)
        elif codec == "lzma":
            self._compressor = lzma.LZMACompressor(preset=level)
        else:
            raise ArtifactError(f"unknown codec {codec!r} (supported: {CODECS})")

    def write(self, data) -> int:
        view = memoryview(data)
        self.raw_bytes += view.nbytes
        if self._compressor is None:
            self._handle.write(view)
        else:
            self._handle.write(self._compressor.compress(view))
        return view.nbytes

    def finish(self) -> None:
        """Flush the codec's trailing block (no-op for the pass-through)."""
        if self._compressor is not None:
            self._handle.write(self._compressor.flush())


def decompress_bytes(data: bytes, codec: str, context: str) -> bytes:
    """Decompress a whole-file payload written through :class:`CompressingWriter`."""
    try:
        if codec == "zlib":
            return zlib.decompress(data)
        if codec == "lzma":
            return lzma.decompress(data)
    except (zlib.error, lzma.LZMAError) as exc:
        raise ArtifactError(f"corrupt compressed payload in {context}: {exc}") from exc
    raise ArtifactError(f"unknown codec {codec!r} in {context}")


def _rebuild_plain(array: np.ndarray) -> np.ndarray:
    """Pickle helper: a :class:`ChunkedColumn` unpickles as a plain ndarray."""
    array.flags.writeable = False
    return array


class ChunkedColumn:
    """Read-only, lazily-decoded view of one chunk-compressed column.

    Behaves like a 1-D numpy array for every access pattern the scoring and
    pruning kernels use: ``len`` / ``shape`` / ``dtype``, integer and
    contiguous-slice indexing (decoding only the overlapping chunks through the
    LRU cache), fancy/boolean indexing and ufunc participation (via a cached
    full materialisation), and arithmetic/comparison operators. Pickling
    materialises to a plain ndarray, so pickled consumers (worker processes,
    the service instance cache) are self-contained — mirroring how read-only
    memory maps materialise on pickle.

    Args:
        path: The zip container file the chunk payloads live in.
        name: Column name (for error messages).
        dtype: Element dtype.
        length: Total element count.
        chunk_elems: Elements per chunk (the last chunk may be shorter).
        codec: Chunk codec name (see :data:`CODECS`).
        shuffle: Whether the byte-shuffle filter was applied before encoding.
        chunks: Per-chunk ``(file_offset, payload_size, crc32)`` triples.
        cache_chunks: LRU capacity in chunks.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: str,
        dtype: np.dtype,
        length: int,
        chunk_elems: int,
        codec: str,
        shuffle: bool,
        chunks: Sequence[Tuple[int, int, int]],
        cache_chunks: int = DEFAULT_CACHE_CHUNKS,
    ) -> None:
        if chunk_elems < 1:
            raise ArtifactError(f"chunk_elems must be positive, got {chunk_elems}")
        expected = (length + chunk_elems - 1) // chunk_elems if length else 0
        if expected != len(chunks):
            raise ArtifactError(
                f"column {name!r}: {len(chunks)} chunks recorded but "
                f"{expected} expected for {length} elements"
            )
        self._path = Path(path)
        self._name = name
        self._dtype = np.dtype(dtype)
        self._length = int(length)
        self._chunk_elems = int(chunk_elems)
        self._codec = codec
        self._shuffle = bool(shuffle)
        self._chunks = [tuple(int(v) for v in chunk) for chunk in chunks]
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_chunks = max(1, int(cache_chunks))
        self._full: "np.ndarray | None" = None

    # ------------------------------------------------------------------ shape facts
    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def shape(self) -> Tuple[int, ...]:
        return (self._length,)

    @property
    def ndim(self) -> int:
        return 1

    @property
    def size(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        return self._length * self._dtype.itemsize

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def codec(self) -> str:
        return self._codec

    @property
    def flags(self):
        """Flags of the materialised array (always read-only)."""
        return self._materialize().flags

    def __len__(self) -> int:
        return self._length

    # ------------------------------------------------------------------ decoding
    def _decode(self, index: int) -> np.ndarray:
        offset, payload_size, crc = self._chunks[index]
        with open(self._path, "rb") as handle:
            handle.seek(offset)
            payload = handle.read(payload_size)
        if len(payload) != payload_size:
            raise ArtifactError(
                f"truncated chunk {index} of column {self._name!r} in {self._path.name}"
            )
        raw = decode_chunk(
            payload,
            self._dtype.itemsize,
            self._codec,
            self._shuffle,
            crc,
            context=f"{self._path.name}:{self._name}[chunk {index}]",
        )
        array = np.frombuffer(raw, dtype=self._dtype)
        array.flags.writeable = False
        return array

    def _chunk(self, index: int) -> np.ndarray:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        array = self._decode(index)
        self._cache[index] = array
        if len(self._cache) > self._cache_chunks:
            self._cache.popitem(last=False)
        return array

    def _materialize(self) -> np.ndarray:
        """Decode the whole column once and cache it (read-only)."""
        if self._full is None:
            if not self._chunks:
                full = np.empty(0, dtype=self._dtype)
            else:
                full = np.concatenate(
                    [self._chunk(k) for k in range(len(self._chunks))]
                )
            full.flags.writeable = False
            self._full = full
            self._cache.clear()  # the full copy supersedes the chunk cache
        return self._full

    # ------------------------------------------------------------------ array protocol
    def __array__(self, dtype=None, copy=None):
        full = self._materialize()
        if dtype is not None and np.dtype(dtype) != self._dtype:
            return full.astype(dtype)
        if copy:
            return full.copy()
        return full

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self._length
            if not 0 <= index < self._length:
                raise IndexError(
                    f"index {key} out of range for column of length {self._length}"
                )
            chunk = self._chunk(index // self._chunk_elems)
            return chunk[index % self._chunk_elems]
        if isinstance(key, slice) and key.step in (None, 1):
            start, stop, _ = key.indices(self._length)
            if start >= stop:
                return np.empty(0, dtype=self._dtype)
            if self._full is not None:
                return self._full[start:stop]
            first = start // self._chunk_elems
            last = (stop - 1) // self._chunk_elems
            if first == last:
                base = first * self._chunk_elems
                return self._chunk(first)[start - base : stop - base]
            parts: List[np.ndarray] = []
            for index in range(first, last + 1):
                base = index * self._chunk_elems
                chunk = self._chunk(index)
                parts.append(chunk[max(start - base, 0) : stop - base])
            out = np.concatenate(parts)
            out.flags.writeable = False
            return out
        # Fancy / boolean / strided indexing: decode once, then defer to numpy.
        return self._materialize()[key]

    def astype(self, dtype, **kwargs) -> np.ndarray:
        return self._materialize().astype(dtype, **kwargs)

    def tolist(self) -> list:
        return self._materialize().tolist()

    def copy(self) -> np.ndarray:
        return self._materialize().copy()

    def __iter__(self):
        return iter(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkedColumn({self._name!r}, dtype={self._dtype}, "
            f"len={self._length}, chunks={len(self._chunks)}, codec={self._codec})"
        )

    # ------------------------------------------------------------------ operators
    def __eq__(self, other):
        return self._materialize() == other

    def __ne__(self, other):
        return self._materialize() != other

    __hash__ = None  # array-likes with element-wise __eq__ are unhashable

    def __lt__(self, other):
        return self._materialize() < other

    def __le__(self, other):
        return self._materialize() <= other

    def __gt__(self, other):
        return self._materialize() > other

    def __ge__(self, other):
        return self._materialize() >= other

    def __add__(self, other):
        return self._materialize() + other

    def __radd__(self, other):
        return other + self._materialize()

    def __sub__(self, other):
        return self._materialize() - other

    def __rsub__(self, other):
        return other - self._materialize()

    def __mul__(self, other):
        return self._materialize() * other

    def __rmul__(self, other):
        return other * self._materialize()

    def __truediv__(self, other):
        return self._materialize() / other

    def __rtruediv__(self, other):
        return other / self._materialize()

    def __neg__(self):
        return -self._materialize()

    def __abs__(self):
        return abs(self._materialize())

    def __and__(self, other):
        return self._materialize() & other

    def __rand__(self, other):
        return other & self._materialize()

    def __or__(self, other):
        return self._materialize() | other

    def __ror__(self, other):
        return other | self._materialize()

    def __invert__(self):
        return ~self._materialize()

    # ------------------------------------------------------------------ pickling
    def __reduce__(self):
        # Materialise on pickle: consumers of a pickled column (worker
        # processes, the QueryService instance cache) get a self-contained
        # plain ndarray, exactly like pickled memory maps do.
        return (_rebuild_plain, (np.array(self._materialize()),))
