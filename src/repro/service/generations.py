"""Mutable world: delta overlay, generation store, and background compaction.

Every index in the stack is frozen at build time (CSR network, columnar scoring,
shard artifacts).  This module adds the write path on top of those frozen
artifacts, following the delta-main split of update-friendly stores (Polynesia's
update path vs. read-optimised replicas; the incremental-view-maintenance
framing of DBSP / Differential Dataflow):

* :class:`DeltaOverlay` — mutations (add / update / remove object, rating
  change) land in a small insertion-ordered dict.  Reads merge the base
  columnar σ_v sums with overlay contributions at query time: superseded base
  rows are masked out of the :meth:`~repro.textindex.columnar.WeightPipeline.node_sums`
  aggregation and overlay objects are scored by the scalar reference
  arithmetic, so a merged weight map is bit-identical to a cold rebuild of the
  mutated corpus whenever the collection statistics allow it (see below).
* a tiny *generation store* — compacted artifacts live under
  ``<artifact>/gen-NNNN/`` next to the base artifact, and a ``CURRENT`` pointer
  file names the generation being served.  ``CURRENT`` is written atomically
  (temp sibling + rename), and :func:`save_bundle` writes the manifest last, so
  a crash mid-compaction leaves either the old ``CURRENT`` or a manifest-less
  partial directory that loading detects and ignores.
* :class:`Compactor` — re-freezes base+delta into a new generation:
  materialise the mutated corpus in canonical order, rebuild a full
  :class:`~repro.service.bundle.IndexBundle` through the exact same build path
  a cold rebuild uses, persist it as ``gen-NNNN``, mirror the served
  generation's shard set, flip ``CURRENT``, and atomically swap the new bundle
  into the live engine (which bumps ``bundle_generation`` and invalidates the
  :class:`~repro.service.query_service.QueryService` caches).

IDF pinning policy
------------------
Overlay serving pins **all collection statistics to the base generation**: the
query vector's IDF weights (document frequencies and ``|D|``) and the language
model's collection term distribution come from the frozen base bundle and are
*not* updated by pending mutations.  This makes overlay results deterministic
and cheap (no incremental statistics maintenance), at the cost of overlay
results differing from a cold rebuild while statistics-changing mutations
(keyword adds/removes) are pending.  The guarantees, asserted by the
mutation-parity suite:

* **after compaction** results are byte-identical to a cold rebuild of the
  mutated dataset, for every scoring mode and every mutation — compaction goes
  through the cold build path, so this holds structurally;
* **before compaction** overlay-serving results are byte-identical to the
  post-compaction results whenever the pending mutations preserve collection
  statistics: always for ``rating_if_match`` (statistics-free), and for
  ``text_relevance`` / ``language_model`` under keyword-preserving mutations
  (rating changes, coordinate moves).

Merge ordering
--------------
The merged weight dict must reproduce the *cold* pipeline's dict order, which
is the node first-touch order over the mutated corpus.  The canonical mutated
corpus order is: surviving base objects in base order (skipping every id with a
pending overlay entry), then live overlay entries in first-mutation order.
:meth:`DeltaOverlay.node_weights` therefore emits nodes first-touched by a
surviving base row in ascending-row order, then overlay-only nodes in entry
order — and :meth:`DeltaOverlay.materialize_corpus` (what the compactor
rebuilds from) materialises exactly that corpus order.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ArtifactError, DatasetError, QueryError
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject
from repro.service.bundle import IndexBundle
from repro.service.persist import (
    MANIFEST_NAME,
    _write_bytes_atomic,
    compression_spec,
    read_manifest,
    save_bundle,
)
from repro.textindex.relevance import LanguageModelScorer, ScoringMode
from repro.textindex.vector_space import QueryVector, tf_weight

GENERATION_PREFIX = "gen-"
"""Directory-name prefix of compacted generations inside an artifact root."""

CURRENT_NAME = "CURRENT"
"""Pointer file naming the generation directory currently being served."""

DELTA_LOG_NAME = "delta.json"
"""Durable mutation log the CLI appends to (compaction clears it)."""

_GENERATION_PATTERN = re.compile(r"^gen-(\d{4,})$")


# ------------------------------------------------------------------ delta overlay


class DeltaOverlay:
    """Pending mutations over a frozen :class:`IndexBundle`, merged at read time.

    The overlay is a single insertion-ordered dict ``object_id → object-or-None``
    (``None`` is a tombstone).  A dict entry *supersedes* the base row of the
    same id: the base row is masked out of the columnar aggregation and, for
    live entries, the overlay object is re-scored by the scalar reference
    arithmetic against base-generation collection statistics (see the module
    docstring for the IDF pinning policy).

    Thread safety: mutations and :meth:`node_weights` serialise on one lock —
    the overlay is the small write-side structure, not a throughput path.
    A compaction :meth:`freeze`\\ s the overlay; frozen overlays reject further
    mutations so a background re-freeze can never lose writes silently.

    Args:
        bundle: The frozen base bundle.  Must carry the columnar weight
            pipeline (every built/loaded bundle does).

    Raises:
        QueryError: If the bundle has no columnar pipeline to merge against.
    """

    def __init__(self, bundle: IndexBundle) -> None:
        pipeline = bundle.weight_pipeline()
        if pipeline is None:
            raise QueryError(
                "a DeltaOverlay merges against the bundle's columnar weight pipeline, "
                "but this bundle does not carry one"
            )
        self._bundle = bundle
        self._pipeline = pipeline
        self._index = pipeline.index
        self._mode = bundle.scoring_mode
        # The scalar language-model scorer snapshots the *base* corpus'
        # collection statistics at construction — exactly the pinning policy.
        self._lm = (
            LanguageModelScorer(bundle.corpus, smoothing=self._index.lm_smoothing)
            if self._mode is ScoringMode.LANGUAGE_MODEL
            else None
        )
        self._entries: Dict[int, Optional[GeoTextualObject]] = {}
        self._nodes: Dict[int, int] = {}
        self._version = 0
        self._frozen = False
        self._lock = threading.RLock()
        self._superseded_cache: Optional[Tuple[int, np.ndarray]] = None
        self._order_cache: Optional[Tuple[int, Tuple[Tuple[int, int, float, float], ...]]] = None
        self._node_positions_cache: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------- introspection

    @property
    def bundle(self) -> IndexBundle:
        """The frozen base bundle the overlay merges against."""
        return self._bundle

    @property
    def version(self) -> int:
        """Monotonic mutation counter; folded into service cache keys."""
        return self._version

    @property
    def has_pending(self) -> bool:
        """``True`` when at least one mutation is pending."""
        return bool(self._entries)

    @property
    def pending_count(self) -> int:
        """Number of distinct object ids with a pending entry."""
        return len(self._entries)

    @property
    def frozen(self) -> bool:
        """``True`` while a compaction holds the overlay (mutations rejected)."""
        return self._frozen

    def is_live(self, object_id: int) -> bool:
        """Return ``True`` if ``object_id`` exists in the merged view."""
        with self._lock:
            if object_id in self._entries:
                return self._entries[object_id] is not None
            return self._base_has(object_id)

    def get(self, object_id: int) -> GeoTextualObject:
        """Return the merged view of ``object_id`` (overlay wins over base)."""
        with self._lock:
            if object_id in self._entries:
                entry = self._entries[object_id]
                if entry is None:
                    raise DatasetError(f"unknown object id {object_id}")
                return entry
            return self._bundle.corpus.get(object_id)

    def live_entries(self) -> List[Tuple[int, GeoTextualObject]]:
        """Pending non-tombstone entries in first-mutation order."""
        with self._lock:
            return [(oid, obj) for oid, obj in self._entries.items() if obj is not None]

    # ---------------------------------------------------------------- mutations

    def add_object(self, obj: GeoTextualObject) -> None:
        """Add a new object; its id must not be live in the merged view."""
        with self._lock:
            self._check_writable()
            if self.is_live(obj.object_id):
                raise DatasetError(
                    f"cannot add object {obj.object_id}: the id is live in the merged view"
                )
            self._put(obj)

    def update_object(self, obj: GeoTextualObject) -> None:
        """Replace a live object (same id) with a new version."""
        with self._lock:
            self._check_writable()
            if not self.is_live(obj.object_id):
                raise DatasetError(f"cannot update unknown object id {obj.object_id}")
            self._put(obj)

    def remove_object(self, object_id: int) -> None:
        """Remove a live object from the merged view (tombstone)."""
        with self._lock:
            self._check_writable()
            if not self.is_live(object_id):
                raise DatasetError(f"cannot remove unknown object id {object_id}")
            self._entries[object_id] = None
            self._nodes.pop(object_id, None)
            self._bump()

    def set_rating(self, object_id: int, rating: float) -> None:
        """Change a live object's rating (a keyword-preserving update)."""
        with self._lock:
            self._check_writable()
            current = self.get(object_id)
            self._put(replace(current, rating=float(rating)))

    def freeze(self) -> None:
        """Reject further mutations (taken by a compaction in flight)."""
        with self._lock:
            self._frozen = True

    def unfreeze(self) -> None:
        """Accept mutations again (a compaction failed and rolled back)."""
        with self._lock:
            self._frozen = False

    def _check_writable(self) -> None:
        if self._frozen:
            raise DatasetError(
                "the overlay is frozen while a compaction is in flight; "
                "retry the mutation after the compaction finishes"
            )

    def _put(self, obj: GeoTextualObject) -> None:
        # Re-mutating an id keeps its first-insertion position (dict semantics),
        # which is exactly the canonical corpus position the compactor uses.
        self._entries[obj.object_id] = obj
        self._nodes[obj.object_id] = self._nearest_node(obj.x, obj.y)
        self._bump()

    def _bump(self) -> None:
        self._version += 1

    def _base_has(self, object_id: int) -> bool:
        try:
            self._bundle.corpus.get(object_id)
        except DatasetError:
            return False
        return True

    # -------------------------------------------------------------- merge pieces

    def _nearest_node(self, x: float, y: float) -> int:
        """Nearest network node by squared euclidean distance, smallest-id ties.

        Must be decision-identical to the grid mapper
        (:class:`repro.objects.mapping._PointGrid`) the cold rebuild maps with:
        same squared-distance arithmetic, global minimum, smallest node id on
        ties.
        """
        compact = self._bundle.compact
        if compact is not None:
            ids, xs, ys = compact.csr_node_arrays()
            distances = (xs - x) ** 2 + (ys - y) ** 2
            best = distances.min()
            return int(ids[distances == best].min())
        from repro.objects.mapping import nearest_node  # deferred: avoid cycle at import

        return nearest_node(self._bundle.network, x, y)

    def _node_positions(self) -> Dict[int, int]:
        if self._node_positions_cache is None:
            ids = self._index.node_ids
            self._node_positions_cache = {int(ids[pos]): pos for pos in range(len(ids))}
        return self._node_positions_cache

    def _superseded_rows(self) -> np.ndarray:
        """Boolean mask over base object rows superseded by any pending entry."""
        cached = self._superseded_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        mask = np.zeros(self._index.num_objects, dtype=bool)
        for object_id in self._entries:
            row = self._index.object_row(object_id)
            if row is not None:
                mask[row] = True
        self._superseded_cache = (self._version, mask)
        return mask

    def _merged_node_order(self) -> Tuple[Tuple[int, int, float, float], ...]:
        """Node first-touch order over the canonical mutated corpus.

        Returns ``(node_id, base_position_or_-1, x, y)`` tuples: nodes first
        touched by a surviving base row (ascending row order), then nodes first
        touched by an overlay entry (entry order).  Query-independent, so it is
        cached per overlay version.
        """
        cached = self._order_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index = self._index
        positions = np.asarray(index.obj_node_pos, dtype=np.int64)
        surviving = (~self._superseded_rows()) & (positions >= 0)
        rows = np.flatnonzero(surviving)
        sentinel = np.iinfo(np.int64).max
        first_touch = np.full(index.num_nodes, sentinel, dtype=np.int64)
        np.minimum.at(first_touch, positions[rows], rows)
        touched = np.flatnonzero(first_touch < sentinel)
        ordered = touched[np.argsort(first_touch[touched], kind="stable")]
        node_ids = index.node_ids
        node_x = index.node_x
        node_y = index.node_y
        order = [
            (int(node_ids[pos]), int(pos), float(node_x[pos]), float(node_y[pos]))
            for pos in ordered
        ]
        seen = {entry[0] for entry in order}
        position_of = self._node_positions()
        graph = self._bundle.graph_view()
        for object_id, obj in self._entries.items():
            if obj is None:
                continue
            node = self._nodes[object_id]
            if node in seen:
                continue
            seen.add(node)
            pos = position_of.get(node, -1)
            if pos >= 0:
                x, y = float(node_x[pos]), float(node_y[pos])
            else:
                x, y = graph.coords(node)
            order.append((node, pos, float(x), float(y)))
        result = tuple(order)
        self._order_cache = (self._version, result)
        return result

    def _score_object(
        self,
        obj: GeoTextualObject,
        keywords: Sequence[str],
        query_vector: Optional[QueryVector],
    ) -> float:
        """Scalar reference score of an overlay object under base statistics.

        ``text_relevance`` cannot go through ``VectorSpaceModel.score`` (the
        model only knows base-snapshot objects), so the object-side weights —
        which are IDF-free and therefore valid under mutation — are computed
        here with the identical arithmetic: ``(1 + ln tf)`` weights, L2 norm
        clamped to 1.0, dot with the base-pinned query vector in query-term
        order, one final division by the query norm.
        """
        if self._mode is ScoringMode.TEXT_RELEVANCE:
            assert query_vector is not None
            weights = {term: tf_weight(freq) for term, freq in obj.keywords.items()}
            norm = math.sqrt(sum(weight * weight for weight in weights.values()))
            if norm <= 0.0:
                norm = 1.0
            total = 0.0
            for term in query_vector.terms:
                weight = weights.get(term)
                if weight:
                    total += query_vector.weights[term] * (weight / norm)
            return total / query_vector.norm
        if self._mode is ScoringMode.RATING_IF_MATCH:
            return obj.rating if obj.contains_any(keywords) else 0.0
        assert self._lm is not None
        return self._lm.score(obj, keywords)

    # ------------------------------------------------------------------- reads

    def node_weights(
        self,
        keywords: Iterable[str],
        window: Optional[Rectangle] = None,
        candidate_nodes: Optional[Iterable[int]] = None,
        node_window: Optional[Rectangle] = None,
    ) -> Dict[int, float]:
        """Merged ``node_id → σ_v``: base columnar sums + overlay contributions.

        Drop-in replacement for
        :meth:`~repro.textindex.columnar.WeightPipeline.node_weights` while
        mutations are pending — same arguments, same positivity rule, and the
        dict order a cold rebuild of the mutated corpus would produce (see the
        module docstring).
        """
        with self._lock:
            keyword_list = list(keywords)
            base_sums = self._pipeline.node_sums(
                keyword_list, window=window, exclude_rows=self._superseded_rows()
            )
            query_vector = (
                self._bundle.vsm.query_vector(keyword_list)
                if self._mode is ScoringMode.TEXT_RELEVANCE
                else None
            )
            position_of = self._node_positions()
            # Accumulate overlay contributions onto the base sum of their node,
            # in entry order — the same add sequence the cold bincount applies
            # (surviving base rows first, then overlay rows).
            totals: Dict[int, float] = {}
            for object_id, obj in self._entries.items():
                if obj is None:
                    continue
                if window is not None and not window.contains(obj.x, obj.y):
                    continue
                score = self._score_object(obj, keyword_list, query_vector)
                node = self._nodes[object_id]
                if node not in totals:
                    pos = position_of.get(node, -1)
                    totals[node] = float(base_sums[pos]) if pos >= 0 else 0.0
                totals[node] = totals[node] + score
            weights: Dict[int, float] = {}
            for node, pos, x, y in self._merged_node_order():
                value = totals.get(node)
                if value is None:
                    if pos < 0:
                        continue
                    value = float(base_sums[pos])
                if not value > 0.0:
                    continue
                if node_window is not None and not node_window.contains(x, y):
                    continue
                weights[node] = value
            if candidate_nodes is not None:
                allowed = (
                    candidate_nodes
                    if isinstance(candidate_nodes, (set, frozenset))
                    else set(candidate_nodes)
                )
                weights = {n: w for n, w in weights.items() if n in allowed}
            return weights

    def materialize_corpus(self) -> ObjectCorpus:
        """The canonical mutated corpus: surviving base order, then entry order.

        This is the corpus order a cold rebuild must use for results to be
        byte-identical to overlay serving — and the order the compactor feeds
        to :meth:`IndexBundle.build`.
        """
        with self._lock:
            corpus = ObjectCorpus()
            for obj in self._bundle.corpus:
                if obj.object_id in self._entries:
                    continue
                corpus.add(obj)
            for _, obj in self._entries.items():
                if obj is not None:
                    corpus.add(obj)
            return corpus


# -------------------------------------------------------------------- delta log


def _op_object(op: Mapping) -> GeoTextualObject:
    try:
        object_id = int(op["id"])
        x = float(op["x"])
        y = float(op["y"])
        raw_keywords = op["keywords"]
        rating = float(op.get("rating", 1.0))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"malformed mutation op {op!r}: {exc}") from exc
    if isinstance(raw_keywords, Mapping):
        keywords = {
            str(term).strip().lower(): int(freq)
            for term, freq in raw_keywords.items()
            if str(term).strip()
        }
        return GeoTextualObject(object_id, x, y, keywords, rating)
    return GeoTextualObject.create(object_id, x, y, [str(t) for t in raw_keywords], rating)


def apply_op(overlay: DeltaOverlay, op: Mapping) -> None:
    """Apply one mutation-log entry to ``overlay`` (validates as it goes)."""
    kind = op.get("op")
    if kind == "add":
        overlay.add_object(_op_object(op))
    elif kind == "update":
        overlay.update_object(_op_object(op))
    elif kind == "remove":
        overlay.remove_object(int(op["id"]))
    elif kind == "rate":
        overlay.set_rating(int(op["id"]), float(op["rating"]))
    else:
        raise ArtifactError(
            f"unknown mutation op {kind!r} (expected add / update / remove / rate)"
        )


def apply_ops(overlay: DeltaOverlay, ops: Iterable[Mapping]) -> int:
    """Apply mutation-log entries in order; returns how many were applied."""
    count = 0
    for op in ops:
        apply_op(overlay, op)
        count += 1
    return count


def read_delta_log(root: "Path | str") -> List[dict]:
    """Read the pending mutation ops at ``<root>/delta.json`` ([] if absent)."""
    path = Path(root) / DELTA_LOG_NAME
    if not path.is_file():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        ops = payload["ops"]
        if not isinstance(ops, list):
            raise ValueError("'ops' is not a list")
    except (ValueError, KeyError, TypeError) as exc:
        raise ArtifactError(
            f"malformed delta log at {path}: {exc}; delete the file to drop the "
            f"pending mutations or restore it from a backup"
        ) from exc
    return ops


def write_delta_log(root: "Path | str", ops: Sequence[Mapping]) -> None:
    """Atomically replace the delta log with ``ops``."""
    path = Path(root) / DELTA_LOG_NAME
    data = json.dumps({"ops": list(ops)}, indent=2, sort_keys=True).encode("utf-8")
    _write_bytes_atomic(path, data)


def append_delta_ops(root: "Path | str", ops: Sequence[Mapping]) -> int:
    """Append ``ops`` to the delta log; returns the total pending op count."""
    pending = read_delta_log(root)
    pending.extend(ops)
    write_delta_log(root, pending)
    return len(pending)


def clear_delta_log(root: "Path | str") -> None:
    """Remove the delta log (called after a successful compaction)."""
    path = Path(root) / DELTA_LOG_NAME
    if path.exists():
        path.unlink()


def overlay_from_delta_log(bundle: IndexBundle, root: "Path | str") -> Optional[DeltaOverlay]:
    """Build the overlay recorded at ``root`` (``None`` when nothing pending)."""
    ops = read_delta_log(root)
    if not ops:
        return None
    overlay = DeltaOverlay(bundle)
    apply_ops(overlay, ops)
    return overlay


# -------------------------------------------------------------- generation store


def generation_dirs(root: "Path | str") -> List[Tuple[int, Path]]:
    """Valid ``gen-NNNN`` directories under ``root``, ascending by number.

    Partially-written generations (a ``gen-NNNN`` directory without a readable
    manifest — the footprint of a crash mid-compaction, since the manifest is
    written last) are skipped with a warning naming the fix.
    """
    root = Path(root)
    found: List[Tuple[int, Path]] = []
    for child in sorted(root.glob(f"{GENERATION_PREFIX}*")):
        if not child.is_dir():
            continue
        match = _GENERATION_PATTERN.match(child.name)
        if match is None:
            continue
        if not (child / MANIFEST_NAME).is_file():
            warnings.warn(
                f"ignoring partially-written generation directory {child} (no "
                f"{MANIFEST_NAME}; most likely a crash mid-compaction) — delete the "
                f"directory or re-run `python -m repro compact {root}`",
                stacklevel=2,
            )
            continue
        found.append((int(match.group(1)), child))
    return found


def next_generation_name(root: "Path | str") -> str:
    """Name for the next generation directory (never reuses a number)."""
    root = Path(root)
    highest = 0
    for child in root.glob(f"{GENERATION_PREFIX}*"):
        match = _GENERATION_PATTERN.match(child.name)
        if match is not None:
            highest = max(highest, int(match.group(1)))
    return f"{GENERATION_PREFIX}{highest + 1:04d}"


def set_current_generation(root: "Path | str", name: str) -> None:
    """Atomically point ``CURRENT`` at the generation directory ``name``."""
    root = Path(root)
    target = root / name
    if not (target / MANIFEST_NAME).is_file():
        raise ArtifactError(
            f"refusing to point {CURRENT_NAME} at {target}: no readable {MANIFEST_NAME}"
        )
    _write_bytes_atomic(root / CURRENT_NAME, (name + "\n").encode("utf-8"))


def resolve_generation(root: "Path | str", warn_partial: bool = True) -> Path:
    """The artifact directory currently being served under ``root``.

    Follows the ``CURRENT`` pointer when present and valid; without a pointer
    the base artifact at ``root`` itself is the implicit generation 0.  When
    ``warn_partial`` is set, partially-written generation directories are
    reported (and ignored) on the way.

    Raises:
        ArtifactError: If ``CURRENT`` names a malformed, missing, or
            partially-written generation — the message says how to recover.
    """
    root = Path(root)
    if warn_partial:
        generation_dirs(root)
    pointer = root / CURRENT_NAME
    if not pointer.is_file():
        return root
    name = pointer.read_text(encoding="utf-8").strip()
    if not name:
        return root
    if _GENERATION_PATTERN.match(name) is None:
        raise ArtifactError(
            f"{pointer} names an invalid generation {name!r} (expected "
            f"{GENERATION_PREFIX}NNNN); delete the {CURRENT_NAME} file to fall back "
            f"to the base artifact"
        )
    target = root / name
    if not (target / MANIFEST_NAME).is_file():
        raise ArtifactError(
            f"{pointer} points at generation {name} but {target} has no readable "
            f"{MANIFEST_NAME} (crash mid-compaction?); re-run "
            f"`python -m repro compact {root}` or delete the {CURRENT_NAME} file to "
            f"fall back to the base artifact"
        )
    return target


# ---------------------------------------------------------------------- compactor


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction did.

    Attributes:
        generation: Name of the new generation directory (``None`` for an
            in-memory compaction without an artifact root).
        path: The new generation directory (``None`` in memory).
        fingerprint: Dataset fingerprint of the compacted bundle.
        mutations: Number of pending overlay entries folded in.
        resharded: Whether a shard set was rebuilt for the new generation.
        seconds: Wall-clock compaction time.
    """

    generation: Optional[str]
    path: Optional[Path]
    fingerprint: str
    mutations: int
    resharded: bool
    seconds: float


class Compactor:
    """Background re-freeze of base + delta into a new artifact generation.

    The compactor freezes the engine's overlay, materialises the canonical
    mutated corpus, and rebuilds a full bundle through
    :meth:`IndexBundle.build_streaming` — which persists the *same*
    scoring / network columns, byte for byte, as the eager
    :meth:`IndexBundle.build` a cold rebuild of the mutated dataset goes
    through (the streaming-parity suite pins that equivalence), while keeping
    the compactor's peak memory bounded for million-object generations.  With
    an artifact ``root`` it then persists the bundle as ``<root>/gen-NNNN/``
    — inheriting the served generation's chunk-compression codec, so a
    compacted compressed artifact stays compressed — mirrors the served
    generation's shard set onto the new generation, flips ``CURRENT``
    atomically, clears the delta log, and finally swaps the new bundle into
    the live engine (dropping the overlay and bumping ``bundle_generation``).

    Crash-safety: the manifest is the last file written into ``gen-NNNN`` and
    ``CURRENT`` is replaced atomically, so a crash at any point leaves either
    the old generation served (possibly with an ignorable partial directory)
    or the new generation fully live.

    Args:
        engine: A live :class:`~repro.engine.LCMSREngine` with a pending
            overlay attached.
        root: Optional artifact root to persist the new generation under; when
            omitted the compaction is in-memory only (the engine still swaps).
    """

    def __init__(self, engine, root: "Path | str | None" = None) -> None:
        self._engine = engine
        self._root = Path(root) if root is not None else None

    def compact(self) -> CompactionReport:
        """Run one compaction; see the class docstring for the protocol."""
        engine = self._engine
        overlay = engine.overlay
        if overlay is None or not overlay.has_pending:
            raise DatasetError(
                "nothing to compact: the engine has no pending overlay mutations"
            )
        if self._root is not None:
            read_manifest(self._root)  # fail fast on a non-artifact root
        overlay.freeze()
        try:
            start = time.perf_counter()
            mutations = overlay.pending_count
            corpus = overlay.materialize_corpus()
            base = engine.bundle
            new_bundle = IndexBundle.build_streaming(
                base.road_network(),
                iter(corpus),
                grid_resolution=base.grid_resolution,
                scoring_mode=base.scoring_mode,
            )
            generation: Optional[str] = None
            target: Optional[Path] = None
            resharded = False
            if self._root is not None:
                from repro.service.sharding import build_shards, load_shard_set

                served = resolve_generation(self._root, warn_partial=False)
                # The new generation inherits the served generation's
                # chunk-compression codec (None stays None).
                block = read_manifest(served).compression
                compression = (
                    compression_spec(str(block.get("codec")), block.get("level"))
                    if block is not None
                    else None
                )
                generation = next_generation_name(self._root)
                target = self._root / generation
                manifest = save_bundle(new_bundle, target, compression=compression)
                try:
                    shard_set = load_shard_set(served)
                except ArtifactError:
                    shard_set = None  # a stale set is not worth mirroring
                if shard_set is not None:
                    build_shards(
                        new_bundle,
                        target,
                        num_shards=len(shard_set.shards),
                        halo_margin=shard_set.halo_margin,
                        base_fingerprint=manifest.fingerprint,
                        compression=compression,
                    )
                    resharded = True
                set_current_generation(self._root, generation)
                clear_delta_log(self._root)
            engine.swap_bundle(new_bundle)
            return CompactionReport(
                generation=generation,
                path=target,
                fingerprint=new_bundle.fingerprint(),
                mutations=mutations,
                resharded=resharded,
                seconds=time.perf_counter() - start,
            )
        except BaseException:
            overlay.unfreeze()
            raise

    def compact_in_background(self) -> "Future[CompactionReport]":
        """Run :meth:`compact` on a background thread; returns its future."""
        executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="compactor")
        future = executor.submit(self.compact)
        future.add_done_callback(lambda _: executor.shutdown(wait=False))
        return future


__all__ = [
    "CURRENT_NAME",
    "DELTA_LOG_NAME",
    "GENERATION_PREFIX",
    "CompactionReport",
    "Compactor",
    "DeltaOverlay",
    "append_delta_ops",
    "apply_op",
    "apply_ops",
    "clear_delta_log",
    "generation_dirs",
    "next_generation_name",
    "overlay_from_delta_log",
    "read_delta_log",
    "resolve_generation",
    "set_current_generation",
    "write_delta_log",
]
