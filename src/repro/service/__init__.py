"""Serving layer: batched concurrent query execution with caching.

This subpackage turns the one-query-at-a-time :class:`~repro.engine.LCMSREngine`
into a high-throughput service:

* :class:`IndexBundle` — the engine's query-independent index state (network,
  object mapping, vector-space model, grid + inverted lists, scorer), built once
  and shared immutably across engines and worker threads.
* :class:`QueryService` — the batch front end: ``submit`` / ``submit_many`` /
  ``run_batch`` over a worker pool, an LRU result cache keyed on normalized query
  parameters, and an LRU instance cache that lets repeated keyword sets skip
  ``build_instance`` and subgraph extraction.
* :class:`LRUCache` / :class:`CacheStats` — the thread-safe cache primitive.
* :class:`ServiceStats` / :class:`QueryTiming` — per-query timing and aggregate
  accounting, rendered by :func:`repro.evaluation.reporting.format_service_stats`.
* :mod:`repro.service.persist` — versioned on-disk index artifacts:
  :func:`save_bundle` / :func:`load_bundle` (mmap-backed), the
  :class:`ArtifactManifest` with checksums and a dataset fingerprint, and the
  artifact cache behind the evaluation runner and the ``python -m repro`` CLI.
* :mod:`repro.service.sharding` — sharded multi-process serving:
  :func:`build_shards` partitions an artifact into tile shards with halo
  edges, :class:`ShardRouter` maps windows to shards, and
  :class:`ShardedQueryService` is the ``ProcessPoolExecutor`` scatter-gather
  gateway with admission control — byte-identical to the unsharded engine.
* :mod:`repro.service.generations` — the mutable world: :class:`DeltaOverlay`
  records add / update / remove / rating mutations over a frozen bundle and
  merges them into node weights at query time; :class:`Compactor` re-freezes
  base + delta into a new ``gen-NNNN/`` artifact generation and swaps it into
  the live engine; :func:`resolve_generation` follows the ``CURRENT`` pointer.
"""

from repro.service.bundle import IndexBundle
from repro.service.cache import CacheStats, LRUCache
from repro.service.keys import InstanceKey, ResultKey, normalize_keywords
from repro.service.persist import (
    FORMAT_VERSION,
    ArtifactManifest,
    cached_dataset_bundle,
    dataset_fingerprint,
    load_bundle,
    read_manifest,
    save_bundle,
    verify_artifact,
)
from repro.service.query_service import QueryRequest, QueryService, ServiceResult
from repro.service.generations import (
    CURRENT_NAME,
    DELTA_LOG_NAME,
    GENERATION_PREFIX,
    CompactionReport,
    Compactor,
    DeltaOverlay,
    append_delta_ops,
    apply_op,
    apply_ops,
    clear_delta_log,
    generation_dirs,
    next_generation_name,
    overlay_from_delta_log,
    read_delta_log,
    resolve_generation,
    set_current_generation,
    write_delta_log,
)
from repro.service.sharding import (
    ShardedQueryService,
    ShardInfo,
    ShardRouter,
    ShardSetManifest,
    WorkerConfig,
    build_shards,
    load_shard_set,
    merge_topk,
)
from repro.service.stats import QueryTiming, ServiceStats, StatsCollector

__all__ = [
    "IndexBundle",
    "ArtifactManifest",
    "FORMAT_VERSION",
    "save_bundle",
    "load_bundle",
    "read_manifest",
    "verify_artifact",
    "dataset_fingerprint",
    "cached_dataset_bundle",
    "QueryService",
    "QueryRequest",
    "ServiceResult",
    "LRUCache",
    "CacheStats",
    "InstanceKey",
    "ResultKey",
    "normalize_keywords",
    "QueryTiming",
    "ServiceStats",
    "StatsCollector",
    "ShardedQueryService",
    "ShardInfo",
    "ShardRouter",
    "ShardSetManifest",
    "WorkerConfig",
    "build_shards",
    "load_shard_set",
    "merge_topk",
    "DeltaOverlay",
    "Compactor",
    "CompactionReport",
    "CURRENT_NAME",
    "DELTA_LOG_NAME",
    "GENERATION_PREFIX",
    "append_delta_ops",
    "apply_op",
    "apply_ops",
    "clear_delta_log",
    "generation_dirs",
    "next_generation_name",
    "overlay_from_delta_log",
    "read_delta_log",
    "resolve_generation",
    "set_current_generation",
    "write_delta_log",
]
