"""Per-query timing records and aggregate serving statistics.

Each query the :class:`~repro.service.query_service.QueryService` executes produces
one :class:`QueryTiming`; :class:`ServiceStats` aggregates them together with the two
caches' counters. ``evaluation.reporting`` renders these as the same fixed-width
tables the benchmark figures use (:func:`repro.evaluation.reporting.format_service_stats`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.service.cache import CacheStats
from repro.service.keys import ResultKey


@dataclass(frozen=True)
class QueryTiming:
    """The cost breakdown of one query served by the service.

    Attributes:
        key: The normalized result key the query executed under.
        algorithm: The resolved solver name.
        result_cache_hit: ``True`` when the answer came straight from the result
            cache (build and solve times are then 0).
        instance_cache_hit: ``True`` when the problem instance was reused from the
            instance cache (build time is then 0).
        build_seconds: Time spent building the problem instance (index probe +
            window extraction); 0 on any cache hit.
        solve_seconds: Time spent inside the solver; 0 on a result-cache hit.
        total_seconds: End-to-end service time for this query, including key
            normalization and cache probes.
    """

    key: ResultKey
    algorithm: str
    result_cache_hit: bool
    instance_cache_hit: bool
    build_seconds: float
    solve_seconds: float
    total_seconds: float


@dataclass(frozen=True)
class ServiceStats:
    """An immutable snapshot of a service's accumulated accounting.

    Attributes:
        timings: One record per executed query, in completion order.
        result_cache: Snapshot of the result cache's counters.
        instance_cache: Snapshot of the instance cache's counters.
    """

    timings: List[QueryTiming]
    result_cache: CacheStats
    instance_cache: CacheStats

    @property
    def queries(self) -> int:
        """Number of queries served."""
        return len(self.timings)

    @property
    def result_hits(self) -> int:
        """Queries answered straight from the result cache."""
        return sum(1 for t in self.timings if t.result_cache_hit)

    @property
    def instance_hits(self) -> int:
        """Queries that reused a cached problem instance."""
        return sum(1 for t in self.timings if t.instance_cache_hit)

    @property
    def total_build_seconds(self) -> float:
        """Total instance-build time across all served queries."""
        return sum(t.build_seconds for t in self.timings)

    @property
    def total_solve_seconds(self) -> float:
        """Total solver time across all served queries."""
        return sum(t.solve_seconds for t in self.timings)

    @property
    def total_seconds(self) -> float:
        """Total end-to-end service time across all served queries."""
        return sum(t.total_seconds for t in self.timings)

    @property
    def mean_latency_seconds(self) -> float:
        """Mean end-to-end latency per query (0.0 when no queries ran)."""
        return self.total_seconds / self.queries if self.queries else 0.0

    @property
    def result_hit_rate(self) -> float:
        """Fraction of queries answered from the result cache."""
        return self.result_hits / self.queries if self.queries else 0.0


class StatsCollector:
    """Mutable, lock-protected accumulator behind a service's ``stats()`` call."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: List[QueryTiming] = []

    def record(self, timing: QueryTiming) -> None:
        """Append one query's timing record (thread-safe)."""
        with self._lock:
            self._timings.append(timing)

    def reset(self) -> None:
        """Drop all recorded timings."""
        with self._lock:
            self._timings.clear()

    def snapshot(
        self, result_cache: CacheStats, instance_cache: CacheStats
    ) -> ServiceStats:
        """Freeze the current state into an immutable :class:`ServiceStats`."""
        with self._lock:
            timings = list(self._timings)
        return ServiceStats(
            timings=timings, result_cache=result_cache, instance_cache=instance_cache
        )
