"""Per-query timing records and aggregate serving statistics.

Each query the :class:`~repro.service.query_service.QueryService` executes produces
one :class:`QueryTiming`; :class:`ServiceStats` aggregates them together with the two
caches' counters. ``evaluation.reporting`` renders these as the same fixed-width
tables the benchmark figures use (:func:`repro.evaluation.reporting.format_service_stats`).

Multi-process serving (:class:`~repro.service.sharding.ShardedQueryService`) adds
two requirements this module covers:

* every record is picklable (worker processes ship their timings back to the
  gateway), and
* per-worker snapshots combine losslessly — :meth:`ServiceStats.merge` sums the
  counters and concatenates the timing records of any number of snapshots.

The aggregate totals are carried explicitly in :class:`StatTotals` rather than
re-derived from the timing list: :class:`StatsCollector` accumulates them inside
the same critical section that appends the timing record, so a snapshot can
never observe a timing whose counts are missing (or vice versa), and totals
survive even if a future collector bounds its timing retention.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.service.cache import CacheStats
from repro.service.keys import ResultKey

LATENCY_BUCKET_MIN_SECONDS = 1e-6
"""Lower edge of the first latency bucket (1 µs); faster queries land there too."""

LATENCY_BUCKETS_PER_DECADE = 20
"""Log-bucket resolution: 20 buckets per decade ≈ ±6% relative error."""

LATENCY_NUM_BUCKETS = 9 * LATENCY_BUCKETS_PER_DECADE + 1
"""Buckets covering 1 µs … 1000 s, plus one overflow bucket at the top."""


@dataclass(frozen=True)
class LatencyHistogram:
    """Fixed log-spaced latency buckets with an associative, lossless merge.

    Percentiles over concurrent workers need an aggregate that merges without
    holding every sample: fixed bucket edges make ``h1 + h2`` a plain
    element-wise sum, so the merge is associative and commutative — per-worker
    histograms combine in any order to the same aggregate (unlike reservoir
    sampling, which is neither). The price is quantisation: a reported
    percentile is the geometric midpoint of its bucket, within ±6% of the true
    order statistic at 20 buckets per decade.

    The empty histogram is represented by an empty ``counts`` tuple (the
    additive identity), so zero-valued :class:`StatTotals` cost no allocation.
    """

    counts: Tuple[int, ...] = ()

    @staticmethod
    def bucket_index(seconds: float) -> int:
        """Map a latency to its bucket (clamped at both ends)."""
        if seconds <= LATENCY_BUCKET_MIN_SECONDS:
            return 0
        index = int(
            math.log10(seconds / LATENCY_BUCKET_MIN_SECONDS)
            * LATENCY_BUCKETS_PER_DECADE
        )
        return min(index, LATENCY_NUM_BUCKETS - 1)

    @classmethod
    def of(cls, seconds: float) -> "LatencyHistogram":
        """The one-sample histogram for a single latency."""
        index = cls.bucket_index(seconds)
        counts = [0] * (index + 1)
        counts[index] = 1
        return cls(counts=tuple(counts))

    def __add__(self, other: "LatencyHistogram") -> "LatencyHistogram":
        if not self.counts:
            return other
        if not other.counts:
            return self
        longer, shorter = self.counts, other.counts
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        merged = list(longer)
        for i, count in enumerate(shorter):
            merged[i] += count
        return LatencyHistogram(counts=tuple(merged))

    @property
    def total(self) -> int:
        """Number of recorded samples."""
        return sum(self.counts)

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile latency in seconds (0.0 when empty).

        Returns the geometric midpoint of the bucket holding the rank-``q``
        sample — an order-statistic estimate within the bucket resolution.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        total = self.total
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * total))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return LATENCY_BUCKET_MIN_SECONDS * 10.0 ** (
                    (index + 0.5) / LATENCY_BUCKETS_PER_DECADE
                )
        return LATENCY_BUCKET_MIN_SECONDS * 10.0 ** (  # pragma: no cover
            len(self.counts) / LATENCY_BUCKETS_PER_DECADE
        )


@dataclass(frozen=True)
class QueryTiming:
    """The cost breakdown of one query served by the service.

    Attributes:
        key: The normalized result key the query executed under.
        algorithm: The resolved solver name.
        result_cache_hit: ``True`` when the answer came straight from the result
            cache (build and solve times are then 0).
        instance_cache_hit: ``True`` when the problem instance was reused from the
            instance cache (build time is then 0).
        build_seconds: Time spent building the problem instance (index probe +
            window extraction); 0 on any cache hit.
        solve_seconds: Time spent inside the solver; 0 on a result-cache hit.
        total_seconds: End-to-end service time for this query, including key
            normalization and cache probes.
    """

    key: ResultKey
    algorithm: str
    result_cache_hit: bool
    instance_cache_hit: bool
    build_seconds: float
    solve_seconds: float
    total_seconds: float


@dataclass(frozen=True)
class StatTotals:
    """Exact aggregate counters over a set of served queries.

    Accumulated atomically by :class:`StatsCollector` (one lock-protected
    read-modify-write per query, in the same critical section as the timing
    append) and summed across workers by :meth:`ServiceStats.merge`.
    """

    queries: int = 0
    result_hits: int = 0
    instance_hits: int = 0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    def __add__(self, other: "StatTotals") -> "StatTotals":
        return StatTotals(
            queries=self.queries + other.queries,
            result_hits=self.result_hits + other.result_hits,
            instance_hits=self.instance_hits + other.instance_hits,
            build_seconds=self.build_seconds + other.build_seconds,
            solve_seconds=self.solve_seconds + other.solve_seconds,
            total_seconds=self.total_seconds + other.total_seconds,
            latency=self.latency + other.latency,
        )

    @classmethod
    def from_timings(cls, timings: Iterable[QueryTiming]) -> "StatTotals":
        """Derive the totals of a timing list (for snapshots built without a collector)."""
        totals = cls()
        for timing in timings:
            totals = totals + cls.of(timing)
        return totals

    @classmethod
    def of(cls, timing: QueryTiming) -> "StatTotals":
        """The one-query totals contribution of a single timing record."""
        return cls(
            queries=1,
            result_hits=1 if timing.result_cache_hit else 0,
            instance_hits=1 if timing.instance_cache_hit else 0,
            build_seconds=timing.build_seconds,
            solve_seconds=timing.solve_seconds,
            total_seconds=timing.total_seconds,
            latency=LatencyHistogram.of(timing.total_seconds),
        )


def _sum_cache_stats(parts: List[CacheStats]) -> CacheStats:
    return CacheStats(
        hits=sum(p.hits for p in parts),
        misses=sum(p.misses for p in parts),
        evictions=sum(p.evictions for p in parts),
        size=sum(p.size for p in parts),
        max_size=sum(p.max_size for p in parts),
    )


@dataclass(frozen=True)
class ServiceStats:
    """An immutable snapshot of a service's accumulated accounting.

    Attributes:
        timings: One record per executed query, in completion order.
        result_cache: Snapshot of the result cache's counters.
        instance_cache: Snapshot of the instance cache's counters.
        totals: Exact aggregate counters (see :class:`StatTotals`); derived from
            ``timings`` when a snapshot is constructed without one.
    """

    timings: List[QueryTiming]
    result_cache: CacheStats
    instance_cache: CacheStats
    totals: Optional[StatTotals] = None

    def _totals(self) -> StatTotals:
        return (
            self.totals
            if self.totals is not None
            else StatTotals.from_timings(self.timings)
        )

    @classmethod
    def merge(cls, parts: Iterable["ServiceStats"]) -> "ServiceStats":
        """Combine per-worker snapshots into one aggregate snapshot.

        Timing records are concatenated in the given part order, cache counters
        and totals are summed. Merging zero parts yields an empty snapshot.
        """
        part_list = list(parts)
        timings: List[QueryTiming] = []
        totals = StatTotals()
        for part in part_list:
            timings.extend(part.timings)
            totals = totals + part._totals()
        empty = CacheStats(hits=0, misses=0, evictions=0, size=0, max_size=0)
        return cls(
            timings=timings,
            result_cache=_sum_cache_stats([p.result_cache for p in part_list]) if part_list else empty,
            instance_cache=_sum_cache_stats([p.instance_cache for p in part_list]) if part_list else empty,
            totals=totals,
        )

    @property
    def queries(self) -> int:
        """Number of queries served."""
        return self._totals().queries

    @property
    def result_hits(self) -> int:
        """Queries answered straight from the result cache."""
        return self._totals().result_hits

    @property
    def instance_hits(self) -> int:
        """Queries that reused a cached problem instance."""
        return self._totals().instance_hits

    @property
    def total_build_seconds(self) -> float:
        """Total instance-build time across all served queries."""
        return self._totals().build_seconds

    @property
    def total_solve_seconds(self) -> float:
        """Total solver time across all served queries."""
        return self._totals().solve_seconds

    @property
    def total_seconds(self) -> float:
        """Total end-to-end service time across all served queries."""
        return self._totals().total_seconds

    @property
    def mean_latency_seconds(self) -> float:
        """Mean end-to-end latency per query (0.0 when no queries ran)."""
        return self.total_seconds / self.queries if self.queries else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile end-to-end latency in seconds (0.0 when empty).

        Read from the totals' :class:`LatencyHistogram`, so merged snapshots
        report true cross-worker percentiles (the histogram merge is lossless);
        the value is quantised to the histogram's bucket resolution (±6%).
        """
        return self._totals().latency.percentile(q)

    @property
    def p50_latency_seconds(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile(50.0)

    @property
    def p95_latency_seconds(self) -> float:
        """95th-percentile end-to-end latency."""
        return self.latency_percentile(95.0)

    @property
    def p99_latency_seconds(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.latency_percentile(99.0)

    @property
    def result_hit_rate(self) -> float:
        """Fraction of queries answered from the result cache."""
        return self.result_hits / self.queries if self.queries else 0.0


class StatsCollector:
    """Mutable, lock-protected accumulator behind a service's ``stats()`` call.

    The timing append and the totals read-modify-write happen inside one
    critical section, so concurrent :meth:`record` calls can never interleave a
    partial update — every snapshot's ``totals`` match its ``timings`` exactly
    (the hammer test in ``tests/service/test_stats.py`` pounds on this).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._timings: List[QueryTiming] = []
        self._totals = StatTotals()

    def record(self, timing: QueryTiming) -> None:
        """Record one query's timing and fold it into the totals (atomically)."""
        contribution = StatTotals.of(timing)
        with self._lock:
            self._timings.append(timing)
            self._totals = self._totals + contribution

    def record_many(self, timings: Iterable[QueryTiming]) -> None:
        """Record a batch of timings under a single critical section."""
        batch = list(timings)
        contribution = StatTotals.from_timings(batch)
        with self._lock:
            self._timings.extend(batch)
            self._totals = self._totals + contribution

    def reset(self) -> None:
        """Drop all recorded timings and zero the totals."""
        with self._lock:
            self._timings.clear()
            self._totals = StatTotals()

    def snapshot(
        self, result_cache: CacheStats, instance_cache: CacheStats
    ) -> ServiceStats:
        """Freeze the current state into an immutable :class:`ServiceStats`."""
        with self._lock:
            timings = list(self._timings)
            totals = self._totals
        return ServiceStats(
            timings=timings,
            result_cache=result_cache,
            instance_cache=instance_cache,
            totals=totals,
        )
