"""Persistent index-bundle artifacts: build the indexes once, serve from disk forever.

Every process used to pay the full offline pipeline — object → node mapping, the
TF-IDF vector-space model, the grid + inverted lists and the CSR freeze — before it
could answer a single query. This module serialises a complete
:class:`~repro.service.bundle.IndexBundle` into a **versioned directory artifact**
and loads it back with the large arrays memory-mapped, separating offline index
construction (``python -m repro build``) from online serving
(:meth:`LCMSREngine.from_artifact <repro.engine.LCMSREngine.from_artifact>`).

Artifact layout (one directory per artifact)::

    <artifact>/
        manifest.json     format version, dataset fingerprint, build parameters,
                          per-file SHA-256 checksums, headline statistics
        network.npz       the CompactNetwork CSR arrays (ids, xs, ys, indptr,
                          indices, lengths), stored raw by default and loaded
                          back as read-only memory maps; under ``--compress``
                          the payload columns are chunk-compressed (the CSR
                          ``indptr`` always stays raw)
        scoring.npz       the ColumnarScoringIndex columns (CSR term → object
                          postings with TF-IDF / raw-tf / LM log-probability
                          value columns, the object table, the node table and
                          the CSR node → object map), stored raw by default and
                          loaded back as read-only memory maps — the σ_v hot
                          path is query-ready without materialising anything.
                          Under ``--compress`` the bulky value columns are
                          chunk-compressed and decoded lazily per chunk behind
                          :class:`~repro.service.chunked.ChunkedColumn`; the
                          indptr and bound-aggregate columns stay raw memory
                          maps so pruning and scatter planning never pay a
                          decode (see ``_COMPRESSED_SCORING_COLUMNS``)
        index.pkl         the derived index structures — object corpus, node ↔
                          object mapping, vector-space model, grid cells +
                          inverted lists, relevance-scorer config — pickled as
                          ONE object graph so shared substructures (the corpus,
                          the VSM) are stored and restored exactly once (the
                          columnar arrays are deliberately NOT in this pickle;
                          they live in scoring.npz and are re-attached on load)
        vocabulary.json   the sorted corpus term list; doubles as the columnar
                          index's term-id table (term id = list position)

Design notes:

* **Determinism.** Two builds of the same dataset under the same seed produce
  byte-identical artifacts: the npz member timestamps are pinned to the zip epoch,
  the manifest carries no wall-clock fields, JSON keys are sorted, and the pickle
  uses a fixed protocol (sets are canonicalised before pickling — see
  :meth:`InvertedIndex.__getstate__ <repro.index.inverted.InvertedIndex.__getstate__>`).
  This makes artifacts diffable, checksummable and safe to cache by content.
* **mmap loading.** ``network.npz`` is written uncompressed (``ZIP_STORED``), so
  each member's raw ``.npy`` payload sits at a known offset inside the file and can
  be mapped directly with :class:`numpy.memmap` in read-only mode. Loading is
  therefore I/O-bound header parsing, not array materialisation — combined with
  :class:`~repro.network.compact.CompactNetwork`'s lazy traversal mirrors, an
  engine is query-ready without reading the bulk of the arrays.
* **Chunked compression (format 5).** With a codec selected, each bulky payload
  column is split into fixed-size chunks, each chunk compressed independently
  (zlib or lzma, both stdlib) behind a byte-shuffle filter, and stored as its
  own ``ZIP_STORED`` zip member next to a per-column descriptor
  (``<column>.chunks.json``: dtype, length, chunk size, codec, per-chunk CRC-32
  of the decoded bytes). Readers get a
  :class:`~repro.service.chunked.ChunkedColumn` that decodes chunks on demand
  through an LRU cache — decoded bytes are bit-identical to a raw build, so
  query results are byte-identical across compressed and raw artifacts. The
  CSR ``indptr`` columns and the bound-aggregate columns stay raw memory maps:
  they are touched by every query's pruning/planning pass and must stay
  zero-decode. ``index.pkl`` is compressed wholesale with the same codec. The
  chunk pipeline is deterministic (fixed codec levels, pinned member
  timestamps), so same-seed compressed builds are byte-identical too.
* **Versioning policy.** ``format_version`` is bumped on any layout or encoding
  change; loaders refuse other versions outright (no silent migration). The
  ``fingerprint`` identifies the *dataset content* independent of the format, so
  caches can answer "is this artifact built from these exact inputs?" without
  deserialising anything.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import re
import struct
import time
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from repro.exceptions import ArtifactError
from repro.network.compact import CompactNetwork, GraphView
from repro.objects.corpus import ObjectCorpus
from repro.service.chunked import (
    CODECS,
    DEFAULT_CHUNK_ELEMS,
    DEFAULT_CODEC,
    DEFAULT_LEVELS,
    ChunkedColumn,
    CompressingWriter,
    decompress_bytes,
    encode_chunk,
)
from repro.textindex.columnar import (
    ARRAY_FIELDS as _SCORING_FIELDS,
    DEFAULT_LM_SMOOTHING,
    ColumnarScoringIndex,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (bundle imports persist)
    from repro.service.bundle import IndexBundle

FORMAT_VERSION = 5
"""Current on-disk artifact format version (see the module docstring).

Version history: 1 — network.npz + index.pkl + vocabulary.json; 2 — adds
scoring.npz (the columnar scoring index) and the manifest's ``lm_smoothing``
field; 3 — adds the per-cell bound aggregate columns to scoring.npz (the
``bound_meta`` / ``*_cell`` / ``cell_*`` arrays backing
:class:`repro.core.bounds.UpperBoundIndex`); 4 — adds the corpus-global
statistic columns ``term_df`` / ``corpus_meta`` to scoring.npz (so spatial
shards score with full-corpus IDF weights) and the manifest's optional
``shard`` block (tile / extent / halo linkage of a shard sub-artifact, see
:mod:`repro.service.sharding`); 5 — adds optional per-column chunked
compression inside the ``.npz`` containers (``<column>.chunks.json``
descriptor + ``<column>.chunkNNNNN`` payload members, decoded lazily behind
:class:`~repro.service.chunked.ChunkedColumn`), whole-file compression of
``index.pkl``, and the manifest's optional ``compression`` block (codec,
level, chunk size, per-file raw byte counts). Loaders accept exactly the
current version (no silent migration); older artifacts must be rebuilt with
``python -m repro build``.
"""

MANIFEST_NAME = "manifest.json"
NETWORK_NAME = "network.npz"
SCORING_NAME = "scoring.npz"
INDEX_NAME = "index.pkl"
VOCABULARY_NAME = "vocabulary.json"

_PICKLE_PROTOCOL = 4
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)  # fixed member timestamp => deterministic bytes
_NETWORK_FIELDS = ("ids", "xs", "ys", "indptr", "indices", "lengths")

# Column compression policy. Compressed: the bulky per-posting / per-object /
# per-node payload columns that queries touch in narrow windows. Raw (always a
# plain memory map): every CSR indptr (one random read per term lookup — a
# decode there would serialise every query), the bound-aggregate columns that
# PR 6 pruning and PR 7 scatter planning scan on every request, the tiny
# per-term / corpus-stat tables, and the node coordinate triplet the
# UpperBoundIndex reads at load. Only 1-D columns are ever chunked.
_COMPRESSED_SCORING_COLUMNS = frozenset(
    {
        "post_rows",
        "post_tfidf",
        "post_tf",
        "lm_log_mixed",
        "object_ids",
        "obj_x",
        "obj_y",
        "obj_rating",
        "obj_node_pos",
        "node_rows",
    }
)
_COMPRESSED_NETWORK_COLUMNS = frozenset({"ids", "xs", "ys", "indices", "lengths"})

_CHUNK_DESCRIPTOR_SUFFIX = ".chunks.json"
_CHUNK_MEMBER_RE = re.compile(r"^(?P<column>.+)\.chunk(?P<index>\d{5})$")

PathLike = Union[str, Path]


# ---------------------------------------------------------------------- manifest
@dataclass(frozen=True)
class ArtifactManifest:
    """The machine-readable description of one on-disk artifact.

    Attributes:
        format_version: On-disk layout version; loaders accept exactly
            :data:`FORMAT_VERSION`.
        fingerprint: SHA-256 content fingerprint of the indexed dataset (network
            CSR arrays + object corpus), format-independent — see
            :func:`dataset_fingerprint`.
        grid_resolution: Grid cells per axis the spatial index was built with.
        scoring_mode: The bundle's :class:`~repro.textindex.relevance.ScoringMode`
            value.
        lm_smoothing: The Jelinek–Mercer λ the columnar language-model columns
            were precomputed with.
        stats: Headline counts (nodes, edges, objects, vocabulary size,
            postings, mapped nodes).
        checksums: ``file name → sha256 hex digest`` for every payload file.
        shard: ``None`` for a standalone artifact. For a shard sub-artifact
            (see :mod:`repro.service.sharding`): the tile and halo-expanded
            extent rectangles (``[min_x, min_y, max_x, max_y]``), the
            ``halo_margin`` the extent was grown by, the shard's ``part`` /
            ``of`` position in its set, and the ``base_fingerprint`` of the
            full artifact it was partitioned from (the staleness check).
        compression: ``None`` for a raw (uncompressed) artifact. Otherwise the
            chunk-compression parameters the payload files were written with —
            ``codec`` (``zlib``/``lzma``), ``level``, ``chunk_elems``,
            ``shuffle`` — plus ``raw_bytes``, the per-file serialised sizes
            *before* compression (what ``python -m repro info`` reports the
            compression ratio against).
    """

    format_version: int
    fingerprint: str
    grid_resolution: int
    scoring_mode: str
    lm_smoothing: float = DEFAULT_LM_SMOOTHING
    stats: Dict[str, int] = field(default_factory=dict)
    checksums: Dict[str, str] = field(default_factory=dict)
    shard: Optional[Dict[str, object]] = None
    compression: Optional[Dict[str, object]] = None

    def to_json(self) -> str:
        """Render the manifest as canonical (sorted-keys) JSON."""
        return json.dumps(asdict(self), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ArtifactManifest":
        """Parse a manifest; raises :class:`ArtifactError` on malformed content."""
        try:
            raw = json.loads(text)
            return cls(
                format_version=int(raw["format_version"]),
                fingerprint=str(raw["fingerprint"]),
                grid_resolution=int(raw["grid_resolution"]),
                scoring_mode=str(raw["scoring_mode"]),
                lm_smoothing=float(raw.get("lm_smoothing", DEFAULT_LM_SMOOTHING)),
                stats={str(k): int(v) for k, v in raw.get("stats", {}).items()},
                checksums={str(k): str(v) for k, v in raw.get("checksums", {}).items()},
                shard=raw.get("shard"),
                compression=raw.get("compression"),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ArtifactError(f"malformed artifact manifest: {exc}") from exc


def read_manifest(path: PathLike) -> ArtifactManifest:
    """Read and validate the manifest of the artifact directory at ``path``.

    Args:
        path: The artifact directory.

    Returns:
        The parsed manifest.

    Raises:
        ArtifactError: If the directory or manifest is missing, the manifest is
            malformed, or the artifact was written by an unsupported format
            version.
    """
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"no artifact manifest at {manifest_path}")
    manifest = ArtifactManifest.from_json(manifest_path.read_text(encoding="utf-8"))
    if manifest.format_version != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact format version {manifest.format_version} "
            f"(this build reads version {FORMAT_VERSION}); rebuild the artifact "
            f"with `python -m repro build`"
        )
    return manifest


# ---------------------------------------------------------------------- fingerprint
def dataset_fingerprint(network: GraphView, corpus: ObjectCorpus) -> str:
    """Return a SHA-256 content fingerprint of a (network, corpus) pair.

    The fingerprint covers the frozen CSR arrays (so node/edge identity, order,
    coordinates and lengths all contribute) and every object's id, location,
    rating and term-frequency map (terms in sorted order). It is independent of
    the artifact format, so an in-memory dataset can be matched against a stored
    manifest without serialising anything.
    """
    compact = CompactNetwork.from_network(network)
    digest = hashlib.sha256()
    ids, xs, ys = compact.csr_node_arrays()
    indptr, indices, lengths = compact.csr_index_arrays()
    for array in (ids, xs, ys, indptr, indices, lengths):
        contiguous = np.ascontiguousarray(array)
        digest.update(str(contiguous.dtype).encode("ascii"))
        digest.update(struct.pack("<q", contiguous.shape[0]))
        digest.update(contiguous.tobytes())
    pack_header = struct.Struct("<qddd").pack
    pack_count = struct.Struct("<q").pack
    for obj in corpus:
        digest.update(pack_header(obj.object_id, obj.x, obj.y, obj.rating))
        for term in sorted(obj.keywords):
            digest.update(term.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(pack_count(obj.keywords[term]))
    return digest.hexdigest()


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ---------------------------------------------------------------------- npz helpers
def _replace_into(temp_path: Path, final_path: Path) -> None:
    """Atomically move a finished temp file into place (POSIX rename semantics).

    Writing payloads to a sibling temp file first and renaming keeps two
    guarantees: a crash mid-save never leaves a half-written file under the
    final name, and **re-saving an artifact over itself is safe even while its
    arrays are memory-mapped** — the open mapping keeps the old inode alive
    while the new file takes over the directory entry (truncating the mapped
    file in place would SIGBUS every reader).
    """
    temp_path.replace(final_path)


def compression_spec(
    codec: Optional[str], level: Optional[int] = None
) -> Optional[Dict[str, object]]:
    """Normalise a codec request into the internal compression-spec dict.

    ``None`` / ``"none"`` mean "store raw" and return ``None``; otherwise the
    spec carries the codec name, effort level (codec default when omitted),
    chunk size and shuffle flag that every writer in this module consumes.

    Raises:
        ArtifactError: On an unknown codec name.
    """
    if codec is None or codec == "none":
        return None
    if codec not in CODECS:
        raise ArtifactError(
            f"unknown compression codec {codec!r} (supported: none, "
            + ", ".join(CODECS)
            + ")"
        )
    return {
        "codec": codec,
        "level": int(level) if level is not None else DEFAULT_LEVELS[codec],
        "chunk_elems": DEFAULT_CHUNK_ELEMS,
        "shuffle": True,
    }


def _add_stored_member(archive: zipfile.ZipFile, name: str, data: bytes) -> None:
    """Add one ``ZIP_STORED`` member with the pinned epoch timestamp."""
    info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
    info.compress_type = zipfile.ZIP_STORED
    info.external_attr = 0o644 << 16
    archive.writestr(info, data)


def _write_npz(
    path: Path,
    arrays: Dict[str, np.ndarray],
    compression: Optional[Dict[str, object]] = None,
    compressed_columns: frozenset = frozenset(),
) -> int:
    """Write ``arrays`` as a byte-deterministic ``.npz`` file.

    Unlike :func:`numpy.savez` this pins every zip member's timestamp to the zip
    epoch, so identical arrays always produce identical bytes. Raw members are
    stored (not deflated) so :func:`_mmap_npz` can map them in place. With a
    ``compression`` spec, each 1-D column named in ``compressed_columns`` is
    written as a ``<name>.chunks.json`` descriptor followed by independently
    compressed ``<name>.chunkNNNNN`` payload members (themselves ``ZIP_STORED``
    — the chunk codec already compressed them); everything else stays a raw
    ``.npy`` member, so one file freely mixes mmap-able and chunked columns.
    The file is written to a temp sibling and renamed into place (see
    :func:`_replace_into`).

    Returns:
        The total raw (pre-compression) payload bytes, for the manifest's
        compression-ratio accounting.
    """
    temp_path = path.with_name(path.name + ".tmp")
    raw_total = 0
    with zipfile.ZipFile(temp_path, "w", compression=zipfile.ZIP_STORED) as archive:
        for name in sorted(arrays):
            contiguous = np.ascontiguousarray(arrays[name])
            chunk_it = (
                compression is not None
                and name in compressed_columns
                and contiguous.ndim == 1
                and contiguous.size > 0
            )
            if not chunk_it:
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, contiguous, allow_pickle=False)
                data = buffer.getvalue()
                raw_total += len(data)
                _add_stored_member(archive, name + ".npy", data)
                continue
            raw_total += contiguous.nbytes
            codec = str(compression["codec"])
            level = int(compression["level"])
            chunk_elems = int(compression["chunk_elems"])
            shuffle = bool(compression["shuffle"])
            itemsize = contiguous.dtype.itemsize
            payloads = []
            chunk_meta = []
            for start in range(0, len(contiguous), chunk_elems):
                raw = contiguous[start : start + chunk_elems].tobytes()
                payload, crc = encode_chunk(raw, itemsize, codec, level, shuffle)
                payloads.append(payload)
                chunk_meta.append([len(payload), crc])
            descriptor = {
                "dtype": np.lib.format.dtype_to_descr(contiguous.dtype),
                "length": int(len(contiguous)),
                "chunk_elems": chunk_elems,
                "codec": codec,
                "level": level,
                "shuffle": shuffle,
                "chunks": chunk_meta,
            }
            _add_stored_member(
                archive,
                name + _CHUNK_DESCRIPTOR_SUFFIX,
                json.dumps(descriptor, sort_keys=True, separators=(",", ":")).encode(
                    "ascii"
                ),
            )
            for index, payload in enumerate(payloads):
                _add_stored_member(archive, f"{name}.chunk{index:05d}", payload)
    _replace_into(temp_path, path)
    return raw_total


def _write_bytes_atomic(path: Path, data: bytes) -> None:
    temp_path = path.with_name(path.name + ".tmp")
    temp_path.write_bytes(data)
    _replace_into(temp_path, path)


def _stored_member_offset(handle, path: Path, info: zipfile.ZipInfo) -> int:
    """Return the absolute file offset of a stored zip member's payload."""
    handle.seek(info.header_offset)
    header = handle.read(30)
    if len(header) != 30 or header[:4] != b"PK\x03\x04":
        raise ArtifactError(f"corrupt zip local header in {path.name}")
    name_length = int.from_bytes(header[26:28], "little")
    extra_length = int.from_bytes(header[28:30], "little")
    return info.header_offset + 30 + name_length + extra_length


def _npy_data_offset(path: Path, info: zipfile.ZipInfo) -> int:
    """Return the absolute file offset of a stored zip member's payload."""
    with open(path, "rb") as handle:
        return _stored_member_offset(handle, path, info)


def _chunked_column(
    path: Path,
    handle,
    column: str,
    descriptor: Dict[str, object],
    members: Dict[str, zipfile.ZipInfo],
) -> ChunkedColumn:
    """Assemble one :class:`ChunkedColumn` from its descriptor + chunk members."""
    try:
        dtype = np.dtype(descriptor["dtype"])
        length = int(descriptor["length"])
        chunk_elems = int(descriptor["chunk_elems"])
        codec = str(descriptor["codec"])
        shuffle = bool(descriptor["shuffle"])
        chunk_meta = list(descriptor["chunks"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(
            f"malformed chunk descriptor for column {column!r} in {path.name}: {exc}"
        ) from exc
    chunks = []
    for index, (payload_size, crc) in enumerate(chunk_meta):
        member = members.get(f"{column}.chunk{index:05d}")
        if member is None:
            raise ArtifactError(
                f"{path.name} is missing chunk {index} of column {column!r}"
            )
        offset = _stored_member_offset(handle, path, member)
        chunks.append((offset, int(payload_size), int(crc)))
    return ChunkedColumn(
        path,
        column,
        dtype,
        length,
        chunk_elems,
        codec,
        shuffle,
        chunks,
    )


def _mmap_npz(path: Path) -> Dict[str, np.ndarray]:
    """Open every array of an artifact ``.npz`` lazily.

    Raw ``.npy`` members become read-only memory maps; chunk-compressed columns
    (a ``.chunks.json`` descriptor plus ``.chunkNNNNN`` payload members) become
    :class:`~repro.service.chunked.ChunkedColumn` views that decode on demand.
    Falls back to an eager :func:`numpy.load` (with the writeable flag cleared)
    for members that are zip-deflated or otherwise un-mappable, so the loader
    keeps working on foreign npz files — only the laziness is lost.
    """
    arrays: Dict[str, np.ndarray] = {}
    descriptors: Dict[str, Dict[str, object]] = {}
    with zipfile.ZipFile(path, "r") as archive:
        members = {info.filename: info for info in archive.infolist()}
        for info in members.values():
            filename = info.filename
            if filename.endswith(_CHUNK_DESCRIPTOR_SUFFIX):
                column = filename[: -len(_CHUNK_DESCRIPTOR_SUFFIX)]
                try:
                    descriptors[column] = json.loads(archive.read(info))
                except ValueError as exc:
                    raise ArtifactError(
                        f"malformed chunk descriptor for column {column!r} "
                        f"in {path.name}: {exc}"
                    ) from exc
                continue
            if _CHUNK_MEMBER_RE.match(filename):
                continue  # payload member; picked up via its descriptor below
            name = filename[:-4] if filename.endswith(".npy") else filename
            if info.compress_type != zipfile.ZIP_STORED:
                loaded = np.load(io.BytesIO(archive.read(info)), allow_pickle=False)
                loaded.flags.writeable = False
                arrays[name] = loaded
                continue
            data_offset = _npy_data_offset(path, info)
            with open(path, "rb") as handle:
                handle.seek(data_offset)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                else:
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                array_offset = handle.tell()
            arrays[name] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=array_offset,
                shape=shape,
                order="F" if fortran else "C",
            )
        if descriptors:
            with open(path, "rb") as handle:
                for column, descriptor in descriptors.items():
                    arrays[column] = _chunked_column(
                        path, handle, column, descriptor, members
                    )
    return arrays


def _load_npz_eager(path: Path) -> Dict[str, np.ndarray]:
    """Load every array of an ``.npz`` into memory (used when ``mmap=False``).

    Goes through the lazy reader and materialises each column, so raw and
    chunk-compressed members come back identically (as plain owned arrays).
    """
    return {name: np.array(value) for name, value in _mmap_npz(path).items()}


# ---------------------------------------------------------------------- save / load
def _write_pickle_atomic(
    path: Path, payload: object, compression: Optional[Dict[str, object]]
) -> int:
    """Stream-pickle ``payload`` to ``path`` (optionally compressed wholesale).

    The pickler writes straight into the (compressing) file sink, so the full
    pickle byte string never exists in memory — at a million objects that is
    the difference between one and two resident copies of the corpus during
    save. Returns the raw (uncompressed) pickle size.
    """
    temp_path = path.with_name(path.name + ".tmp")
    with open(temp_path, "wb") as handle:
        if compression is None:
            sink = CompressingWriter(handle, None)
        else:
            sink = CompressingWriter(
                handle, str(compression["codec"]), int(compression["level"])
            )
        pickle.dump(payload, sink, protocol=_PICKLE_PROTOCOL)
        sink.finish()
    _replace_into(temp_path, path)
    return sink.raw_bytes


def save_bundle(
    bundle: "IndexBundle",
    path: PathLike,
    overwrite: bool = False,
    fingerprint: Optional[str] = None,
    shard: Optional[Dict[str, object]] = None,
    compression: Optional[Dict[str, object]] = None,
) -> ArtifactManifest:
    """Serialise ``bundle`` into the artifact directory at ``path``.

    Args:
        bundle: The bundle to persist. It must carry a frozen CSR snapshot
            (``bundle.compact``); bundles built with ``freeze_network=False`` are
            frozen on the fly.
        path: Target directory; created (including parents) if missing.
        overwrite: Allow replacing an existing artifact (a directory that already
            holds a manifest). Without it, an existing artifact raises.
        fingerprint: Optional precomputed :func:`dataset_fingerprint` of this
            bundle's (network, corpus); computed here when omitted. Callers that
            already fingerprinted the dataset (the artifact cache) pass it to
            avoid hashing the content twice.
        shard: Optional shard-linkage block recorded verbatim in the manifest
            (see :attr:`ArtifactManifest.shard`); only the spatial partitioner
            passes it.
        compression: Optional chunk-compression spec from
            :func:`compression_spec`; ``None`` (the default) writes the raw
            mmap-everything layout.

    Returns:
        The manifest that was written.

    Raises:
        ArtifactError: If ``path`` holds an artifact and ``overwrite`` is false.
    """
    directory = Path(path)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists() and not overwrite:
        raise ArtifactError(
            f"artifact already exists at {directory}; pass overwrite=True "
            f"(or --force on the CLI) to replace it"
        )
    directory.mkdir(parents=True, exist_ok=True)

    compact = (
        bundle.compact
        if bundle.compact is not None
        else CompactNetwork.from_network(bundle.network)
    )
    ids, xs, ys = compact.csr_node_arrays()
    indptr, indices, lengths = compact.csr_index_arrays()
    arrays = dict(zip(_NETWORK_FIELDS, (ids, xs, ys, indptr, indices, lengths)))
    raw_network = _write_npz(
        directory / NETWORK_NAME,
        arrays,
        compression=compression,
        compressed_columns=_COMPRESSED_NETWORK_COLUMNS,
    )

    # The columnar scoring index persists as raw arrays (mmap-able on load);
    # bundles from legacy construction paths freeze one on the fly.
    columnar = bundle.columnar
    if columnar is None:
        columnar = ColumnarScoringIndex.build(
            bundle.corpus, bundle.mapping, compact.coords, vsm=bundle.vsm
        )
    raw_scoring = _write_npz(
        directory / SCORING_NAME,
        columnar.arrays(),
        compression=compression,
        compressed_columns=_COMPRESSED_SCORING_COLUMNS,
    )

    # One pickle for the whole derived-index object graph: the corpus and the
    # vector-space model are referenced by the grid and the scorer, and pickling
    # them together stores each shared structure exactly once (and restores the
    # sharing on load). The scorer and VSM drop their columnar attachment when
    # pickled (see their __getstate__), so the columns are stored only once —
    # in scoring.npz.
    payload = (bundle.corpus, bundle.mapping, bundle.vsm, bundle.grid, bundle.scorer)
    raw_index = _write_pickle_atomic(directory / INDEX_NAME, payload, compression)

    # The sorted term list IS the columnar term-id table (id = position).
    vocabulary = list(columnar.terms)
    vocabulary_bytes = (
        json.dumps(vocabulary, sort_keys=True, indent=0) + "\n"
    ).encode("utf-8")
    _write_bytes_atomic(directory / VOCABULARY_NAME, vocabulary_bytes)

    compression_block: Optional[Dict[str, object]] = None
    if compression is not None:
        compression_block = {
            "codec": compression["codec"],
            "level": compression["level"],
            "chunk_elems": compression["chunk_elems"],
            "shuffle": compression["shuffle"],
            "raw_bytes": {
                NETWORK_NAME: raw_network,
                SCORING_NAME: raw_scoring,
                INDEX_NAME: raw_index,
                VOCABULARY_NAME: len(vocabulary_bytes),
            },
        }

    manifest = ArtifactManifest(
        format_version=FORMAT_VERSION,
        fingerprint=fingerprint or dataset_fingerprint(compact, bundle.corpus),
        grid_resolution=bundle.grid_resolution,
        scoring_mode=bundle.scoring_mode.value,
        lm_smoothing=columnar.lm_smoothing,
        stats={
            "num_nodes": compact.num_nodes,
            "num_edges": compact.num_edges,
            "num_objects": len(bundle.corpus),
            "vocabulary_size": len(vocabulary),
            "num_postings": columnar.num_postings,
            "num_mapped_nodes": columnar.num_nodes,
        },
        checksums={
            name: _sha256_file(directory / name)
            for name in (NETWORK_NAME, SCORING_NAME, INDEX_NAME, VOCABULARY_NAME)
        },
        shard=shard,
        compression=compression_block,
    )
    _write_bytes_atomic(manifest_path, manifest.to_json().encode("utf-8"))
    return manifest


def verify_artifact(path: PathLike) -> ArtifactManifest:
    """Check the artifact at ``path``: manifest readable, version supported,
    every payload file present with a matching checksum.

    Returns:
        The verified manifest.

    Raises:
        ArtifactError: On any missing file, version mismatch or checksum failure.
    """
    directory = Path(path)
    manifest = read_manifest(directory)
    for name, expected in manifest.checksums.items():
        file_path = directory / name
        if not file_path.is_file():
            raise ArtifactError(f"artifact file {name} missing from {directory}")
        actual = _sha256_file(file_path)
        if actual != expected:
            raise ArtifactError(
                f"checksum mismatch for {name} in {directory}: "
                f"manifest says {expected[:12]}…, file hashes to {actual[:12]}… "
                f"(artifact corrupted or tampered with)"
            )
    return manifest


def load_bundle(
    path: PathLike, mmap: bool = True, verify: bool = True
) -> "IndexBundle":
    """Load the artifact at ``path`` back into an :class:`IndexBundle`.

    Args:
        path: The artifact directory.
        mmap: Map the CSR arrays read-only from disk (the default). ``False``
            loads them eagerly into process memory — use it when the artifact
            lives on storage that will disappear (e.g. a deleted temp dir).
        verify: Verify file checksums against the manifest before loading
            (detects on-disk corruption; costs one streaming hash per file).

    Returns:
        A bundle equivalent to the one that was saved. Its ``network`` field is
        ``None`` until :meth:`IndexBundle.road_network
        <repro.service.bundle.IndexBundle.road_network>` thaws the snapshot on
        demand; every query path runs on the CSR snapshot and never needs it.

    Raises:
        ArtifactError: On a missing/malformed artifact, an unsupported format
            version, or (with ``verify``) a checksum mismatch.
    """
    from repro.service.bundle import IndexBundle  # deferred: bundle imports persist

    directory = Path(path)
    start = time.perf_counter()
    manifest = verify_artifact(directory) if verify else read_manifest(directory)

    network_path = directory / NETWORK_NAME
    scoring_path = directory / SCORING_NAME
    index_path = directory / INDEX_NAME
    vocabulary_path = directory / VOCABULARY_NAME
    if (
        not network_path.is_file()
        or not scoring_path.is_file()
        or not index_path.is_file()
        or not vocabulary_path.is_file()
    ):
        raise ArtifactError(f"artifact at {directory} is missing payload files")
    try:
        arrays = _mmap_npz(network_path) if mmap else _load_npz_eager(network_path)
    except ArtifactError:
        raise
    except Exception as exc:  # corrupt zip / bad npy header (reachable with verify=False)
        raise ArtifactError(f"cannot read {NETWORK_NAME}: {exc}") from exc
    missing = [name for name in _NETWORK_FIELDS if name not in arrays]
    if missing:
        raise ArtifactError(f"network.npz is missing arrays: {missing}")
    compact = CompactNetwork(*(arrays[name] for name in _NETWORK_FIELDS))

    try:
        scoring_arrays = (
            _mmap_npz(scoring_path) if mmap else _load_npz_eager(scoring_path)
        )
    except ArtifactError:
        raise
    except Exception as exc:
        raise ArtifactError(f"cannot read {SCORING_NAME}: {exc}") from exc
    missing = [name for name in _SCORING_FIELDS if name not in scoring_arrays]
    if missing:
        raise ArtifactError(f"scoring.npz is missing arrays: {missing}")
    try:
        terms = json.loads(vocabulary_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ArtifactError(f"malformed {VOCABULARY_NAME}: {exc}") from exc
    columnar = ColumnarScoringIndex.from_arrays(
        terms, scoring_arrays, lm_smoothing=manifest.lm_smoothing
    )

    try:
        index_bytes = index_path.read_bytes()
        if manifest.compression is not None:
            index_bytes = decompress_bytes(
                index_bytes,
                str(manifest.compression.get("codec")),
                context=INDEX_NAME,
            )
        corpus, mapping, vsm, grid, scorer = pickle.loads(index_bytes)
    except ArtifactError:
        raise
    except Exception as exc:  # unpicklable / truncated payload
        raise ArtifactError(f"cannot deserialise {INDEX_NAME}: {exc}") from exc
    # Re-attach the memmapped columns: the pickle deliberately excludes them.
    vsm.attach_columnar(columnar)
    scorer.attach_columnar(columnar)

    elapsed = time.perf_counter() - start
    bundle = IndexBundle(
        network=None,
        corpus=corpus,
        mapping=mapping,
        vsm=vsm,
        grid=grid,
        scorer=scorer,
        scoring_mode=scorer.mode,
        grid_resolution=manifest.grid_resolution,
        build_seconds={"load": elapsed, "total": elapsed},
        compact=compact,
        columnar=columnar,
    )
    # Seed the lazy fingerprint cache from the manifest: loaded bundles never
    # need to re-hash their own content to identify themselves.
    object.__setattr__(bundle, "_fingerprint", manifest.fingerprint)
    return bundle


# ---------------------------------------------------------------------- caching
def cached_dataset_bundle(
    dataset, cache_dir: PathLike, freeze_network: bool = True
) -> "IndexBundle":
    """Return an :class:`IndexBundle` for ``dataset``, reusing an on-disk artifact.

    The cache key is the dataset's content fingerprint, so a stale artifact (same
    name, different data) is never served: on a miss the bundle is assembled from
    the dataset's prebuilt structures, saved under
    ``<cache_dir>/<name>-<fingerprint[:12]>``, and returned.

    Costing note: computing the fingerprint requires freezing the network and
    hashing the content, and a hit additionally verifies and loads the artifact —
    so for a dataset already assembled in this process, the call is *not* faster
    than :meth:`IndexBundle.from_dataset`. What the cache buys is the durable,
    content-addressed artifact itself: every other consumer (CLI, services, CI
    fixtures, later benchmark processes) can ``load_bundle`` it without building
    the dataset, and concurrent loaders share the mmap page cache.
    """
    from repro.service.bundle import IndexBundle  # deferred: bundle imports persist

    # Freeze once and fingerprint the snapshot: the fingerprint needs the CSR
    # arrays anyway, and on a miss the same snapshot goes into the bundle.
    compact = CompactNetwork.from_network(dataset.network)
    fingerprint = dataset_fingerprint(compact, dataset.corpus)
    slug = "".join(
        ch if ch.isalnum() or ch in "-_" else "-" for ch in dataset.name.lower()
    )
    # The directory name carries the grid resolution and the manifest check
    # covers every build parameter: the same (network, corpus) content indexed
    # differently (e.g. a grid-resolution ablation) must never alias.
    directory = (
        Path(cache_dir) / f"{slug}-g{dataset.grid.resolution}-{fingerprint[:12]}"
    )
    try:
        manifest = read_manifest(directory)
        if (
            manifest.fingerprint == fingerprint
            and manifest.grid_resolution == dataset.grid.resolution
            and manifest.scoring_mode == dataset.scorer.mode.value
        ):
            return load_bundle(directory)
    except ArtifactError:
        pass  # absent, stale or unreadable: rebuild below
    bundle = IndexBundle.from_dataset(
        dataset, freeze_network=freeze_network, compact=compact if freeze_network else None
    )
    save_bundle(bundle, directory, overwrite=True, fingerprint=fingerprint)
    return bundle
