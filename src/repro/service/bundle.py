"""The shared, immutable index state behind an engine: one build, many queries.

Historically :class:`~repro.engine.LCMSREngine` built the object → node mapping, the
vector-space model, the grid + inverted-list index and the relevance scorer inline in
its constructor, which made the index state impossible to share: every engine (and
every worker that wanted its own engine) paid the full offline build again.
:class:`IndexBundle` extracts that construction into a standalone, reusable value
object. A bundle is built once — :meth:`IndexBundle.build` — and can then back any
number of engines and any number of :class:`~repro.service.query_service.QueryService`
workers concurrently: after construction the bundle is never mutated, so sharing it
across threads is safe.

Bundles also persist: :meth:`IndexBundle.save` writes a versioned on-disk artifact
(manifest + mmap-able CSR arrays + pickled index structures, see
:mod:`repro.service.persist`) and :meth:`IndexBundle.load` restores it without
re-running any of the offline build — the path behind
:meth:`LCMSREngine.from_artifact <repro.engine.LCMSREngine.from_artifact>` and the
``python -m repro`` CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.exceptions import QueryError
from repro.index.grid import GridIndex
from repro.network.compact import CompactNetwork, GraphView
from repro.network.graph import RoadNetwork
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import NodeObjectMap, map_objects_to_network
from repro.textindex.columnar import ColumnarScoringIndex, WeightPipeline
from repro.textindex.relevance import RelevanceScorer, ScoringMode
from repro.textindex.vector_space import VectorSpaceModel

if TYPE_CHECKING:  # pragma: no cover - typing only (persist imports the bundle)
    from repro.datasets.synthetic import SyntheticDataset
    from repro.service.persist import ArtifactManifest, PathLike


@dataclass(frozen=True)
class IndexBundle:
    """Everything the serving path needs that is query-independent.

    Attributes:
        network: The road network (paper Section 2's graph ``G``). ``None`` for
            bundles restored from an on-disk artifact — the query path runs
            entirely on the CSR snapshot; call :meth:`road_network` when a
            mutable dict-backed copy is genuinely needed (it thaws the snapshot
            on first use and caches the result).
        corpus: The geo-textual objects ``O``.
        mapping: The object → nearest-node mapping that turns object scores into the
            node weights σ_v.
        vsm: The corpus-wide TF-IDF vector-space model (Section 3, Equation 2).
        grid: The grid + inverted-list index probed on the hot path.
        scorer: The direct relevance scorer (used when ``scoring_mode`` is not
            ``TEXT_RELEVANCE``, and for index cross-checks).
        scoring_mode: Which per-object weight definition the bundle scores with.
        grid_resolution: The resolution the grid was built with (kept for reporting).
        build_seconds: Wall-clock time of each offline build step plus a ``"total"``
            entry; mirrors the paper's offline / online cost split.
        compact: The frozen CSR snapshot of ``network``
            (:class:`~repro.network.compact.CompactNetwork`), built once here and
            shared read-only by every engine / service query — the per-query
            window extraction runs on this snapshot, not on the dict-backed
            graph. ``None`` only when the bundle was built with
            ``freeze_network=False`` (benchmark comparisons, legacy callers).
        columnar: The frozen columnar scoring index
            (:class:`~repro.textindex.columnar.ColumnarScoringIndex`) — CSR
            term → object postings plus object/node tables — built once here
            and used by every query to compute σ_v with vectorised array
            kernels (:meth:`weight_pipeline`). ``None`` only for legacy
            construction paths that skip it; queries then fall back to the
            grid-postings / object-loop paths.
    """

    network: Optional[RoadNetwork]
    corpus: ObjectCorpus
    mapping: NodeObjectMap
    vsm: VectorSpaceModel
    grid: GridIndex
    scorer: RelevanceScorer
    scoring_mode: ScoringMode
    grid_resolution: int
    build_seconds: Dict[str, float]
    compact: Optional[CompactNetwork] = None
    columnar: Optional[ColumnarScoringIndex] = None

    @classmethod
    def build(
        cls,
        network: RoadNetwork,
        corpus: ObjectCorpus,
        grid_resolution: int = 48,
        scoring_mode: ScoringMode = ScoringMode.TEXT_RELEVANCE,
        freeze_network: bool = True,
    ) -> "IndexBundle":
        """Run the full offline indexing pipeline once.

        Args:
            network: The road network to index.
            corpus: The geo-textual objects to index.
            grid_resolution: Cells per axis of the spatial grid; must be positive.
            scoring_mode: Per-object weight definition (see
                :class:`~repro.textindex.relevance.ScoringMode`).
            freeze_network: When ``True`` (default), also freeze ``network`` into
                a CSR :class:`~repro.network.compact.CompactNetwork` snapshot that
                every query reuses for window extraction and traversal. ``False``
                keeps the dict backend on the hot path (used by the backend
                benchmark to compare the two).

        Returns:
            The immutable bundle holding every index structure.

        Raises:
            QueryError: If ``grid_resolution`` is not a positive integer — raised
                before any expensive build work starts so misconfiguration fails
                fast.
        """
        if not isinstance(grid_resolution, int) or grid_resolution <= 0:
            raise QueryError(
                f"grid_resolution must be a positive integer, got {grid_resolution!r}"
            )
        timings: Dict[str, float] = {}
        total_start = time.perf_counter()

        start = time.perf_counter()
        mapping = map_objects_to_network(network, corpus)
        timings["mapping"] = time.perf_counter() - start

        start = time.perf_counter()
        vsm = VectorSpaceModel(corpus)
        timings["vsm"] = time.perf_counter() - start

        start = time.perf_counter()
        grid = GridIndex(corpus, resolution=grid_resolution, vsm=vsm)
        timings["grid"] = time.perf_counter() - start

        start = time.perf_counter()
        # Freeze the corpus + mapping into the columnar scoring index once: the
        # per-query σ_v computation then runs as vectorised array kernels.
        columnar = ColumnarScoringIndex.build(corpus, mapping, network.coords, vsm=vsm)
        vsm.attach_columnar(columnar)
        timings["columnar"] = time.perf_counter() - start

        start = time.perf_counter()
        # Share the bundle's VSM instead of letting the scorer build an identical
        # second model: halves the text-model build time and, when the bundle is
        # persisted, stores the model once instead of twice.
        scorer = RelevanceScorer(
            corpus, mapping, mode=scoring_mode, vsm=vsm, columnar=columnar
        )
        timings["scorer"] = time.perf_counter() - start

        compact: Optional[CompactNetwork] = None
        if freeze_network:
            start = time.perf_counter()
            compact = CompactNetwork.from_network(network)
            timings["freeze"] = time.perf_counter() - start

        timings["total"] = time.perf_counter() - total_start
        return cls(
            network=network,
            compact=compact,
            corpus=corpus,
            mapping=mapping,
            vsm=vsm,
            grid=grid,
            scorer=scorer,
            scoring_mode=scoring_mode,
            grid_resolution=grid_resolution,
            build_seconds=timings,
            columnar=columnar,
        )

    @classmethod
    def build_streaming(
        cls,
        network: RoadNetwork,
        objects,
        grid_resolution: int = 48,
        scoring_mode: ScoringMode = ScoringMode.TEXT_RELEVANCE,
    ) -> "IndexBundle":
        """Index an object *iterator* in bounded memory (the 1M-object path).

        Where :meth:`build` materialises every derived structure eagerly — the
        vector-space model's corpus-sized weight tables, the grid's
        ``resolution²`` inverted lists — this path consumes ``objects`` one at
        a time and defers everything the serving hot path doesn't need:

        1. **Accumulate pass.** Objects stream into the corpus (incremental
           document frequencies / collection statistics) and are mapped to
           their nearest network nodes. Nothing object-count-sized beyond the
           corpus itself is resident.
        2. **Column emission pass.** The columnar scoring index is built with
           per-object inline ``wto`` arithmetic (see
           :meth:`ColumnarScoringIndex.build
           <repro.textindex.columnar.ColumnarScoringIndex.build>` with
           ``vsm=None``) — bit-identical columns to an eager build, no weight
           tables.
        3. **Lazy shells.** The vector-space model and the grid are created in
           lazy mode: they answer exactly like their eager counterparts but
           compute on first use, and they pickle without their caches — so a
           streamed artifact's ``index.pkl`` stays small.

        Query results are byte-identical to :meth:`build` of the same
        (network, objects): the deferred structures replay the same arithmetic
        on demand, and the columnar columns — which every hot-path query reads
        — are bit-equal. Only the artifact's ``index.pkl`` bytes differ (no
        precomputed tables inside).

        Args:
            network: The road network to index.
            objects: An iterable/generator of
                :class:`~repro.objects.geoobject.GeoTextualObject`; consumed
                once, never materialised as a list.
            grid_resolution: Cells per axis of the (lazy) spatial grid.
            scoring_mode: Per-object weight definition.

        Returns:
            The immutable bundle, with a frozen CSR network snapshot.

        Raises:
            QueryError: If ``grid_resolution`` is not a positive integer.
        """
        if not isinstance(grid_resolution, int) or grid_resolution <= 0:
            raise QueryError(
                f"grid_resolution must be a positive integer, got {grid_resolution!r}"
            )
        timings: Dict[str, float] = {}
        total_start = time.perf_counter()

        start = time.perf_counter()
        corpus = ObjectCorpus()
        for obj in objects:
            corpus.add(obj)
        timings["accumulate"] = time.perf_counter() - start

        start = time.perf_counter()
        mapping = map_objects_to_network(network, corpus)
        timings["mapping"] = time.perf_counter() - start

        start = time.perf_counter()
        vsm = VectorSpaceModel(corpus, lazy=True)
        grid = GridIndex(corpus, resolution=grid_resolution, vsm=vsm, lazy=True)
        timings["lazy_shells"] = time.perf_counter() - start

        start = time.perf_counter()
        columnar = ColumnarScoringIndex.build(corpus, mapping, network.coords)
        vsm.attach_columnar(columnar)
        timings["columnar"] = time.perf_counter() - start

        start = time.perf_counter()
        scorer = RelevanceScorer(
            corpus, mapping, mode=scoring_mode, vsm=vsm, columnar=columnar
        )
        timings["scorer"] = time.perf_counter() - start

        start = time.perf_counter()
        compact = CompactNetwork.from_network(network)
        timings["freeze"] = time.perf_counter() - start

        timings["total"] = time.perf_counter() - total_start
        return cls(
            network=network,
            compact=compact,
            corpus=corpus,
            mapping=mapping,
            vsm=vsm,
            grid=grid,
            scorer=scorer,
            scoring_mode=scoring_mode,
            grid_resolution=grid_resolution,
            build_seconds=timings,
            columnar=columnar,
        )

    @classmethod
    def from_dataset(
        cls,
        dataset: "SyntheticDataset",
        freeze_network: bool = True,
        compact: Optional[CompactNetwork] = None,
    ) -> "IndexBundle":
        """Wrap an already-assembled dataset into a bundle without rebuilding.

        :func:`repro.datasets.synthetic.assemble_dataset` has already paid for the
        mapping, the vector-space model and the grid; this constructor reuses
        those structures directly (the only new work is the optional CSR freeze).
        It is the cheap path behind the ``python -m repro build`` CLI and the
        evaluation runner's artifact cache — by contrast :meth:`build` re-derives
        everything from the raw network + corpus.

        Args:
            dataset: The assembled dataset to wrap.
            freeze_network: Also freeze the network into a CSR snapshot (default).
            compact: Optional pre-frozen snapshot of ``dataset.network`` to reuse
                instead of freezing again (the artifact cache freezes early for
                fingerprinting).

        Returns:
            A bundle sharing the dataset's index structures.
        """
        timings: Dict[str, float] = {}
        start = time.perf_counter()
        if freeze_network and compact is None:
            compact = CompactNetwork.from_network(dataset.network)
        elif not freeze_network:
            compact = None
        timings["freeze"] = time.perf_counter() - start

        vsm = dataset.grid.vector_space_model
        scorer = dataset.scorer
        start = time.perf_counter()
        columnar = scorer.columnar
        if columnar is None:
            columnar = ColumnarScoringIndex.build(
                dataset.corpus, dataset.mapping, dataset.network.coords, vsm=vsm
            )
            scorer.attach_columnar(columnar)
        vsm.attach_columnar(columnar)
        timings["columnar"] = time.perf_counter() - start
        timings["total"] = timings["freeze"] + timings["columnar"]
        return cls(
            network=dataset.network,
            corpus=dataset.corpus,
            mapping=dataset.mapping,
            vsm=vsm,
            grid=dataset.grid,
            scorer=scorer,
            scoring_mode=scorer.mode,
            grid_resolution=dataset.grid.resolution,
            build_seconds=timings,
            compact=compact,
            columnar=columnar,
        )

    # ------------------------------------------------------------------ persistence
    def save(
        self,
        path: "PathLike",
        overwrite: bool = False,
        compress: Optional[str] = None,
        compress_level: Optional[int] = None,
    ) -> "ArtifactManifest":
        """Persist the bundle as a versioned on-disk artifact directory.

        See :func:`repro.service.persist.save_bundle` for the layout, determinism
        and versioning guarantees.

        Args:
            path: Target artifact directory (created if missing).
            overwrite: Replace an existing artifact instead of raising.
            compress: Optional chunk-compression codec (``"zlib"`` / ``"lzma"``;
                ``None`` or ``"none"`` stores the raw mmap-everything layout).
            compress_level: Optional codec effort level (codec default when
                omitted).

        Returns:
            The written :class:`~repro.service.persist.ArtifactManifest`.

        Raises:
            ArtifactError: If ``path`` already holds an artifact and
                ``overwrite`` is false, or ``compress`` names an unknown codec.
        """
        from repro.service import persist

        return persist.save_bundle(
            self,
            path,
            overwrite=overwrite,
            compression=persist.compression_spec(compress, compress_level),
        )

    @classmethod
    def load(
        cls, path: "PathLike", mmap: bool = True, verify: bool = True
    ) -> "IndexBundle":
        """Restore a bundle from an artifact directory written by :meth:`save`.

        The CSR arrays come back as read-only memory maps (unless ``mmap`` is
        false), so loading is I/O-bound instead of rebuild-bound.

        Args:
            path: The artifact directory.
            mmap: Memory-map the network arrays (default) or load them eagerly.
            verify: Check file checksums against the manifest first.

        Returns:
            A bundle answering queries identically to the one that was saved.

        Raises:
            ArtifactError: On a missing/corrupt artifact or version mismatch.
        """
        from repro.service import persist

        return persist.load_bundle(path, mmap=mmap, verify=verify)

    def road_network(self) -> RoadNetwork:
        """The mutable dict-backed road network, thawed from the snapshot if needed.

        Bundles loaded from an artifact carry only the CSR snapshot; the first
        call reconstructs a :class:`RoadNetwork` from it and caches it on the
        bundle. Query execution never needs this — it exists for callers that
        want to mutate or re-index the graph.
        """
        if self.network is None:
            assert self.compact is not None
            thawed = self.compact.to_network()
            # Lock-free single-assignment: a racing thread may thaw its own copy,
            # but whichever assignment lands is what every caller returns (the
            # re-read below), so all threads share one RoadNetwork afterwards.
            if self.network is None:
                object.__setattr__(self, "network", thawed)
        return self.network

    # A plain class attribute (no annotation), so it is NOT a dataclass field:
    # the lazily computed fingerprint cache behind :meth:`fingerprint`.
    _fingerprint = None

    def fingerprint(self) -> str:
        """The dataset fingerprint of this bundle's (network, corpus).

        Computed lazily with :func:`repro.service.persist.dataset_fingerprint`
        and cached on the bundle (loading an artifact seeds the cache from the
        manifest, so loaded bundles never re-hash).  Two bundles answer queries
        identically only if their fingerprints match, which is why the service
        cache keys fold this in.
        """
        cached = self._fingerprint
        if cached is None:
            from repro.service.persist import dataset_fingerprint

            source = self.compact if self.compact is not None else self.network
            cached = dataset_fingerprint(source, self.corpus)
            # Lock-free single-assignment, same pattern as road_network().
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def weight_pipeline(self) -> Optional[WeightPipeline]:
        """The vectorised σ_v pipeline queries should take, or ``None``.

        The pipeline lives on the scorer (which owns the smoothing-compatibility
        check for language-model bundles); it is ``None`` when the bundle has no
        columnar index or the scorer's LM smoothing differs from the index's
        precomputed columns — queries then fall back to the scalar paths.
        """
        return self.scorer.pipeline

    def graph_view(self) -> GraphView:
        """The network representation the query hot path should traverse.

        Returns the frozen CSR snapshot when the bundle was built with
        ``freeze_network=True`` (the default), the dict-backed network otherwise.
        Query results are identical on either backend; only the cost differs.
        """
        return self.compact if self.compact is not None else self.network

    def describe(self) -> str:
        """One-line summary of the indexed dataset (used in logs and reports)."""
        backend = "csr" if self.compact is not None else "dict"
        view = self.graph_view()
        # Don't force a lazy grid to materialise its cells just for a log line.
        if getattr(self.grid, "cells_built", True):
            cells = f"{self.grid.num_nonempty_cells} non-empty cells"
        else:
            cells = "cells deferred"
        return (
            f"{view.num_nodes} nodes / {view.num_edges} edges "
            f"({backend} backend), "
            f"{len(self.corpus)} objects, grid {self.grid_resolution}x{self.grid_resolution} "
            f"({cells}), "
            f"scoring={self.scoring_mode.value}, "
            f"built in {self.build_seconds.get('total', 0.0):.3f}s"
        )
