"""Running query workloads through the solvers and collecting per-query outcomes."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Union

from repro.core.instance import (
    PRUNING_POLICIES,
    SOLVER_BACKENDS,
    ProblemInstance,
    build_instance,
)
from repro.core.query import LCMSRQuery
from repro.core.result import RegionResult
from repro.datasets.synthetic import SyntheticDataset
from repro.evaluation.metrics import average_relative_ratio, mean
from repro.service.bundle import IndexBundle


def _validated_solver_backend(solver_backend: Optional[str]) -> str:
    """Normalise the runner's solver-backend selector (``None`` → ``"auto"``)."""
    resolved = "auto" if solver_backend is None else solver_backend
    if resolved not in SOLVER_BACKENDS:
        raise ValueError(f"unknown solver backend {solver_backend!r}")
    return resolved


def _validated_pruning(pruning: Optional[str]) -> str:
    """Normalise the runner's pruning-policy selector (``None`` → ``"auto"``)."""
    resolved = "auto" if pruning is None else pruning
    if resolved not in PRUNING_POLICIES:
        raise ValueError(f"unknown pruning policy {pruning!r}")
    return resolved


class LCMSRSolverProtocol(Protocol):
    """Structural type of an LCMSR solver (APP / TGEN / Greedy / Exact)."""

    name: str

    def solve(self, instance: ProblemInstance) -> RegionResult:  # pragma: no cover
        ...


@dataclass
class QueryOutcome:
    """One (query, algorithm) execution."""

    query: LCMSRQuery
    result: RegionResult

    @property
    def weight(self) -> float:
        """Weight of the returned region."""
        return self.result.weight

    @property
    def runtime(self) -> float:
        """Solver runtime in seconds (excludes instance building)."""
        return self.result.runtime_seconds


@dataclass
class AlgorithmRun:
    """All outcomes of one algorithm over one query workload."""

    algorithm: str
    outcomes: List[QueryOutcome] = field(default_factory=list)

    @property
    def mean_runtime(self) -> float:
        """Mean solver runtime over the workload, in seconds."""
        return mean([outcome.runtime for outcome in self.outcomes])

    @property
    def mean_weight(self) -> float:
        """Mean region weight over the workload."""
        return mean([outcome.weight for outcome in self.outcomes])

    def weights(self) -> List[float]:
        """Per-query region weights, in workload order."""
        return [outcome.weight for outcome in self.outcomes]

    def relative_ratio_against(self, reference: "AlgorithmRun") -> float:
        """The paper's accuracy measure: mean per-query weight ratio vs. ``reference``."""
        return average_relative_ratio(self.weights(), reference.weights())


class ExperimentRunner:
    """Builds instances once per query and runs any number of solvers over them.

    Args:
        dataset: The dataset to query.
        use_grid_index: When ``True`` (default) node weights come from the indexed
            hot path; when ``False`` the direct object-loop scorer is used
            (useful for cross-checking the index).
        weight_backend: Which σ_v implementation instance builds use.
            ``None`` (default) resolves to ``"columnar"`` when the bundle carries
            a columnar pipeline, else to the legacy resolution through
            ``use_grid_index``. Explicit values: ``"columnar"`` (vectorised
            pipeline, required present), ``"grid"`` (per-cell postings walk, the
            scalar indexed path), ``"scorer"`` (object-loop reference). The
            columnar and scorer backends produce bit-identical weights; the
            grid backend agrees up to float summation order.
        solver_backend: Which solver substrate the built instances request
            (mirrors ``weight_backend`` one layer down). ``None`` (default)
            leaves instances on ``"auto"``: solvers take the dense
            position-indexed hot loops exactly when the instance builder
            attached a :class:`~repro.core.dense.DenseInstance` (the columnar
            path over a frozen network), the dict reference loops otherwise.
            Explicit values: ``"dense"`` (force the substrate — built on demand
            even for scalar weight backends) and ``"dict"`` (force the
            reference loops). Both backends return byte-identical results; only
            the solver runtime differs.
        pruning: Bound-based pruning policy the built instances carry. ``None``
            (default) resolves to ``"auto"``; see
            :data:`~repro.core.instance.PRUNING_POLICIES`. Results are
            byte-identical under every policy; only skip counters and runtime
            differ.
        artifact_cache_dir: Optional directory of persisted index artifacts (see
            :mod:`repro.service.persist`). When given, the runner keys the
            dataset by content fingerprint and publishes (or reuses) one on-disk
            artifact per dataset. The fingerprint itself costs a CSR freeze plus
            a content hash on every construction, so this is not an intra-process
            shortcut — its value is the durable artifact: other consumers (the
            CLI, services, CI fixtures, repeated benchmark processes) load it via
            ``IndexBundle.load`` / ``from_artifact`` without assembling the
            dataset at all, and concurrent processes share the mmap page cache.
    """

    def __init__(
        self,
        dataset: SyntheticDataset,
        use_grid_index: bool = True,
        artifact_cache_dir: Optional[Union[str, Path]] = None,
        weight_backend: Optional[str] = None,
        solver_backend: Optional[str] = None,
        pruning: Optional[str] = None,
    ) -> None:
        self._use_grid_index = use_grid_index
        self._weight_backend = weight_backend
        self._solver_backend = _validated_solver_backend(solver_backend)
        self._pruning = _validated_pruning(pruning)
        if artifact_cache_dir is not None:
            from repro.service.persist import cached_dataset_bundle

            bundle = cached_dataset_bundle(dataset, artifact_cache_dir)
        else:
            # Freeze the network once: every instance build then windows the CSR
            # snapshot instead of rebuilding dict subgraphs (results are identical
            # on both backends; see tests/core/test_backend_parity.py).
            bundle = IndexBundle.from_dataset(dataset)
        self._attach(bundle)

    def _attach(self, bundle: IndexBundle) -> None:
        self._bundle = bundle
        self._graph = bundle.graph_view()
        backend = self._weight_backend
        if backend is None:
            if not self._use_grid_index:
                backend = "scorer"  # explicit index-free cross-check request
            elif bundle.weight_pipeline() is not None:
                backend = "columnar"
            else:
                backend = "grid"
        if backend not in ("columnar", "grid", "scorer"):
            raise ValueError(f"unknown weight backend {backend!r}")
        if backend == "columnar" and bundle.weight_pipeline() is None:
            raise ValueError("the bundle carries no columnar weight pipeline")
        self._resolved_backend = backend

    @classmethod
    def from_bundle(
        cls,
        bundle: IndexBundle,
        use_grid_index: bool = True,
        weight_backend: Optional[str] = None,
        solver_backend: Optional[str] = None,
        pruning: Optional[str] = None,
    ) -> "ExperimentRunner":
        """Create a runner over an existing bundle (e.g. one loaded from an artifact).

        Args:
            bundle: The prebuilt (or artifact-loaded) index state.
            use_grid_index: As in the constructor.
            weight_backend: As in the constructor.
            solver_backend: As in the constructor.
            pruning: As in the constructor.

        Returns:
            A runner that shares the bundle's indexes without any build work.
        """
        runner = cls.__new__(cls)
        runner._use_grid_index = use_grid_index
        runner._weight_backend = weight_backend
        runner._solver_backend = _validated_solver_backend(solver_backend)
        runner._pruning = _validated_pruning(pruning)
        runner._attach(bundle)
        return runner

    @property
    def bundle(self) -> IndexBundle:
        """The index state the runner executes against."""
        return self._bundle

    @property
    def weight_backend(self) -> str:
        """The resolved σ_v backend instance builds use."""
        return self._resolved_backend

    @property
    def solver_backend(self) -> str:
        """The solver substrate built instances request (``"auto"`` when unset)."""
        return self._solver_backend

    @property
    def pruning(self) -> str:
        """The pruning policy built instances carry (``"auto"`` when unset)."""
        return self._pruning

    def build(self, query: LCMSRQuery) -> ProblemInstance:
        """Build the solver input for one query."""
        if self._resolved_backend == "columnar":
            instance = build_instance(
                self._graph,
                query,
                pipeline=self._bundle.weight_pipeline(),
                pruning=self._pruning,
            )
        elif self._resolved_backend == "grid":
            instance = build_instance(
                self._graph,
                query,
                grid_index=self._bundle.grid,
                mapping=self._bundle.mapping,
                pruning=self._pruning,
            )
        else:
            instance = build_instance(
                self._graph, query, scorer=self._bundle.scorer, pruning=self._pruning
            )
        if self._solver_backend != "auto":
            instance = instance.with_backend(self._solver_backend)
        return instance

    def run(
        self,
        queries: Sequence[LCMSRQuery],
        solvers: Sequence[LCMSRSolverProtocol],
    ) -> Dict[str, AlgorithmRun]:
        """Run every solver on every query.

        Instances are built once per query and shared across solvers so that runtime
        comparisons reflect only the algorithms, as in the paper.

        Returns:
            ``algorithm name → AlgorithmRun``.
        """
        runs: Dict[str, AlgorithmRun] = {solver.name: AlgorithmRun(solver.name) for solver in solvers}
        for query in queries:
            instance = self.build(query)
            for solver in solvers:
                result = solver.solve(instance)
                runs[solver.name].outcomes.append(QueryOutcome(query=query, result=result))
        return runs

    def run_single(
        self, query: LCMSRQuery, solver: LCMSRSolverProtocol
    ) -> QueryOutcome:
        """Run one solver on one query."""
        instance = self.build(query)
        return QueryOutcome(query=query, result=solver.solve(instance))
