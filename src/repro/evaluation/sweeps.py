"""Parameter and query-argument sweeps (the x-axes of the paper's figures).

A :class:`ParameterSweep` runs a family of experiment settings — each a callable that
produces solvers and/or query workloads — and records one :class:`SweepPoint` per
x-axis value. The benchmark modules use it to regenerate each figure's series; the
sweep object also renders itself as the plain-text table EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.query import LCMSRQuery
from repro.evaluation.runner import AlgorithmRun, ExperimentRunner, LCMSRSolverProtocol


@dataclass
class SweepPoint:
    """One x-axis point of a figure: the value plus per-algorithm measurements.

    Attributes:
        x: The x-axis value (α, β, µ, |ψ|, ∆, Λ, k, ...).
        runtimes: ``algorithm → mean runtime (seconds)``.
        weights: ``algorithm → mean region weight``.
        ratios: ``algorithm → relative ratio against the reference algorithm``.
    """

    x: float
    runtimes: Dict[str, float] = field(default_factory=dict)
    weights: Dict[str, float] = field(default_factory=dict)
    ratios: Dict[str, float] = field(default_factory=dict)


@dataclass
class ParameterSweep:
    """A complete sweep: a list of points plus the axis label, ready to print."""

    axis: str
    points: List[SweepPoint] = field(default_factory=list)

    def add_point(self, point: SweepPoint) -> None:
        """Append one x-axis point."""
        self.points.append(point)

    def series(self, measure: str, algorithm: str) -> List[Tuple[float, float]]:
        """Return ``[(x, value)]`` for one algorithm and one measure.

        ``measure`` is one of ``"runtime"``, ``"weight"`` or ``"ratio"``.
        """
        attribute = {"runtime": "runtimes", "weight": "weights", "ratio": "ratios"}[measure]
        return [
            (point.x, getattr(point, attribute).get(algorithm, float("nan")))
            for point in self.points
        ]

    def algorithms(self) -> List[str]:
        """All algorithm names appearing in the sweep."""
        names: List[str] = []
        for point in self.points:
            for name in point.runtimes:
                if name not in names:
                    names.append(name)
        return names


def sweep_query_arguments(
    runner: ExperimentRunner,
    axis: str,
    settings: Sequence[Tuple[float, Sequence[LCMSRQuery]]],
    solvers: Sequence[LCMSRSolverProtocol],
    reference: str = "TGEN",
) -> ParameterSweep:
    """Run the Figure-15/16-style sweep: vary a query argument, measure all solvers.

    Args:
        runner: The experiment runner bound to a dataset.
        axis: Axis label ("keywords", "delta_km", "lambda_km2", "k", ...).
        settings: ``(x value, query workload)`` pairs, one per x-axis point.
        solvers: The solvers to compare.
        reference: Algorithm against which the relative ratio is computed (the paper
            uses TGEN because it is consistently the most accurate).

    Returns:
        The populated :class:`ParameterSweep`.
    """
    sweep = ParameterSweep(axis=axis)
    for x_value, workload in settings:
        runs = runner.run(workload, solvers)
        point = SweepPoint(x=x_value)
        reference_run: Optional[AlgorithmRun] = runs.get(reference)
        for name, run in runs.items():
            point.runtimes[name] = run.mean_runtime
            point.weights[name] = run.mean_weight
            if reference_run is not None and reference_run.outcomes:
                point.ratios[name] = run.relative_ratio_against(reference_run)
        sweep.add_point(point)
    return sweep


def sweep_solver_parameter(
    runner: ExperimentRunner,
    axis: str,
    workload: Sequence[LCMSRQuery],
    solver_factory: Callable[[float], LCMSRSolverProtocol],
    values: Sequence[float],
) -> ParameterSweep:
    """Run the Figure-7..14-style sweep: vary one solver parameter on a fixed workload.

    Args:
        runner: The experiment runner bound to a dataset.
        axis: Axis label ("alpha", "beta", "mu", ...).
        workload: The fixed query workload.
        solver_factory: Builds the solver for a given parameter value.
        values: The parameter values to try.

    Returns:
        The populated sweep; ratios are left empty (these figures report absolute
        region weight, not the relative ratio).
    """
    sweep = ParameterSweep(axis=axis)
    for value in values:
        solver = solver_factory(value)
        runs = runner.run(workload, [solver])
        run = runs[solver.name]
        point = SweepPoint(x=value)
        point.runtimes[solver.name] = run.mean_runtime
        point.weights[solver.name] = run.mean_weight
        sweep.add_point(point)
    return sweep
