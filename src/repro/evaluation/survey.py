"""Simulated user study for the LCMSR-vs-MaxRS comparison (paper Section 7.5).

The paper asks 5 human annotators to judge, for each of 20 queries, whether the region
returned by the LCMSR query or the region returned by the fixed-rectangle MaxRS query
is better, and reports that LCMSR wins on 90 % of the queries. Humans are not
available to a reproduction, so :class:`SimulatedAnnotator` scores a region on the
three properties the paper's discussion attributes the win to — number of relevant
objects covered, whether the objects are actually connected by road segments, and
compactness (weight per unit of road length) — with per-annotator random emphasis so
the five judges are not identical. ``run_survey`` then reports the fraction of queries
on which the LCMSR region is preferred by a majority, the paper's headline number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RegionJudgement:
    """The judgeable facts about one returned region.

    Attributes:
        relevant_objects: Number of query-relevant objects in the region.
        total_weight: Total relevance weight of those objects.
        connected: Whether the objects are connected by road segments within the
            region (always ``True`` for LCMSR answers, often ``False`` for MaxRS
            rectangles).
        road_length: Total road length of the region (the rectangle's connecting
            length for MaxRS).
    """

    relevant_objects: int
    total_weight: float
    connected: bool
    road_length: float


@dataclass
class SurveyResult:
    """Aggregate outcome of the simulated study."""

    queries: int
    lcmsr_wins: int
    maxrs_wins: int
    ties: int

    @property
    def lcmsr_preference_rate(self) -> float:
        """Fraction of queries where the LCMSR region was preferred (paper: 0.90)."""
        if self.queries == 0:
            return 0.0
        return self.lcmsr_wins / self.queries


class SimulatedAnnotator:
    """One simulated judge with individual emphasis on the three criteria.

    Args:
        seed: Per-annotator seed; different seeds give different (but reasonable)
            weightings of coverage, connectivity and compactness.
    """

    def __init__(self, seed: int) -> None:
        rng = random.Random(seed)
        # Every judge cares most about how many relevant places they can explore,
        # with individual taste for connectivity and compactness.
        self.coverage_emphasis = 0.5 + rng.random() * 0.3
        self.connectivity_emphasis = 0.2 + rng.random() * 0.3
        self.compactness_emphasis = 0.1 + rng.random() * 0.2

    def score(self, judgement: RegionJudgement) -> float:
        """Score one region; higher is better."""
        coverage = judgement.relevant_objects + judgement.total_weight
        connectivity = 1.0 if judgement.connected else 0.0
        compactness = (
            judgement.total_weight / judgement.road_length if judgement.road_length > 0 else judgement.total_weight
        )
        return (
            self.coverage_emphasis * coverage
            + self.connectivity_emphasis * connectivity * coverage
            + self.compactness_emphasis * compactness
        )

    def prefers_first(self, first: RegionJudgement, second: RegionJudgement) -> Optional[bool]:
        """Return ``True``/``False`` for a preference, ``None`` for a tie."""
        score_first = self.score(first)
        score_second = self.score(second)
        if abs(score_first - score_second) <= 1e-9:
            return None
        return score_first > score_second


def run_survey(
    pairs: Sequence[Tuple[RegionJudgement, RegionJudgement]],
    num_annotators: int = 5,
    majority: int = 3,
    seed: int = 2014,
) -> SurveyResult:
    """Judge ``(lcmsr, maxrs)`` region pairs with a panel of simulated annotators.

    Args:
        pairs: One ``(lcmsr_judgement, maxrs_judgement)`` pair per query.
        num_annotators: Panel size (the paper uses 5).
        majority: Votes needed to call a winner (the paper uses 3 of 5).
        seed: Base seed for the panel.

    Returns:
        The aggregated :class:`SurveyResult`.
    """
    annotators = [SimulatedAnnotator(seed + index) for index in range(num_annotators)]
    lcmsr_wins = 0
    maxrs_wins = 0
    ties = 0
    for lcmsr_judgement, maxrs_judgement in pairs:
        votes_lcmsr = 0
        votes_maxrs = 0
        for annotator in annotators:
            preference = annotator.prefers_first(lcmsr_judgement, maxrs_judgement)
            if preference is True:
                votes_lcmsr += 1
            elif preference is False:
                votes_maxrs += 1
        if votes_lcmsr >= majority:
            lcmsr_wins += 1
        elif votes_maxrs >= majority:
            maxrs_wins += 1
        else:
            ties += 1
    return SurveyResult(
        queries=len(pairs), lcmsr_wins=lcmsr_wins, maxrs_wins=maxrs_wins, ties=ties
    )
