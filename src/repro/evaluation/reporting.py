"""Plain-text rendering of experiment results (the rows/series the paper's figures show).

Besides the figure-shaped sweep tables, this module renders the serving layer's
accounting (:class:`repro.service.ServiceStats`): an aggregate summary via
:func:`format_service_stats` and the per-query cost breakdown via
:func:`format_query_timings`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.evaluation.sweeps import ParameterSweep

if TYPE_CHECKING:  # pragma: no cover - the service layer imports nothing from here
    from repro.service.stats import ServiceStats


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render a simple fixed-width table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted to four significant decimals.
        title: Optional title line printed above the table.

    Returns:
        The table as a single string (callers print or write it).
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(sweep: ParameterSweep, measure: str, title: Optional[str] = None) -> str:
    """Render one measure of a sweep as a table with one column per algorithm.

    Args:
        sweep: The populated sweep.
        measure: ``"runtime"``, ``"weight"`` or ``"ratio"``.
        title: Optional title; defaults to ``"<measure> vs <axis>"``.

    Returns:
        The formatted table.
    """
    algorithms = sweep.algorithms()
    headers = [sweep.axis] + algorithms
    rows: List[List[object]] = []
    for point in sweep.points:
        source = {"runtime": point.runtimes, "weight": point.weights, "ratio": point.ratios}[
            measure
        ]
        rows.append([point.x] + [source.get(name, float("nan")) for name in algorithms])
    return format_table(headers, rows, title or f"{measure} vs {sweep.axis}")


def format_service_stats(stats: "ServiceStats", title: Optional[str] = None) -> str:
    """Render a service's aggregate accounting as a two-column table.

    Args:
        stats: A snapshot from :meth:`repro.service.QueryService.stats`.
        title: Optional title line; defaults to ``"query service statistics"``.

    Returns:
        The formatted summary (queries, hit rates, time split, cache occupancy).
    """
    rows: List[Sequence[object]] = [
        ("queries served", stats.queries),
        ("result-cache hits", stats.result_hits),
        ("result-cache hit rate", stats.result_hit_rate),
        ("instance-cache hits", stats.instance_hits),
        ("mean latency (s)", stats.mean_latency_seconds),
        ("p50 latency (s)", stats.p50_latency_seconds),
        ("p95 latency (s)", stats.p95_latency_seconds),
        ("p99 latency (s)", stats.p99_latency_seconds),
        ("total build time (s)", stats.total_build_seconds),
        ("total solve time (s)", stats.total_solve_seconds),
        ("total service time (s)", stats.total_seconds),
        ("result cache size", f"{stats.result_cache.size}/{stats.result_cache.max_size}"),
        ("result cache evictions", stats.result_cache.evictions),
        ("instance cache size",
         f"{stats.instance_cache.size}/{stats.instance_cache.max_size}"),
        ("instance cache evictions", stats.instance_cache.evictions),
    ]
    return format_table(
        ["measure", "value"], rows, title or "query service statistics"
    )


def format_query_timings(
    stats: "ServiceStats", limit: Optional[int] = None, title: Optional[str] = None
) -> str:
    """Render the per-query cost breakdown, one row per served query.

    Args:
        stats: A snapshot from :meth:`repro.service.QueryService.stats`.
        limit: Show only the last ``limit`` queries when given.
        title: Optional title line; defaults to ``"per-query timings"``.

    Returns:
        The formatted table (keywords, algorithm, cache outcome, build / solve /
        total seconds).
    """
    if limit is None:
        timings = stats.timings
    else:
        # timings[-0:] would be the whole list, not "the last zero entries".
        timings = stats.timings[-limit:] if limit > 0 else []
    rows: List[Sequence[object]] = []
    for timing in timings:
        if timing.result_cache_hit:
            outcome = "result-hit"
        elif timing.instance_cache_hit:
            outcome = "instance-hit"
        else:
            outcome = "miss"
        rows.append(
            (
                " ".join(timing.key.keywords),
                timing.algorithm,
                outcome,
                timing.build_seconds,
                timing.solve_seconds,
                timing.total_seconds,
            )
        )
    return format_table(
        ["keywords", "algorithm", "cache", "build_s", "solve_s", "total_s"],
        rows,
        title or "per-query timings",
    )
