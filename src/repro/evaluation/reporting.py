"""Plain-text rendering of experiment results (the rows/series the paper's figures show)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.evaluation.sweeps import ParameterSweep


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: Optional[str] = None
) -> str:
    """Render a simple fixed-width table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted to four significant decimals.
        title: Optional title line printed above the table.

    Returns:
        The table as a single string (callers print or write it).
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(sweep: ParameterSweep, measure: str, title: Optional[str] = None) -> str:
    """Render one measure of a sweep as a table with one column per algorithm.

    Args:
        sweep: The populated sweep.
        measure: ``"runtime"``, ``"weight"`` or ``"ratio"``.
        title: Optional title; defaults to ``"<measure> vs <axis>"``.

    Returns:
        The formatted table.
    """
    algorithms = sweep.algorithms()
    headers = [sweep.axis] + algorithms
    rows: List[List[object]] = []
    for point in sweep.points:
        source = {"runtime": point.runtimes, "weight": point.weights, "ratio": point.ratios}[
            measure
        ]
        rows.append([point.x] + [source.get(name, float("nan")) for name in algorithms])
    return format_table(headers, rows, title or f"{measure} vs {sweep.axis}")
