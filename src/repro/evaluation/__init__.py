"""Experiment harness: metrics, runners, parameter sweeps, reporting, survey.

This subpackage is what the ``benchmarks/`` directory drives. It knows how to run a
set of LCMSR queries through any subset of the solvers, collect runtimes and region
weights, compute the paper's accuracy measure (the relative ratio against TGEN),
sweep algorithm parameters and query arguments, simulate the Section 7.5 annotator
study, and print the resulting series in the same shape as the paper's figures.
"""

from repro.evaluation.metrics import (
    relative_ratio,
    average_relative_ratio,
    mean,
    summarize_results,
)
from repro.evaluation.runner import ExperimentRunner, AlgorithmRun, QueryOutcome
from repro.evaluation.sweeps import ParameterSweep, SweepPoint
from repro.evaluation.survey import SimulatedAnnotator, SurveyResult, run_survey
from repro.evaluation.reporting import (
    format_table,
    format_series,
    format_service_stats,
    format_query_timings,
)

__all__ = [
    "relative_ratio",
    "average_relative_ratio",
    "mean",
    "summarize_results",
    "ExperimentRunner",
    "AlgorithmRun",
    "QueryOutcome",
    "ParameterSweep",
    "SweepPoint",
    "SimulatedAnnotator",
    "SurveyResult",
    "run_survey",
    "format_table",
    "format_series",
    "format_service_stats",
    "format_query_timings",
]
