"""Accuracy and runtime metrics used by the experiments.

The paper's accuracy measure (Section 7.2.2): because no efficient exact method
exists, the accuracy of an algorithm is reported as the *relative ratio* — per query,
the weight of the algorithm's region divided by the weight of TGEN's region for the
same query, averaged over the query set. On small instances our tests additionally
compute ratios against the exact oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.result import RegionResult


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (keeps report tables total)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def relative_ratio(candidate_weight: float, reference_weight: float) -> float:
    """Return ``candidate / reference`` with the conventions the paper uses.

    When the reference found nothing (weight 0), the ratio is defined as 1.0 if the
    candidate also found nothing and as 1.0 capped otherwise (the candidate cannot be
    *worse* than an empty reference); ratios are not capped at 1.0 in general because
    a heuristic can occasionally beat the reference heuristic.
    """
    if reference_weight <= 0:
        return 1.0
    return candidate_weight / reference_weight


def average_relative_ratio(
    candidate_weights: Sequence[float], reference_weights: Sequence[float]
) -> float:
    """Average the per-query relative ratios (the paper's reported measure)."""
    if len(candidate_weights) != len(reference_weights):
        raise ValueError("weight sequences must have equal length")
    ratios = [
        relative_ratio(candidate, reference)
        for candidate, reference in zip(candidate_weights, reference_weights)
    ]
    return mean(ratios)


def summarize_results(results: Iterable[RegionResult]) -> Dict[str, float]:
    """Summarise a list of per-query results into mean runtime / weight / size."""
    materialized = list(results)
    return {
        "queries": float(len(materialized)),
        "mean_runtime_seconds": mean([r.runtime_seconds for r in materialized]),
        "mean_weight": mean([r.weight for r in materialized]),
        "mean_length": mean([r.length for r in materialized]),
        "mean_nodes": mean([float(r.region.num_nodes) for r in materialized]),
        "empty_results": float(sum(1 for r in materialized if r.is_empty)),
    }
