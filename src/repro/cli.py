"""The ``python -m repro`` command line: build, inspect and query index artifacts.

The CLI is the operational face of :mod:`repro.service.persist` — it separates the
offline index build from online serving so examples, benchmarks and deployments can
share one prebuilt artifact instead of each paying the full indexing pipeline:

* ``python -m repro build --dataset ny --out artifacts/ny`` — generate a dataset,
  build every index structure once and persist the bundle as a versioned artifact
  (add ``--compress zlib`` for a chunk-compressed artifact and ``--stream`` to
  build million-object configurations in bounded memory);
* ``python -m repro info artifacts/ny`` — print the manifest (format version,
  dataset fingerprint, checksums, per-file on-disk sizes and compression ratio)
  without loading the indexes;
* ``python -m repro query artifacts/ny --keywords cafe,bar --delta 2000`` — load
  the artifact (CSR arrays memory-mapped) and answer one LCMSR query;
* ``python -m repro serve-batch artifacts/ny --synthesize 32`` — run a batch of
  queries through :class:`~repro.service.query_service.QueryService` and print the
  timing / cache statistics;
* ``python -m repro mutate artifacts/ny --remove 17`` — record dataset mutations
  in the artifact's delta log; queries merge them at serving time until the next
  compaction;
* ``python -m repro compact artifacts/ny`` — re-freeze base + delta into a new
  ``gen-NNNN/`` generation directory and flip the ``CURRENT`` pointer atomically.

Every subcommand exits with status 2 on an :class:`~repro.exceptions.ReproError`
(bad artifact, malformed query, ...) and prints the reason to stderr.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Sequence

from repro.exceptions import QueryError, ReproError
from repro.network.subgraph import Rectangle


def _parse_keywords(raw: str) -> List[str]:
    keywords = [part.strip() for part in raw.split(",") if part.strip()]
    if not keywords:
        raise QueryError(f"no keywords in {raw!r} (expected e.g. 'cafe,restaurant')")
    return keywords


def _parse_region(raw: Optional[str]) -> Optional[Rectangle]:
    if raw is None:
        return None
    parts = [part.strip() for part in raw.split(",")]
    if len(parts) != 4:
        raise QueryError(
            f"a region needs 4 comma-separated numbers min_x,min_y,max_x,max_y, got {raw!r}"
        )
    try:
        min_x, min_y, max_x, max_y = (float(part) for part in parts)
    except ValueError as exc:
        raise QueryError(f"non-numeric region coordinate in {raw!r}") from exc
    return Rectangle(min_x, min_y, max_x, max_y)


# ---------------------------------------------------------------------- build
def _cmd_build(args: argparse.Namespace) -> int:
    from repro.service.bundle import IndexBundle

    compress = None if args.compress == "none" else args.compress
    if args.stream:
        # Streaming build: the object corpus is consumed as a generator and
        # never materialised ahead of indexing — the path for configurations
        # whose eager dataset assembly would not fit in memory.
        if args.dataset == "ny":
            from repro.datasets.ny import ny_like_parts

            dataset_name = "NY-like"
            network, objects = ny_like_parts(
                rows=args.rows,
                cols=args.cols,
                block_size=args.block_size,
                num_objects=args.objects,
                num_clusters=args.clusters,
                seed=args.seed,
            )
        else:
            from repro.datasets.usanw import usanw_like_parts

            dataset_name = "USANW-like"
            network, objects = usanw_like_parts(
                num_nodes=args.nodes,
                extent=args.extent,
                num_objects=args.objects,
                num_clusters=args.clusters,
                seed=args.seed,
            )
        bundle = IndexBundle.build_streaming(
            network, objects, grid_resolution=args.grid_resolution
        )
    else:
        from repro.datasets.ny import build_ny_like
        from repro.datasets.usanw import build_usanw_like

        if args.dataset == "ny":
            dataset = build_ny_like(
                rows=args.rows,
                cols=args.cols,
                block_size=args.block_size,
                num_objects=args.objects,
                num_clusters=args.clusters,
                seed=args.seed,
            )
        else:
            dataset = build_usanw_like(
                num_nodes=args.nodes,
                extent=args.extent,
                num_objects=args.objects,
                num_clusters=args.clusters,
                seed=args.seed,
            )
        if args.grid_resolution != dataset.grid.resolution:
            # Only the grid depends on the resolution: rebuild it over the shared
            # VSM and keep the (resolution-independent) mapping and scorer.
            from dataclasses import replace

            from repro.index.grid import GridIndex

            dataset = replace(
                dataset,
                grid=GridIndex(
                    dataset.corpus,
                    resolution=args.grid_resolution,
                    vsm=dataset.grid.vector_space_model,
                ),
            )
        dataset_name = dataset.name
        bundle = IndexBundle.from_dataset(dataset)
    manifest = bundle.save(args.out, overwrite=args.force, compress=compress)
    streamed = " [streamed]" if args.stream else ""
    print(f"artifact written to {args.out}")
    print(f"  dataset     : {dataset_name} (seed {args.seed}){streamed}")
    print(f"  bundle      : {bundle.describe()}")
    print(f"  fingerprint : {manifest.fingerprint[:16]}…")
    print(f"  format      : v{manifest.format_version}")
    if manifest.compression is not None:
        print(
            f"  compression : {manifest.compression.get('codec')} "
            f"(level {manifest.compression.get('level')})"
        )
    if args.shards is not None:
        from repro.service.persist import compression_spec
        from repro.service.sharding import build_shards

        if args.shards < 1:
            raise QueryError(f"--shards must be >= 1, got {args.shards}")
        shard_set = build_shards(
            bundle,
            args.out,
            num_shards=args.shards,
            halo_margin=args.halo,
            base_fingerprint=manifest.fingerprint,
            overwrite=args.force,
            compression=compression_spec(compress),
        )
        kx, ky = shard_set.tiles
        print(
            f"  shards      : {shard_set.num_shards} "
            f"({kx}x{ky} tiles, halo {shard_set.halo_margin:.0f} m)"
        )
    return 0


# ---------------------------------------------------------------------- info
def _cmd_info(args: argparse.Namespace) -> int:
    from repro.service.persist import read_manifest, verify_artifact

    manifest = verify_artifact(args.artifact) if args.verify else read_manifest(args.artifact)
    if args.json:
        print(json.dumps(asdict(manifest), sort_keys=True, indent=2))
        return 0
    print(f"artifact {args.artifact}")
    print(f"  format version : {manifest.format_version}")
    print(f"  fingerprint    : {manifest.fingerprint}")
    print(f"  grid           : {manifest.grid_resolution}x{manifest.grid_resolution}")
    print(f"  scoring mode   : {manifest.scoring_mode}")
    if manifest.shard is not None:
        print(
            f"  shard          : part {manifest.shard.get('part')} of "
            f"{manifest.shard.get('of')} (halo {manifest.shard.get('halo_margin')} m)"
        )
    for key in sorted(manifest.stats):
        print(f"  {key:<15}: {manifest.stats[key]}")
    for name in sorted(manifest.checksums):
        print(f"  sha256 {name:<12}: {manifest.checksums[name][:16]}…")
    artifact_dir = Path(args.artifact)
    total_disk = 0
    for name in sorted(manifest.checksums):
        file_path = artifact_dir / name
        size = file_path.stat().st_size if file_path.is_file() else 0
        total_disk += size
        print(f"  bytes {name:<13}: {size:,}")
    block = manifest.compression
    if block is not None:
        raw_bytes = block.get("raw_bytes") or {}
        total_raw = sum(int(value) for value in raw_bytes.values())
        ratio = (total_raw / total_disk) if total_disk else 0.0
        print(
            f"  compression    : {block.get('codec')} level {block.get('level')} "
            f"({block.get('chunk_elems')}-elem chunks)"
        )
        print(
            f"  on-disk total  : {total_disk:,} bytes "
            f"({total_raw:,} raw, {ratio:.2f}x smaller)"
        )
    else:
        print(f"  on-disk total  : {total_disk:,} bytes (uncompressed)")
    if args.verify:
        print("  checksums      : verified ok")
    return 0


# ---------------------------------------------------------------------- query
def _parse_policy(args: argparse.Namespace):
    """Resolve the --policy/--deadline-ms/--epsilon flags to a QueryPolicy.

    Returns ``None`` when no policy flag was given at all, so the exact path
    stays the literal pre-policy code path.
    """
    from repro.core.anytime import QueryPolicy

    if args.policy is None and args.deadline_ms is None and args.epsilon is None:
        return None
    text = args.policy
    if text is None:
        text = "anytime" if args.deadline_ms is not None else "sampled"
    try:
        return QueryPolicy.parse(
            text, deadline_ms=args.deadline_ms, epsilon=args.epsilon
        )
    except ValueError as exc:
        raise QueryError(str(exc)) from exc


def _quality_line(stats) -> Optional[str]:
    """Render the quality_* stats entries of an approximate answer, if any."""
    from repro.core.anytime import ResultQuality

    quality = ResultQuality.from_stats(stats or {})
    if quality is None or quality.kind == "exact":
        return None
    if quality.kind == "anytime":
        bound = quality.regret_bound if quality.regret_bound is not None else 0.0
        return f"quality   : anytime (regret bound {bound:.4f})"
    ci = quality.ci if quality.ci is not None else 0.0
    return f"quality   : sampled (95% CI ±{ci:.4f})"


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.engine import LCMSREngine

    engine = LCMSREngine.from_artifact(args.artifact, pruning=args.pruning)
    keywords = _parse_keywords(args.keywords)
    region = _parse_region(args.region)
    policy = _parse_policy(args)
    if args.k > 1:
        topk = engine.query_topk(
            keywords, delta=args.delta, k=args.k, region=region,
            algorithm=args.algorithm, policy=policy,
        )
        print(
            f"{len(topk)} region(s) by {topk.algorithm} "
            f"in {topk.runtime_seconds * 1000:.1f} ms"
        )
        for rank, result in enumerate(topk, start=1):
            print(
                f"  #{rank}: weight={result.weight:.4f} length={result.length:.1f} "
                f"nodes={result.region.num_nodes}"
            )
        quality = _quality_line(topk.stats)
        if quality is not None:
            print(quality)
        return 0
    result = engine.query(
        keywords, delta=args.delta, region=region, algorithm=args.algorithm,
        policy=policy,
    )
    print(f"algorithm : {result.algorithm}")
    print(f"weight    : {result.weight:.4f}")
    print(f"length    : {result.length:.1f} (budget {args.delta:.1f})")
    print(f"nodes     : {sorted(result.region.nodes)}")
    print(f"runtime   : {result.runtime_seconds * 1000:.1f} ms")
    quality = _quality_line(result.stats)
    if quality is not None:
        print(quality)
    return 0


# ---------------------------------------------------------------------- serve-batch
def _synthesize_requests(engine, count: int, delta: float, seed: int, policy=None):
    """Build a deterministic keyword workload from the corpus's frequent terms."""
    from repro.service.query_service import QueryRequest

    rng = random.Random(seed)
    frequent = [term for term, _ in engine.corpus.most_frequent_terms(40)]
    if not frequent:
        raise QueryError("the artifact's corpus has no terms to synthesize queries from")
    requests = []
    for _ in range(count):
        size = rng.randint(1, min(3, len(frequent)))
        keywords = rng.sample(frequent, size)
        requests.append(QueryRequest.create(keywords, delta=delta, policy=policy))
    return requests


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    from repro.engine import LCMSREngine
    from repro.evaluation.reporting import format_service_stats
    from repro.service.query_service import QueryRequest, QueryService

    from repro.core.anytime import QueryPolicy

    if args.repeat < 1:
        raise QueryError(f"--repeat must be >= 1, got {args.repeat}")
    if args.requests is None and args.synthesize < 1:
        raise QueryError(f"--synthesize must be >= 1, got {args.synthesize}")
    default_policy = _parse_policy(args)
    engine = LCMSREngine.from_artifact(args.artifact, pruning=args.pruning)
    if args.requests is not None:
        requests = []
        for line_number, line in enumerate(
            Path(args.requests).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                region = raw.get("region")
                policy = (
                    QueryPolicy.parse(raw["policy"])
                    if raw.get("policy") is not None
                    else default_policy
                )
                requests.append(
                    QueryRequest.create(
                        raw["keywords"],
                        delta=float(raw["delta"]),
                        region=Rectangle(*region) if region else None,
                        algorithm=raw.get("algorithm"),
                        k=int(raw.get("k", 1)),
                        policy=policy,
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise QueryError(
                    f"malformed request on line {line_number} of {args.requests}: {exc}"
                ) from exc
        if not requests:
            raise QueryError(f"no requests found in {args.requests}")
    else:
        requests = _synthesize_requests(
            engine, args.synthesize, args.delta, args.seed, policy=default_policy
        )

    # RegionResult exposes is_empty; a TopKResult is empty when it has no entries.
    def _answered(result) -> bool:
        if hasattr(result, "is_empty"):
            return not result.is_empty
        return len(result) > 0

    if args.processes is not None:
        from repro.service.sharding import ShardedQueryService

        if args.processes < 1:
            raise QueryError(f"--processes must be >= 1, got {args.processes}")
        with ShardedQueryService(
            args.artifact, num_workers=args.processes, pruning=args.pruning
        ) as service:
            for _ in range(args.repeat):
                results = service.run_batch(requests)
            shard_set = service.shard_set
            shards = shard_set.num_shards if shard_set else 0
            print(
                f"served {len(requests)} request(s) x{args.repeat} with "
                f"{args.processes} process(es) over {shards} shard(s)"
            )
            answered = sum(1 for result in results if _answered(result))
            print(f"non-empty answers in last pass: {answered}/{len(results)}")
            print(format_service_stats(service.stats(), title="sharded service stats"))
        return 0

    with QueryService(engine, max_workers=args.workers) as service:
        for _ in range(args.repeat):
            results = service.run_batch(requests)
        print(f"served {len(requests)} request(s) x{args.repeat} with {args.workers} worker(s)")
        answered = sum(1 for result in results if _answered(result))
        print(f"non-empty answers in last pass: {answered}/{len(results)}")
        print(format_service_stats(service.stats(), title="service stats"))
    return 0


# ---------------------------------------------------------------------- mutate
def _parse_op_json(raw: str, kind: str) -> dict:
    """Parse one ``--add``/``--update`` JSON object into a mutation op."""
    try:
        op = json.loads(raw)
    except ValueError as exc:
        raise QueryError(f"malformed JSON for --{kind}: {exc}") from exc
    if not isinstance(op, dict):
        raise QueryError(f"--{kind} expects a JSON object, got {raw!r}")
    op["op"] = kind
    return op


def _collect_mutation_ops(args: argparse.Namespace) -> List[dict]:
    """Assemble the op list: ``--ops`` file first, then the per-flag groups."""
    ops: List[dict] = []
    if args.ops is not None:
        try:
            payload = json.loads(Path(args.ops).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise QueryError(f"cannot read mutation ops from {args.ops}: {exc}") from exc
        listed = payload.get("ops") if isinstance(payload, dict) else payload
        if not isinstance(listed, list):
            raise QueryError(
                f"{args.ops} must hold a JSON list of ops (or {{\"ops\": [...]}})"
            )
        ops.extend(listed)
    ops.extend(_parse_op_json(raw, "add") for raw in args.add)
    ops.extend(_parse_op_json(raw, "update") for raw in args.update)
    for raw in args.remove:
        try:
            ops.append({"op": "remove", "id": int(raw)})
        except ValueError as exc:
            raise QueryError(f"--remove expects an object id, got {raw!r}") from exc
    for raw in args.set_rating:
        ident, sep, rating = raw.partition("=")
        try:
            if not sep:
                raise ValueError("missing '='")
            ops.append({"op": "rate", "id": int(ident), "rating": float(rating)})
        except ValueError as exc:
            raise QueryError(
                f"--set-rating expects ID=RATING (e.g. 17=4.5), got {raw!r}: {exc}"
            ) from exc
    return ops


def _cmd_mutate(args: argparse.Namespace) -> int:
    from repro.engine import LCMSREngine
    from repro.service.generations import DeltaOverlay, append_delta_ops, apply_ops

    ops = _collect_mutation_ops(args)
    if not ops:
        raise QueryError(
            "no mutations given: pass --add / --update / --remove / --set-rating "
            "or --ops FILE"
        )
    # Loading the engine replays the existing delta log; applying the new ops on
    # top validates the whole sequence before anything is written to disk.
    engine = LCMSREngine.from_artifact(args.artifact)
    overlay = engine.overlay
    if overlay is None:
        overlay = DeltaOverlay(engine.bundle)
    apply_ops(overlay, ops)
    total = append_delta_ops(args.artifact, ops)
    print(f"recorded {len(ops)} mutation(s) in the delta log at {args.artifact}")
    print(f"  pending ops     : {total}")
    print(f"  touched objects : {overlay.pending_count}")
    print(f"  served merged at query time; run `python -m repro compact {args.artifact}`")
    return 0


# ---------------------------------------------------------------------- compact
def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.engine import LCMSREngine
    from repro.service.generations import Compactor

    engine = LCMSREngine.from_artifact(args.artifact, pruning=args.pruning)
    overlay = engine.overlay
    if overlay is None or not overlay.has_pending:
        print(f"nothing to compact: no pending mutations at {args.artifact}")
        return 0
    report = Compactor(engine, root=args.artifact).compact()
    print(f"compacted {report.mutations} mutation(s) into {report.generation}")
    print(f"  path        : {report.path}")
    print(f"  fingerprint : {report.fingerprint[:16]}…")
    print(f"  resharded   : {'yes' if report.resharded else 'no'}")
    print(f"  seconds     : {report.seconds:.2f}")
    return 0


# ---------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Build, inspect and query persistent LCMSR index artifacts.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser(
        "build", help="generate a dataset, build all indexes once and persist them"
    )
    build.add_argument("--dataset", choices=("ny", "usanw"), default="ny")
    build.add_argument("--out", required=True, help="artifact directory to write")
    build.add_argument("--seed", type=int, default=42, help="dataset seed (deterministic)")
    build.add_argument("--grid-resolution", type=int, default=48)
    build.add_argument("--force", action="store_true", help="overwrite an existing artifact")
    build.add_argument("--rows", type=int, default=50, help="[ny] street-grid rows")
    build.add_argument("--cols", type=int, default=50, help="[ny] street-grid columns")
    build.add_argument("--block-size", type=float, default=120.0, help="[ny] block size (m)")
    build.add_argument("--nodes", type=int, default=3000, help="[usanw] network nodes")
    build.add_argument("--extent", type=float, default=20000.0, help="[usanw] extent (m)")
    build.add_argument("--objects", type=int, default=7000, help="number of geo-textual objects")
    build.add_argument("--clusters", type=int, default=30, help="number of PoI hot spots")
    build.add_argument(
        "--compress", choices=("none", "zlib", "lzma"), default="none",
        help="chunk-compress the artifact's payload columns with this codec "
        "(hot bound/offset columns stay raw memmaps; queries are "
        "byte-identical either way)",
    )
    build.add_argument(
        "--stream", action="store_true",
        help="build through the streaming indexer: objects are generated and "
        "consumed one at a time in bounded memory (same artifact columns, "
        "byte for byte)",
    )
    build.add_argument(
        "--shards", type=int, default=None,
        help="also partition the artifact into this many tile shards under "
        "<out>/shards/ (self-contained sub-artifacts with halo edges)",
    )
    build.add_argument(
        "--halo", type=float, default=2000.0,
        help="[--shards] halo margin in meters; choose >= the largest query ∆ "
        "the shards should answer locally",
    )
    build.set_defaults(func=_cmd_build)

    info = subparsers.add_parser("info", help="print an artifact's manifest")
    info.add_argument("artifact", help="artifact directory")
    info.add_argument("--json", action="store_true", help="machine-readable output")
    info.add_argument("--verify", action="store_true", help="also verify file checksums")
    info.set_defaults(func=_cmd_info)

    query = subparsers.add_parser("query", help="answer one LCMSR query from an artifact")
    query.add_argument("artifact", help="artifact directory")
    query.add_argument("--keywords", required=True, help="comma-separated query keywords")
    query.add_argument("--delta", type=float, required=True, help="length budget Q.∆ (m)")
    query.add_argument("--region", help="query window min_x,min_y,max_x,max_y")
    query.add_argument(
        "--algorithm", choices=("app", "tgen", "greedy", "exact"), default=None,
        help="solver (engine default: tgen)",
    )
    query.add_argument("-k", type=int, default=1, help="return the top-k regions")
    query.add_argument(
        "--pruning", choices=("auto", "on", "off"), default="auto",
        help="bound-based pruning policy; results are byte-identical either "
        "way, 'off' forces the unpruned reference paths",
    )
    query.add_argument(
        "--policy", default=None,
        help="service policy: 'exact' (default), 'anytime(<ms>)' or "
        "'sampled(<eps>)'; bare 'anytime'/'sampled' take the value from "
        "--deadline-ms/--epsilon",
    )
    query.add_argument(
        "--deadline-ms", type=float, default=None,
        help="deadline for --policy anytime (milliseconds)",
    )
    query.add_argument(
        "--epsilon", type=float, default=None,
        help="target error for --policy sampled (0 < eps < 1)",
    )
    query.set_defaults(func=_cmd_query)

    serve = subparsers.add_parser(
        "serve-batch", help="run a query batch through the serving layer"
    )
    serve.add_argument("artifact", help="artifact directory")
    serve.add_argument(
        "--requests",
        help="JSONL file; each line {\"keywords\": [...], \"delta\": ..., "
        "\"region\"?: [x1,y1,x2,y2], \"algorithm\"?: ..., \"k\"?: ..., "
        "\"policy\"?: \"anytime(200)\"}",
    )
    serve.add_argument(
        "--synthesize", type=int, default=16,
        help="without --requests: synthesize this many keyword queries",
    )
    serve.add_argument("--delta", type=float, default=2000.0, help="budget for synthesized queries")
    serve.add_argument("--seed", type=int, default=7, help="seed for synthesized queries")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--processes", type=int, default=None,
        help="serve with this many worker processes through the sharded "
        "scatter-gather gateway instead of the in-process thread pool",
    )
    serve.add_argument("--repeat", type=int, default=1, help="run the batch this many times")
    serve.add_argument(
        "--pruning", choices=("auto", "on", "off"), default="auto",
        help="bound-based pruning policy; results are byte-identical either "
        "way, 'off' forces the unpruned reference paths",
    )
    serve.add_argument(
        "--policy", default=None,
        help="service policy applied to every request that does not set its "
        "own (JSONL lines may carry a \"policy\" field): 'exact', "
        "'anytime(<ms>)' or 'sampled(<eps>)'",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="deadline for --policy anytime (milliseconds)",
    )
    serve.add_argument(
        "--epsilon", type=float, default=None,
        help="target error for --policy sampled (0 < eps < 1)",
    )
    serve.set_defaults(func=_cmd_serve_batch)

    mutate = subparsers.add_parser(
        "mutate", help="record dataset mutations in the artifact's delta log"
    )
    mutate.add_argument("artifact", help="artifact root directory")
    mutate.add_argument(
        "--add", action="append", metavar="JSON", default=[],
        help='add an object: \'{"id": 900, "x": 10.0, "y": 20.0, '
        '"keywords": ["cafe"], "rating": 2.0}\' (repeatable)',
    )
    mutate.add_argument(
        "--update", action="append", metavar="JSON", default=[],
        help="replace an existing object (same JSON shape as --add; repeatable)",
    )
    mutate.add_argument(
        "--remove", action="append", metavar="ID", default=[],
        help="remove the object with this id (repeatable)",
    )
    mutate.add_argument(
        "--set-rating", action="append", metavar="ID=RATING", default=[],
        dest="set_rating",
        help="change an object's rating, e.g. --set-rating 17=4.5 (repeatable)",
    )
    mutate.add_argument(
        "--ops",
        help='JSON file with a list of mutation ops (or {"ops": [...]}); '
        "applied before the per-flag groups",
    )
    mutate.set_defaults(func=_cmd_mutate)

    compact = subparsers.add_parser(
        "compact",
        help="re-freeze base + pending mutations into a new gen-NNNN generation",
    )
    compact.add_argument("artifact", help="artifact root directory")
    compact.add_argument(
        "--pruning", choices=("auto", "on", "off"), default="auto",
        help="pruning policy baked into the compacting engine (results are "
        "byte-identical either way)",
    )
    compact.set_defaults(func=_cmd_compact)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed stdout: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
