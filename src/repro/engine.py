"""High-level facade: build the indexes once, then ask LCMSR queries by name.

:class:`LCMSREngine` is the entry point application code (and the examples) should
use. It owns an :class:`~repro.service.bundle.IndexBundle` — the road network, the
object corpus, the object → node mapping, the grid + inverted-list index and the
relevance scorer — and exposes ``query`` / ``query_topk`` calls that accept plain
keywords and return :class:`~repro.core.region.Region` results, dispatching to APP,
TGEN or Greedy by name. For batched / concurrent serving over the same indexes, wrap
an engine in :class:`repro.service.QueryService`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

from dataclasses import replace

from repro.core.anytime import Budget, QueryPolicy, ResultQuality
from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import PRUNING_POLICIES, ProblemInstance, build_instance
from repro.core.query import LCMSRQuery
from repro.core.result import RegionResult, TopKResult
from repro.core.tgen import TGENSolver
from repro.exceptions import QueryError
from repro.index.grid import GridIndex
from repro.network.compact import GraphView
from repro.network.graph import RoadNetwork
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import NodeObjectMap
from repro.service.bundle import IndexBundle
from repro.textindex.relevance import ScoringMode

SolverUnion = Union[APPSolver, TGENSolver, GreedySolver, ExactSolver]


def _default_solvers() -> Dict[str, SolverUnion]:
    """The paper's solver registry with default parameters."""
    return {
        "app": APPSolver(),
        "tgen": TGENSolver(),
        "greedy": GreedySolver(),
        "exact": ExactSolver(),
    }


class LCMSREngine:
    """Index a dataset once and answer LCMSR queries.

    Construction validates its configuration *before* any index is built, so a
    misconfigured engine fails in microseconds instead of after a multi-second
    offline build:

    * ``grid_resolution`` must be a positive integer;
    * ``default_algorithm`` must name a registered solver.

    Args:
        network: The road network.
        corpus: The geo-textual objects.
        grid_resolution: Resolution of the spatial grid index (cells per axis);
            must be a positive integer.
        scoring_mode: Per-object weight definition (see
            :class:`~repro.textindex.relevance.ScoringMode`):
            ``TEXT_RELEVANCE`` (the paper's default) scores objects by TF-IDF
            vector-space relevance through the grid's inverted lists;
            ``RATING_IF_MATCH`` uses the object's rating when it contains any
            query keyword; ``LANGUAGE_MODEL`` uses a Jelinek–Mercer smoothed
            query likelihood. The last two bypass the TF-IDF postings and score
            through the direct :class:`~repro.textindex.relevance.RelevanceScorer`.
        default_algorithm: Algorithm used when a query does not name one. One of
            ``"tgen"`` (the paper's accuracy recommendation and the default),
            ``"app"`` (the (5 + ε)-approximation with a quality guarantee),
            ``"greedy"`` (fastest, no guarantee) or ``"exact"`` (brute-force
            oracle, tiny windows only).
        pruning: Bound-based pruning policy — ``"auto"`` (default), ``"on"`` or
            ``"off"`` (see :data:`~repro.core.instance.PRUNING_POLICIES`);
            results are byte-identical under every policy.

    Raises:
        QueryError: If ``grid_resolution`` is not a positive integer,
            ``default_algorithm`` is unknown, or ``pruning`` is unknown.
    """

    def __init__(
        self,
        network: RoadNetwork,
        corpus: ObjectCorpus,
        grid_resolution: int = 48,
        scoring_mode: ScoringMode = ScoringMode.TEXT_RELEVANCE,
        default_algorithm: str = "tgen",
        pruning: str = "auto",
    ) -> None:
        # Fail fast on configuration errors before paying for the index build:
        # the solver registry is cheap, so it is built (and the default name
        # validated against it) first; IndexBundle.build validates
        # grid_resolution before any index work.
        solvers = _default_solvers()
        if default_algorithm.lower() not in solvers:
            raise QueryError(
                f"unknown default algorithm {default_algorithm!r}; "
                f"known: {sorted(solvers)}"
            )
        # grid_resolution is validated by IndexBundle.build, first thing.
        bundle = IndexBundle.build(
            network, corpus, grid_resolution=grid_resolution, scoring_mode=scoring_mode
        )
        self._attach(bundle, solvers, default_algorithm, pruning)

    def _attach(
        self,
        bundle: IndexBundle,
        solvers: Dict[str, SolverUnion],
        default_algorithm: str,
        pruning: str = "auto",
    ) -> None:
        if pruning not in PRUNING_POLICIES:
            raise QueryError(
                f"pruning must be one of {PRUNING_POLICIES}, got {pruning!r}"
            )
        self._bundle = bundle
        self._default_algorithm = default_algorithm.lower()
        self._solvers = solvers
        self._solver_generation = 0
        self._solver_lock = threading.Lock()
        self._pruning = pruning
        self._bundle_generation = 0
        self._bundle_lock = threading.Lock()
        self._overlay = None

    @classmethod
    def from_bundle(
        cls,
        bundle: IndexBundle,
        default_algorithm: str = "tgen",
        pruning: str = "auto",
    ) -> "LCMSREngine":
        """Create an engine over an already-built index bundle.

        This skips the offline build entirely — the intended path for services
        that share one :class:`~repro.service.bundle.IndexBundle` across several
        engines or worker pools.

        Args:
            bundle: The prebuilt index state.
            default_algorithm: Algorithm used when a query does not name one.
            pruning: Bound-based pruning policy for the instances the engine
                builds (see :data:`~repro.core.instance.PRUNING_POLICIES`).

        Returns:
            An engine serving queries from the shared bundle.

        Raises:
            QueryError: If ``default_algorithm`` or ``pruning`` is unknown.
        """
        solvers = _default_solvers()
        if default_algorithm.lower() not in solvers:
            raise QueryError(
                f"unknown default algorithm {default_algorithm!r}; "
                f"known: {sorted(solvers)}"
            )
        engine = cls.__new__(cls)
        engine._attach(bundle, solvers, default_algorithm, pruning)
        return engine

    @classmethod
    def from_artifact(
        cls,
        path: Union[str, "Path"],
        default_algorithm: str = "tgen",
        mmap: bool = True,
        verify: bool = True,
        pruning: str = "auto",
        with_overlay: bool = True,
    ) -> "LCMSREngine":
        """Create an engine from a persisted index artifact — no offline build.

        The artifact (written by :meth:`IndexBundle.save
        <repro.service.bundle.IndexBundle.save>` or ``python -m repro build``)
        is loaded with the CSR arrays memory-mapped read-only, so the engine is
        query-ready in I/O-bound time instead of index-rebuild time.

        Generation-aware: when the artifact root carries a ``CURRENT`` pointer
        (written by ``python -m repro compact``), the generation it names is
        loaded instead of the base artifact; and when a delta log with pending
        mutations exists at the root, the corresponding
        :class:`~repro.service.generations.DeltaOverlay` is attached so queries
        serve the mutated world.

        Args:
            path: The artifact directory.
            default_algorithm: Algorithm used when a query does not name one.
            mmap: Memory-map the network arrays (default) or load them eagerly.
            verify: Verify artifact checksums before loading.
            pruning: Bound-based pruning policy for the instances the engine
                builds (see :data:`~repro.core.instance.PRUNING_POLICIES`).
            with_overlay: Attach the pending delta-log overlay (default). The
                sharded service disables this for its workers — shards serve
                the frozen generation only.

        Returns:
            An engine serving queries from the loaded bundle.

        Raises:
            ArtifactError: If the artifact is missing, corrupt or written by an
                unsupported format version, or if ``CURRENT`` points at a
                missing/partial generation.
            QueryError: If ``default_algorithm`` or ``pruning`` is unknown.
        """
        # Deferred: repro.service.generations imports the service layer, which
        # imports this module.
        from repro.service.generations import overlay_from_delta_log, resolve_generation

        resolved = resolve_generation(path)
        bundle = IndexBundle.load(resolved, mmap=mmap, verify=verify)
        engine = cls.from_bundle(
            bundle, default_algorithm=default_algorithm, pruning=pruning
        )
        if with_overlay:
            overlay = overlay_from_delta_log(bundle, path)
            if overlay is not None:
                engine.attach_overlay(overlay)
        return engine

    # ------------------------------------------------------------------ configuration
    @property
    def bundle(self) -> IndexBundle:
        """The engine's query-independent index state."""
        return self._bundle

    @property
    def network(self) -> RoadNetwork:
        """The indexed road network as a mutable dict-backed graph.

        For engines created with :meth:`from_artifact` the dict backend does not
        exist yet; the first access thaws it from the CSR snapshot (queries never
        need it — they run on :attr:`graph_view`).
        """
        return self._bundle.road_network()

    @property
    def graph_view(self) -> "GraphView":
        """The network representation queries traverse.

        The bundle's frozen CSR snapshot when available (the default), the
        dict-backed network otherwise; see :meth:`IndexBundle.graph_view
        <repro.service.bundle.IndexBundle.graph_view>`.
        """
        return self._bundle.graph_view()

    @property
    def corpus(self) -> ObjectCorpus:
        """The indexed object corpus."""
        return self._bundle.corpus

    @property
    def mapping(self) -> NodeObjectMap:
        """The object → node mapping."""
        return self._bundle.mapping

    @property
    def grid(self) -> GridIndex:
        """The grid + inverted-list index."""
        return self._bundle.grid

    @property
    def scoring_mode(self) -> ScoringMode:
        """The per-object weight definition queries are scored under."""
        return self._bundle.scoring_mode

    @property
    def default_algorithm(self) -> str:
        """The solver name used when a query does not specify one."""
        return self._default_algorithm

    @property
    def pruning(self) -> str:
        """The bound-based pruning policy instances are built with.

        ``"auto"`` / ``"on"`` let solvers take bound-licensed skips, ``"off"``
        forces the unpruned reference paths; results are byte-identical either
        way (see :data:`~repro.core.instance.PRUNING_POLICIES`).
        """
        return self._pruning

    @property
    def solver_generation(self) -> int:
        """Counter bumped by every :meth:`configure_solver` call.

        The serving layer folds this into its result-cache keys, so results
        computed by a replaced solver are never served after reconfiguration.
        """
        return self._solver_generation

    @property
    def bundle_generation(self) -> int:
        """Counter bumped by every :meth:`swap_bundle` call.

        The solver-generation idea extended to the index state: the serving
        layer folds this into its cache keys and clears its caches when it
        changes, so a result computed against generation N is never served
        after a compaction swaps in generation N+1.
        """
        return self._bundle_generation

    @property
    def overlay(self):
        """The attached :class:`~repro.service.generations.DeltaOverlay`, or ``None``."""
        return self._overlay

    def attach_overlay(self, overlay) -> None:
        """Attach (or detach, with ``None``) a delta overlay.

        While an overlay with pending mutations is attached,
        :meth:`build_instance` merges base columnar σ_v with the overlay's
        contributions, so queries serve the mutated world without a rebuild.
        """
        self._overlay = overlay

    def swap_bundle(self, bundle: IndexBundle) -> None:
        """Atomically replace the served bundle (a generation swap).

        Called by the :class:`~repro.service.generations.Compactor` after a
        re-freeze. The overlay is dropped — its mutations are baked into the
        new bundle — and :attr:`bundle_generation` is bumped. Publication
        order mirrors :meth:`configure_solver`: the new bundle (and the
        overlay drop) land BEFORE the generation bump, so a lock-free reader
        pairing (generation, bundle) can at worst cache a new-world result
        under the old generation key — which the bump then retires — never a
        stale result under the new key.
        """
        with self._bundle_lock:
            self._bundle = bundle
            self._overlay = None
            self._bundle_generation += 1

    @property
    def bundle_cache_key(self) -> str:
        """Identity string for the world this engine currently answers from.

        Folds the bundle's dataset fingerprint, the bundle generation and the
        overlay mutation version, so two engines over different artifacts (or
        one engine across a generation swap / pending mutations) can never
        share a service cache entry.
        """
        overlay = self._overlay
        overlay_version = overlay.version if overlay is not None else 0
        return (
            f"{self._bundle.fingerprint()[:16]}"
            f":g{self._bundle_generation}:o{overlay_version}"
        )

    def configure_solver(self, name: str, solver: SolverUnion) -> None:
        """Replace or add a named solver (e.g. an APP with different α/β).

        Args:
            name: Registry name; lower-cased, so ``"Greedy"`` and ``"greedy"``
                address the same slot.
            solver: Any object with ``solve`` / ``solve_topk`` methods.
        """
        with self._solver_lock:
            # Copy-on-write: the registry dict is never mutated in place, so
            # readers (solver(), possibly on concurrent QueryService workers)
            # can snapshot it without taking the lock and still never observe a
            # half-updated registry. The lock only serialises writers. The new
            # dict is published BEFORE the generation bump: a lock-free reader
            # pairing (generation, registry) can then at worst resolve the new
            # solver under the old generation (its cached result is simply
            # never served once the bump lands) — never the old solver under
            # the new generation, which would be permanently stale.
            updated = dict(self._solvers)
            updated[name.lower()] = solver
            self._solvers = updated
            self._solver_generation += 1

    def solver(self, name: Optional[str] = None) -> SolverUnion:
        """Return the solver registered under ``name``.

        Args:
            name: Solver name; the engine's default algorithm when omitted.

        Returns:
            The registered solver instance.

        Raises:
            QueryError: If ``name`` does not match a registered solver.
        """
        # Snapshot the reference once: configure_solver() replaces the dict
        # copy-on-write (never mutates it), so the lookup below runs on one
        # consistent registry even while a concurrent reconfiguration lands.
        solvers = self._solvers
        key = (name or self._default_algorithm).lower()
        if key not in solvers:
            raise QueryError(f"unknown algorithm {name!r}; known: {sorted(solvers)}")
        return solvers[key]

    # ------------------------------------------------------------------ querying
    def build_instance(
        self, query: LCMSRQuery, policy: Optional[QueryPolicy] = None
    ) -> ProblemInstance:
        """Build the solver input for a query (exposed for advanced callers).

        The window subgraph is extracted from the bundle's frozen CSR snapshot
        when one exists — the vectorised path — and from the dict-backed network
        otherwise. Node weights σ_v come from the bundle's columnar
        :class:`~repro.textindex.columnar.WeightPipeline` (vectorised, all
        scoring modes) when available; otherwise from the grid postings
        (``TEXT_RELEVANCE``) or the object-loop scorer (the other modes) —
        the pipeline is bit-identical to the scorer reference backend.

        Args:
            query: The LCMSR query to derive the instance from.
            policy: Optional :class:`~repro.core.anytime.QueryPolicy`. A
                ``sampled`` policy switches σ_v to the seeded Horvitz–Thompson
                estimator (columnar pipeline only); ``exact`` / ``anytime`` /
                ``None`` leave instance building untouched (the anytime budget
                is attached at solve time, not here, so cached instances stay
                deadline-free).

        Returns:
            The windowed, weighted :class:`~repro.core.instance.ProblemInstance`.

        Raises:
            QueryError: If a sampled policy is requested but the bundle has no
                columnar pipeline to sample from.
        """
        sample_epsilon: Optional[float] = None
        sample_seed = 0
        if policy is not None and policy.kind == "sampled":
            sample_epsilon = policy.epsilon
            sample_seed = policy.seed
        bundle = self._bundle
        graph = bundle.graph_view()
        pipeline = bundle.weight_pipeline()
        overlay = self._overlay
        if overlay is not None and overlay.has_pending:
            if overlay.bundle is not bundle:
                # A swap landed between reads; the overlay's mutations are in
                # the new bundle already, so serve it frozen.
                overlay = None
            elif pipeline is None:
                raise QueryError(
                    "overlay serving needs the bundle's columnar weight pipeline"
                )
        else:
            overlay = None
        if pipeline is not None:
            return build_instance(
                graph, query, pipeline=pipeline, overlay=overlay,
                pruning=self._pruning,
                sample_epsilon=sample_epsilon, sample_seed=sample_seed,
            )
        if sample_epsilon is not None:
            raise QueryError(
                "sampled policy requires the bundle's columnar weight pipeline"
            )
        if self.scoring_mode is ScoringMode.TEXT_RELEVANCE:
            return build_instance(
                graph, query, grid_index=self.grid, mapping=self.mapping,
                pruning=self._pruning,
            )
        # Rating / language-model scoring bypasses the TF-IDF postings.
        return build_instance(
            graph, query, scorer=self._bundle.scorer, pruning=self._pruning
        )

    @staticmethod
    def _apply_policy(instance: ProblemInstance,
                      policy: Optional[QueryPolicy]) -> ProblemInstance:
        """Attach the per-solve policy state (an anytime budget) to an instance.

        Called at solve time so the deadline clock starts when solving starts,
        and so cached/shared instances never carry a stale budget. Exact and
        sampled policies return the instance unchanged.
        """
        if policy is not None and policy.kind == "anytime":
            return instance.with_budget(Budget.from_deadline_ms(policy.deadline_ms))
        return instance

    @staticmethod
    def _annotate_sampled(result, instance: ProblemInstance,
                          policy: Optional[QueryPolicy]):
        """Fold the sampled-policy ResultQuality (region CI) into result stats.

        The region CI is the 95% half-width on the returned region's estimated
        weight: member variances summed (independence approximation — see
        docs/ARCHITECTURE.md), 0.0 when the sampler enumerated exactly or an
        overlay forced the exact merge path.
        """
        if policy is None or policy.kind != "sampled":
            return result
        sampling = instance.sampling

        def annotated(region_result):
            ci = (
                sampling.region_ci(region_result.region.nodes)
                if sampling is not None
                else 0.0
            )
            stats = dict(region_result.stats)
            stats.update(ResultQuality("sampled", ci=ci).to_stats())
            return replace(region_result, stats=stats)

        if isinstance(result, TopKResult):
            results = [annotated(r) for r in result.results]
            stats = dict(result.stats)
            if results:
                stats.update(
                    {k: v for k, v in results[0].stats.items()
                     if k.startswith("quality_")}
                )
            else:
                stats.update(ResultQuality("sampled", ci=0.0).to_stats())
            return replace(result, results=results, stats=stats)
        return annotated(result)

    def query(
        self,
        keywords: Iterable[str],
        delta: float,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
        policy: Optional[QueryPolicy] = None,
    ) -> RegionResult:
        """Answer one LCMSR query.

        Args:
            keywords: Query keywords ``Q.ψ``.
            delta: Length constraint ``Q.∆`` (same unit as the network edge lengths).
            region: Region of interest ``Q.Λ``; the whole network when omitted.
            algorithm: "app", "tgen", "greedy" or "exact"; the engine default when
                omitted.
            policy: Per-query service level (``None`` = exact, today's
                byte-identical path); see :class:`~repro.core.anytime.QueryPolicy`.

        Returns:
            The best region found (empty when nothing in the window matches).
            Approximate policies add ``quality_*`` entries to ``stats`` (see
            :class:`~repro.core.anytime.ResultQuality`).

        Raises:
            QueryError: On an empty keyword set, negative ``delta`` or unknown
                algorithm name.
        """
        lcmsr_query = LCMSRQuery.create(keywords, delta=delta, region=region)
        instance = self.build_instance(lcmsr_query, policy=policy)
        result = self.solver(algorithm).solve(self._apply_policy(instance, policy))
        return self._annotate_sampled(result, instance, policy)

    def query_topk(
        self,
        keywords: Iterable[str],
        delta: float,
        k: int,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
        policy: Optional[QueryPolicy] = None,
    ) -> TopKResult:
        """Answer a top-k LCMSR query (Section 6.2).

        Args:
            keywords: Query keywords ``Q.ψ``.
            delta: Length constraint ``Q.∆``.
            k: Number of distinct regions to return.
            region: Region of interest ``Q.Λ``; the whole network when omitted.
            algorithm: Solver name; the engine default when omitted.
            policy: Per-query service level (``None`` = exact).

        Returns:
            Up to ``k`` distinct regions in decreasing score order.

        Raises:
            QueryError: On an empty keyword set, negative ``delta``, ``k < 1`` or
                unknown algorithm name.
        """
        lcmsr_query = LCMSRQuery.create(keywords, delta=delta, region=region, k=k)
        instance = self.build_instance(lcmsr_query, policy=policy)
        result = self.solver(algorithm).solve_topk(
            self._apply_policy(instance, policy), k)
        return self._annotate_sampled(result, instance, policy)
