"""High-level facade: build the indexes once, then ask LCMSR queries by name.

:class:`LCMSREngine` is the entry point application code (and the examples) should
use. It owns a road network and an object corpus, wires up the object → node mapping,
the grid + inverted-list index and the relevance scorer, and exposes ``query`` /
``query_topk`` calls that accept plain keywords and return :class:`Region` results,
dispatching to APP, TGEN or Greedy by name.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.core.app import APPSolver
from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import ProblemInstance, build_instance
from repro.core.query import LCMSRQuery
from repro.core.result import RegionResult, TopKResult
from repro.core.tgen import TGENSolver
from repro.exceptions import QueryError
from repro.index.grid import GridIndex
from repro.network.graph import RoadNetwork
from repro.network.subgraph import Rectangle
from repro.objects.corpus import ObjectCorpus
from repro.objects.mapping import NodeObjectMap, map_objects_to_network
from repro.textindex.relevance import RelevanceScorer, ScoringMode
from repro.textindex.vector_space import VectorSpaceModel

SolverUnion = Union[APPSolver, TGENSolver, GreedySolver, ExactSolver]


class LCMSREngine:
    """Index a dataset once and answer LCMSR queries.

    Args:
        network: The road network.
        corpus: The geo-textual objects.
        grid_resolution: Resolution of the spatial grid index.
        scoring_mode: Per-object weight definition (text relevance by default).
        default_algorithm: Algorithm used when a query does not name one
            ("tgen" — the paper's recommendation; "app" and "greedy" also accepted).
    """

    def __init__(
        self,
        network: RoadNetwork,
        corpus: ObjectCorpus,
        grid_resolution: int = 48,
        scoring_mode: ScoringMode = ScoringMode.TEXT_RELEVANCE,
        default_algorithm: str = "tgen",
    ) -> None:
        self._network = network
        self._corpus = corpus
        self._mapping = map_objects_to_network(network, corpus)
        self._vsm = VectorSpaceModel(corpus)
        self._grid = GridIndex(corpus, resolution=grid_resolution, vsm=self._vsm)
        self._scorer = RelevanceScorer(corpus, self._mapping, mode=scoring_mode)
        self._scoring_mode = scoring_mode
        self._default_algorithm = default_algorithm.lower()
        self._solvers: Dict[str, SolverUnion] = {
            "app": APPSolver(),
            "tgen": TGENSolver(),
            "greedy": GreedySolver(),
            "exact": ExactSolver(),
        }
        if self._default_algorithm not in self._solvers:
            raise QueryError(f"unknown default algorithm {default_algorithm!r}")

    # ------------------------------------------------------------------ configuration
    @property
    def network(self) -> RoadNetwork:
        """The indexed road network."""
        return self._network

    @property
    def corpus(self) -> ObjectCorpus:
        """The indexed object corpus."""
        return self._corpus

    @property
    def mapping(self) -> NodeObjectMap:
        """The object → node mapping."""
        return self._mapping

    @property
    def grid(self) -> GridIndex:
        """The grid + inverted-list index."""
        return self._grid

    def configure_solver(self, name: str, solver: SolverUnion) -> None:
        """Replace or add a named solver (e.g. an APP with different α/β)."""
        self._solvers[name.lower()] = solver

    def solver(self, name: Optional[str] = None) -> SolverUnion:
        """Return the solver registered under ``name`` (default algorithm if omitted)."""
        key = (name or self._default_algorithm).lower()
        if key not in self._solvers:
            raise QueryError(f"unknown algorithm {name!r}; known: {sorted(self._solvers)}")
        return self._solvers[key]

    # ------------------------------------------------------------------ querying
    def build_instance(self, query: LCMSRQuery) -> ProblemInstance:
        """Build the solver input for a query (exposed for advanced callers)."""
        if self._scoring_mode is ScoringMode.TEXT_RELEVANCE:
            return build_instance(
                self._network, query, grid_index=self._grid, mapping=self._mapping
            )
        # Rating / language-model scoring bypasses the TF-IDF postings.
        return build_instance(self._network, query, scorer=self._scorer)

    def query(
        self,
        keywords: Iterable[str],
        delta: float,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
    ) -> RegionResult:
        """Answer one LCMSR query.

        Args:
            keywords: Query keywords ``Q.ψ``.
            delta: Length constraint ``Q.∆`` (same unit as the network edge lengths).
            region: Region of interest ``Q.Λ``; the whole network when omitted.
            algorithm: "app", "tgen", "greedy" or "exact"; the engine default when
                omitted.
        """
        lcmsr_query = LCMSRQuery.create(keywords, delta=delta, region=region)
        instance = self.build_instance(lcmsr_query)
        return self.solver(algorithm).solve(instance)

    def query_topk(
        self,
        keywords: Iterable[str],
        delta: float,
        k: int,
        region: Optional[Rectangle] = None,
        algorithm: Optional[str] = None,
    ) -> TopKResult:
        """Answer a top-k LCMSR query (Section 6.2)."""
        lcmsr_query = LCMSRQuery.create(keywords, delta=delta, region=region, k=k)
        instance = self.build_instance(lcmsr_query)
        return self.solver(algorithm).solve_topk(instance, k)
