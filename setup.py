"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (where PEP-660
editable installs are unavailable), via ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
