"""Solver-time: dense position-indexed substrate vs the dict reference loops.

Not a paper figure — this benchmarks the dense solver substrate
(:mod:`repro.core.dense`). The claim: running the paper's online algorithms on
the position-indexed :class:`~repro.core.dense.DenseInstance` arrays is **at
least 2x faster** than the dict reference backend for Greedy and TGEN on the
largest configuration, while producing byte-identical results.

Three checks:

1. **Solver-time throughput** — total ``solve`` time over a mixed windowed /
   window-less workload, same built instances, backend switched with
   ``ProblemInstance.with_backend`` — so the comparison isolates the solver
   hot loops (instance building, measured by ``bench_scoring.py``, is out of
   the picture). The ≥2x bar is asserted for Greedy and TGEN on the largest
   configuration. Greedy solves in well under a millisecond, so its loop runs
   ``GREEDY_INNER`` passes per timing sample to get out of timer jitter.
2. **Fidelity** — every timed query is first checked byte-identical across the
   backends (same region node/edge sets, bit-equal weight and length); APP and
   Exact identity is enforced at tier-1 by
   ``tests/core/test_solver_backend_parity.py``.
3. **Perf trajectory record** — set ``REPRO_BENCH_JSON=<path>`` (the
   ``make bench-json`` target does) to write the measured numbers as JSON, so
   the repo's performance history is recorded run over run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_solver_backend.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.core.greedy import GreedySolver
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentRunner
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

# (label, rows, cols, objects, clusters, delta): the dict loops pay hashing and
# rank re-derivation per candidate and per tuple pair, the dense loops flat
# list indexing over precomputed columns — the gap grows with window size and
# budget, so the ≥2x bar is asserted on the largest config.
if FULL_SCALE:
    CONFIGS = [
        ("small", 24, 24, 2000, 10, 1200.0, 2.0),
        ("medium", 48, 48, 9000, 30, 1600.0, 2.0),
        ("large", 80, 80, 26000, 70, 2400.0, 4.0),
    ]
elif SMOKE_SCALE:
    CONFIGS = [("small", 20, 20, 1500, 8, 900.0, 1.5)]
else:
    CONFIGS = [
        ("small", 24, 24, 2000, 10, 1200.0, 2.0),
        ("large", 64, 64, 16000, 55, 2000.0, 3.0),
    ]

SEED = 42
MIN_SPEEDUP_LARGEST = 2.0
REPEATS = 1 if SMOKE_SCALE else 3
GREEDY_INNER = 2 if SMOKE_SCALE else 25


def _build_workload(dataset, num_queries: int, delta: float, area_km2: float):
    """Mixed workload: windowed queries plus window-less variants."""
    windowed = generate_workload(
        dataset,
        num_queries=num_queries,
        num_keywords=3,
        delta=delta,
        area_km2=area_km2,
        seed=9,
    )
    return windowed + [query.with_region(None) for query in windowed[: num_queries // 2]]


def _time_solves(solver, instances, inner: int) -> float:
    """Best-of-REPEATS total solve time over the instances (x inner passes)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(inner):
            for instance in instances:
                solver.solve(instance)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_solver_backend_dense_2x():
    rows_out: List[List[object]] = []
    records: List[Dict[str, object]] = []
    largest_speedups: Dict[str, float] = {}
    for label, rows, cols, objects, clusters, delta, area in CONFIGS:
        dataset = build_ny_like(
            rows=rows, cols=cols, block_size=120.0,
            num_objects=objects, num_clusters=clusters, seed=SEED,
        )
        bundle = IndexBundle.from_dataset(dataset)
        runner = ExperimentRunner.from_bundle(bundle, weight_backend="columnar")
        num_queries = 2 if SMOKE_SCALE else 4
        queries = _build_workload(dataset, num_queries, delta, area)
        built = [runner.build(query) for query in queries]
        dict_instances = [instance.with_backend("dict") for instance in built]
        dense_instances = [instance.with_backend("dense") for instance in built]

        # --- fidelity first (also warms every path) ---
        solvers = [(GreedySolver(), GREEDY_INNER), (TGENSolver(), 1)]
        for solver, _ in solvers:
            for instance_d, instance_n in zip(dict_instances, dense_instances):
                a = solver.solve(instance_d)
                b = solver.solve(instance_n)
                assert a.region.nodes == b.region.nodes, (label, solver.name)
                assert a.region.edges == b.region.edges, (label, solver.name)
                assert a.weight == b.weight and a.length == b.length, (
                    "solver results must be byte-identical across backends"
                )

        config_record: Dict[str, object] = {
            "config": label,
            "rows": rows,
            "cols": cols,
            "objects": objects,
            "delta": delta,
            "queries": len(queries),
            "repeats": REPEATS,
        }
        for solver, inner in solvers:
            dict_seconds = _time_solves(solver, dict_instances, inner)
            dense_seconds = _time_solves(solver, dense_instances, inner)
            speedup = dict_seconds / dense_seconds
            largest_speedups[solver.name] = speedup
            rows_out.append([
                f"{label} ({rows}x{cols}, Δ={delta:.0f})",
                solver.name,
                dict_seconds,
                dense_seconds,
                f"{speedup:.1f}x",
            ])
            config_record[f"{solver.name.lower()}_dict_seconds"] = dict_seconds
            config_record[f"{solver.name.lower()}_dense_seconds"] = dense_seconds
            config_record[f"{solver.name.lower()}_speedup"] = speedup
        records.append(config_record)

    print()
    print(format_table(
        ["configuration", "solver", "dict (s)", "dense (s)", "speedup"],
        rows_out,
        title="solver time on shared instances: dict reference vs dense substrate",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "bench_solver_backend",
            "smoke": SMOKE_SCALE,
            "full": FULL_SCALE,
            "configs": records,
            "largest_speedups": largest_speedups,
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    if SMOKE_SCALE:
        # Smoke scale asserts identity (above) and records the numbers; the 2x
        # bar is a large-configuration claim — sub-millisecond solves on tiny
        # windows are dominated by fixed per-call overhead.
        return
    for solver_name, speedup in largest_speedups.items():
        assert speedup >= MIN_SPEEDUP_LARGEST, (
            f"the dense substrate must be >= {MIN_SPEEDUP_LARGEST:.0f}x faster than "
            f"the dict backend for {solver_name} on the largest configuration, "
            f"got {speedup:.1f}x"
        )
