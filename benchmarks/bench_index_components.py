"""Micro-benchmarks of the substrates: B+-tree, grid index scoring, Dijkstra, MaxRS.

These are not paper figures; they document the cost of the indexing layer (the paper's
Section 3 structures) and of the main graph primitives the algorithms are built on, so
regressions in the substrates are visible separately from the solver benchmarks.
"""

from __future__ import annotations

import random

from repro.baselines.maxrs import MaxRSSolver
from repro.index.bptree import BPlusTree
from repro.network.shortest_path import dijkstra


def test_bench_bptree_insert_and_scan(benchmark):
    rng = random.Random(7)
    keys = [rng.randrange(1_000_000) for _ in range(20_000)]

    def build_and_scan():
        tree = BPlusTree(order=64)
        for key in keys:
            tree.insert(key, key)
        return sum(1 for _ in tree.range_scan(100_000, 900_000))

    count = benchmark(build_and_scan)
    assert count > 0


def test_bench_grid_scoring(benchmark, ny_dataset, ny_default_workload):
    query = ny_default_workload[0]

    def score():
        return ny_dataset.grid.score_objects(query.keywords, query.region)

    scores = benchmark(score)
    assert scores


def test_bench_dijkstra(benchmark, ny_dataset):
    network = ny_dataset.network
    source = next(network.node_ids())

    def run():
        dist, _ = dijkstra(network, source)
        return len(dist)

    settled = benchmark(run)
    assert settled == network.num_nodes


def test_bench_maxrs(benchmark, ny_dataset, ny_default_workload):
    query = ny_default_workload[0]
    scores = ny_dataset.grid.score_objects(query.keywords, query.region)
    points = {oid: ny_dataset.corpus.get(oid).location() for oid in scores}
    solver = MaxRSSolver(width=500.0, height=500.0)

    result = benchmark(lambda: solver.solve(points, scores, window=query.region))
    assert result.weight >= 0.0
