"""Figures 7 and 8: APP runtime and result quality as the scaling parameter α varies (NY).

The paper sweeps α over {0.01, 0.1, 0.3, 0.5, 0.7, 0.9} with β = 0.1 and the default
query arguments, and reports that runtime drops as α grows (coarser scaled weights →
fewer tuples) while the returned region weight barely changes. This bench reruns the
sweep on the NY-like dataset and prints both series.
"""

from __future__ import annotations

from repro.core import APPSolver
from repro.evaluation.reporting import format_series
from repro.evaluation.sweeps import sweep_solver_parameter

ALPHA_VALUES = [0.01, 0.1, 0.3, 0.5, 0.7, 0.9]


def test_fig07_08_app_vs_alpha(benchmark, ny_runner, ny_default_workload):
    sweep = sweep_solver_parameter(
        ny_runner,
        "alpha",
        ny_default_workload,
        lambda alpha: APPSolver(alpha=alpha, beta=0.1),
        ALPHA_VALUES,
    )
    print()
    print(format_series(sweep, "runtime", "Figure 7 (reproduced): APP runtime (s) vs alpha, NY-like"))
    print()
    print(format_series(sweep, "weight", "Figure 8 (reproduced): APP region weight vs alpha, NY-like"))

    weights = [point.weights["APP"] for point in sweep.points]
    # Paper observation: accuracy varies only slightly across alpha (Fig. 8's y-range
    # spans ~2 %); allow a generous band at this scale.
    assert max(weights) > 0
    assert min(weights) >= 0.7 * max(weights)

    # Time the paper's chosen default (alpha = 0.5) for the benchmark report.
    instance = ny_runner.build(ny_default_workload[0])
    solver = APPSolver(alpha=0.5, beta=0.1)
    benchmark.pedantic(lambda: solver.solve(instance), rounds=1, iterations=1)
