"""Anytime tier: quality-vs-latency curves for deadlines and sampled σ_v.

Not a paper figure — this benchmarks the per-query service policies
(:mod:`repro.core.anytime` + the sampled estimator in
:mod:`repro.textindex.columnar`). Two claims:

1. **Deadlines are honoured** — a budgeted solver returns within
   ``DEADLINE_TOLERANCE`` (1.2×) of its deadline on the bench configuration
   (solve time; the budget attaches when the solve starts), and every
   truncated answer's ``quality_regret_bound`` is admissible empirically:
   the unbudgeted solver's weight never exceeds achieved + bound.
2. **Sampling pays for itself at corpus scale** — on the large-corpus
   configuration (400 K objects at the default scale) the sampled σ_v
   estimator is **≥ 2× faster** than the exact aggregation at an ε whose
   95% region CIs cover the truth **≥ 90%** of the time, measured through
   the real serving path (greedy answers under ``sampled(ε)`` checked
   against exact σ over the returned region). End-to-end sampled query
   latency is recorded alongside.

Smoke scale (``REPRO_BENCH_SMOKE=1``) runs tiny configurations and records
the numbers without asserting the bars — the sampled tier's win is a claim
about corpus scale, not about 5 K objects.

Set ``REPRO_BENCH_JSON=<path>`` (the ``make bench-json`` target does) to
write the measured curves as JSON (the committed ``BENCH_anytime.json``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_anytime.py -q -s
"""

from __future__ import annotations

import json
import os
import statistics
import time
from typing import Dict, List

from repro.core.anytime import Budget, QueryPolicy
from repro.core.greedy import GreedySolver
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.engine import LCMSREngine
from repro.evaluation.reporting import format_table
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

SEED = 42
DEADLINE_TOLERANCE = 1.2
MIN_SAMPLED_SPEEDUP = 2.0
MIN_CI_COVERAGE = 0.9

if SMOKE_SCALE:
    ANYTIME_CONFIG = {"rows": 26, "cols": 26, "objects": 2200, "clusters": 14}
    SAMPLED_CONFIG = {"rows": 20, "cols": 20, "objects": 5000, "clusters": 10}
    DEADLINES_MS = (50.0,)
    EPSILONS = (0.3,)
    COVERAGE_SEEDS = 5
else:
    ANYTIME_CONFIG = {"rows": 42, "cols": 42, "objects": 6000, "clusters": 28}
    # The regime the sampled tier is built for: exact σ_v aggregation scales
    # with the query terms' posting lists, the sampler with its fixed budget.
    SAMPLED_CONFIG = {"rows": 120, "cols": 120, "objects": 400_000,
                      "clusters": 80}
    DEADLINES_MS = (25.0, 50.0, 100.0, 200.0)
    EPSILONS = (0.5, 0.3, 0.15)
    COVERAGE_SEEDS = 20

TIMING_REPEATS = 3


def _build_engine(config: Dict[str, int]) -> LCMSREngine:
    dataset = build_ny_like(rows=config["rows"], cols=config["cols"],
                            block_size=120.0, num_objects=config["objects"],
                            num_clusters=config["clusters"], seed=SEED)
    return LCMSREngine.from_bundle(IndexBundle.from_dataset(dataset))


def _merge_json(extra: Dict[str, object]) -> None:
    json_path = os.environ.get("REPRO_BENCH_JSON")
    if not json_path:
        return
    payload: Dict[str, object] = {}
    if os.path.exists(json_path):
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {}
    payload.setdefault("benchmark", "bench_anytime")
    payload.setdefault("smoke", SMOKE_SCALE)
    payload.setdefault("full", FULL_SCALE)
    payload.update(extra)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {json_path}")


def test_bench_anytime_deadline_curves():
    """Budgeted Greedy/TGEN: solve time vs deadline, regret admissibility."""
    engine = _build_engine(ANYTIME_CONFIG)
    keywords = [t for t, _ in engine.corpus.most_frequent_terms(3)]
    query = LCMSRQuery.create(keywords, delta=1500.0)
    instance = engine.build_instance(query)

    rows_out: List[List[object]] = []
    records: List[Dict[str, object]] = []
    worst_overshoot = 0.0
    for solver in (GreedySolver(), TGENSolver()):
        reference = solver.solve(instance)  # unbudgeted: the quality ceiling
        for deadline_ms in DEADLINES_MS:
            best = None
            for _ in range(TIMING_REPEATS):  # fresh budget each run
                budgeted = solver.solve(
                    instance.with_budget(Budget.from_deadline_ms(deadline_ms))
                )
                if best is None or budgeted.runtime_seconds < best.runtime_seconds:
                    best = budgeted
            overshoot = best.runtime_seconds / (deadline_ms / 1000.0)
            expired = best.stats.get("budget_expired", 0.0) == 1.0
            if expired:
                worst_overshoot = max(worst_overshoot, overshoot)
            bound = best.stats["quality_regret_bound"]
            regret = reference.weight - best.weight
            assert regret <= bound + 1e-9, (
                f"{solver.name} @ {deadline_ms}ms: empirical regret {regret:.4f} "
                f"exceeds the reported bound {bound:.4f}"
            )
            rows_out.append([
                solver.name, f"{deadline_ms:.0f}",
                best.runtime_seconds * 1e3,
                f"{overshoot:.2f}x" + (" (expired)" if expired else ""),
                best.weight, f"{bound:.2f}",
            ])
            records.append({
                "solver": solver.name,
                "deadline_ms": deadline_ms,
                "solve_seconds": best.runtime_seconds,
                "overshoot": overshoot,
                "budget_expired": expired,
                "achieved_weight": best.weight,
                "reference_weight": reference.weight,
                "regret_bound": bound,
                "empirical_regret": regret,
            })

    print()
    print(format_table(
        ["solver", "deadline (ms)", "solve (ms)", "overshoot", "weight", "regret bound"],
        rows_out,
        title=f"anytime deadlines on {ANYTIME_CONFIG['objects']} objects "
              f"(whole network, 3 keywords)",
    ))
    _merge_json({"anytime": records})

    if SMOKE_SCALE:
        return
    assert worst_overshoot <= DEADLINE_TOLERANCE, (
        f"an expired budgeted solve overshot its deadline by "
        f"{worst_overshoot:.2f}x (> {DEADLINE_TOLERANCE}x)"
    )


def test_bench_sampled_epsilon_curves():
    """Sampled σ_v: estimator speedup and region-CI coverage per ε."""
    engine = _build_engine(SAMPLED_CONFIG)
    pipeline = engine.bundle.weight_pipeline()
    keywords = [t for t, _ in engine.corpus.most_frequent_terms(3)]
    delta = 1500.0

    def best_seconds(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    exact_weights = pipeline.node_weights(keywords)
    exact_seconds = best_seconds(lambda: pipeline.node_sums(keywords))
    exact_query_seconds = best_seconds(
        lambda: engine.query(keywords, delta, algorithm="greedy"),
        repeats=TIMING_REPEATS,
    )
    # Warm the sampling frame (a one-off argsort, cached per pipeline).
    pipeline.node_sums_sampled(keywords, epsilon=EPSILONS[0], rng=0)

    rows_out: List[List[object]] = []
    records: List[Dict[str, object]] = []
    bar_met = False
    for epsilon in EPSILONS:
        sampled = pipeline.node_sums_sampled(keywords, epsilon=epsilon, rng=0)
        sampled_seconds = best_seconds(
            lambda: pipeline.node_sums_sampled(keywords, epsilon=epsilon, rng=0)
        )
        estimator_speedup = exact_seconds / sampled_seconds

        # Coverage + end-to-end latency through the real serving path: greedy
        # under sampled(ε), the answer's quality_ci checked against exact σ
        # over the returned region.
        covered = 0
        query_speedups: List[float] = []
        for seed in range(COVERAGE_SEEDS):
            policy = QueryPolicy.sampled(epsilon, seed=seed)
            start = time.perf_counter()
            result = engine.query(keywords, delta, algorithm="greedy",
                                  policy=policy)
            seconds = time.perf_counter() - start
            query_speedups.append(exact_query_seconds / seconds)
            true_weight = sum(exact_weights.get(node, 0.0)
                              for node in result.region.nodes)
            ci = result.stats.get("quality_ci", 0.0)
            if abs(result.weight - true_weight) <= ci + 1e-9:
                covered += 1
        coverage = covered / COVERAGE_SEEDS
        median_query_speedup = statistics.median(query_speedups)
        if estimator_speedup >= MIN_SAMPLED_SPEEDUP and coverage >= MIN_CI_COVERAGE:
            bar_met = True
        rows_out.append([
            f"{epsilon}", f"{sampled.sample_size}/{sampled.frame_size}",
            exact_seconds * 1e3, sampled_seconds * 1e3,
            f"{estimator_speedup:.1f}x", f"{coverage:.0%}",
            f"{median_query_speedup:.1f}x",
        ])
        records.append({
            "epsilon": epsilon,
            "sample_size": sampled.sample_size,
            "frame_size": sampled.frame_size,
            "exact_sums_seconds": exact_seconds,
            "sampled_sums_seconds": sampled_seconds,
            "estimator_speedup": estimator_speedup,
            "region_ci_coverage": coverage,
            "coverage_seeds": COVERAGE_SEEDS,
            "exact_query_seconds": exact_query_seconds,
            "median_query_speedup": median_query_speedup,
        })

    print()
    print(format_table(
        ["epsilon", "sample", "exact σ (ms)", "sampled σ (ms)", "speedup",
         "CI coverage", "query speedup"],
        rows_out,
        title=f"sampled σ_v on {SAMPLED_CONFIG['objects']} objects "
              f"(greedy serving path, {COVERAGE_SEEDS} seeds)",
    ))
    _merge_json({"sampled": records})

    if SMOKE_SCALE:
        return
    assert bar_met, (
        f"no ε in {EPSILONS} reached ≥{MIN_SAMPLED_SPEEDUP}x estimator speedup "
        f"with ≥{MIN_CI_COVERAGE:.0%} region-CI coverage"
    )
