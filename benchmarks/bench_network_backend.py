"""Dict vs CSR network backend: window extraction, Dijkstra, end-to-end queries.

Not a paper figure — this benchmarks the frozen
:class:`~repro.network.compact.CompactNetwork` snapshot introduced for the serving
path against the mutable dict-of-dicts :class:`~repro.network.graph.RoadNetwork`.
Three claims are exercised:

1. **Window-instance construction** is at least 2x faster on the CSR backend: the
   snapshot filters nodes with one vectorised coordinate comparison instead of
   rebuilding node and adjacency dicts per query window.
2. **Fidelity**: Dijkstra returns identical ``(dist, parent)`` mappings on both
   backends, and every solver (Greedy, TGEN, APP) answers identically over
   dict-backed and CSR-backed engines.
3. **End-to-end cold queries** are measurably faster through a frozen bundle.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_network_backend.py -q -s
"""

from __future__ import annotations

import time
from typing import List

from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.evaluation.reporting import format_table
from repro.network.builders import manhattan_network
from repro.network.compact import CompactNetwork
from repro.network.shortest_path import dijkstra
from repro.network.subgraph import Rectangle, induced_subgraph
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

if FULL_SCALE:
    GRID_SIDE = 80  # 6400 nodes
    NUM_WINDOWS = 40
    NUM_SOURCES = 12
elif SMOKE_SCALE:
    GRID_SIDE = 30
    NUM_WINDOWS = 12
    NUM_SOURCES = 4
else:
    GRID_SIDE = 48  # 2304 nodes
    NUM_WINDOWS = 24
    NUM_SOURCES = 8

BLOCK = 120.0  # meters per block, matching the NY-like builder


def _network():
    return manhattan_network(GRID_SIDE, GRID_SIDE, spacing=BLOCK, seed=23)


def _windows(network) -> List[Rectangle]:
    """Query windows of varying size tiled over the network extent."""
    min_x, min_y, max_x, max_y = network.bounding_box()
    spans = [(max_x - min_x) * f for f in (0.25, 0.35, 0.5)]
    windows = []
    for index in range(NUM_WINDOWS):
        span = spans[index % len(spans)]
        fx = (index * 0.37) % 0.6
        fy = (index * 0.53) % 0.6
        x0 = min_x + fx * (max_x - min_x)
        y0 = min_y + fy * (max_y - min_y)
        windows.append(Rectangle(x0, y0, min(x0 + span, max_x), min(y0 + span, max_y)))
    return windows


def test_bench_window_instance_construction_2x():
    network = _network()
    snapshot = CompactNetwork.from_network(network)
    windows = _windows(network)
    weights = {node_id: 1.0 for i, node_id in enumerate(network.node_ids()) if i % 5 == 0}
    queries = [
        LCMSRQuery.create(["kw"], delta=4.0 * BLOCK, region=window) for window in windows
    ]

    def build_all(graph) -> float:
        start = time.perf_counter()
        for _ in range(3):  # repeat for timing stability; each build is cold
            for query in queries:
                build_instance(graph, query, node_weights=weights)
        return time.perf_counter() - start

    build_all(network)  # warm both paths once before timing
    build_all(snapshot)
    dict_seconds = build_all(network)
    csr_seconds = build_all(snapshot)

    # Fidelity: each window resolves to the same sub-network and weights.
    for query in queries[:: max(1, len(queries) // 6)]:
        dict_instance = build_instance(network, query, node_weights=weights)
        csr_instance = build_instance(snapshot, query, node_weights=weights)
        assert set(dict_instance.graph.node_ids()) == set(csr_instance.graph.node_ids())
        assert dict_instance.num_candidate_edges == csr_instance.num_candidate_edges
        assert dict_instance.weights == csr_instance.weights

    builds = 3 * len(queries)
    print()
    print(format_table(
        ["backend", "windows", "seconds", "windows/sec"],
        [
            ["dict", builds, dict_seconds, builds / dict_seconds],
            ["csr snapshot", builds, csr_seconds, builds / csr_seconds],
        ],
        title=f"window-instance construction, {network.num_nodes}-node network "
              f"(speedup {dict_seconds / csr_seconds:.1f}x)",
    ))
    assert csr_seconds * 2.0 <= dict_seconds, (
        f"CSR window-instance construction must be >=2x faster: "
        f"dict {dict_seconds:.4f}s vs csr {csr_seconds:.4f}s"
    )


def test_bench_window_extraction_raw():
    """Raw subgraph extraction (no weights), the windowing primitive itself."""
    network = _network()
    snapshot = CompactNetwork.from_network(network)
    windows = _windows(network)

    def extract_all(graph) -> float:
        start = time.perf_counter()
        for _ in range(3):  # repeat for timing stability; each extraction is cold
            for window in windows:
                induced_subgraph(graph, window)
        return time.perf_counter() - start

    extract_all(network)
    extract_all(snapshot)
    dict_seconds = extract_all(network)
    csr_seconds = extract_all(snapshot)
    extractions = 3 * len(windows)
    print()
    print(format_table(
        ["backend", "extractions", "seconds"],
        [["dict", extractions, dict_seconds], ["csr snapshot", extractions, csr_seconds]],
        title=f"raw window extraction (speedup {dict_seconds / csr_seconds:.1f}x)",
    ))
    assert csr_seconds * 2.0 <= dict_seconds


def test_bench_dijkstra_parity_and_cost():
    network = _network()
    snapshot = CompactNetwork.from_network(network)
    sources = list(network.node_ids())[:: max(1, network.num_nodes // NUM_SOURCES)]

    start = time.perf_counter()
    dict_runs = [dijkstra(network, source) for source in sources]
    dict_seconds = time.perf_counter() - start
    start = time.perf_counter()
    csr_runs = [dijkstra(snapshot, source) for source in sources]
    csr_seconds = time.perf_counter() - start

    # Fidelity: identical distances AND identical parent trees.
    for (dist_d, parent_d), (dist_c, parent_c) in zip(dict_runs, csr_runs):
        assert dist_d == dist_c
        assert parent_d == parent_c

    print()
    print(format_table(
        ["backend", "runs", "seconds"],
        [["dict", len(sources), dict_seconds], ["csr snapshot", len(sources), csr_seconds]],
        title=f"full-graph Dijkstra (speedup {dict_seconds / csr_seconds:.2f}x)",
    ))
    # The heap dominates full-graph Dijkstra, so the CSR win is modest; the bar
    # here is parity plus no regression (generous noise margin).
    assert csr_seconds <= dict_seconds * 1.25


def test_bench_end_to_end_cold_queries(ny_dataset):
    dict_bundle = IndexBundle.build(ny_dataset.network, ny_dataset.corpus,
                                    freeze_network=False)
    csr_bundle = IndexBundle.build(ny_dataset.network, ny_dataset.corpus)
    dict_engine = LCMSREngine.from_bundle(dict_bundle)
    csr_engine = LCMSREngine.from_bundle(csr_bundle)
    workload = generate_workload(
        ny_dataset, num_queries=8, num_keywords=3, delta=2000.0, area_km2=4.0, seed=7
    )

    # Fidelity first: every solver answers identically on both backends.
    for algorithm in ("greedy", "tgen", "app"):
        for query in workload:
            a = dict_engine.query(query.keywords, query.delta, region=query.region,
                                  algorithm=algorithm)
            b = csr_engine.query(query.keywords, query.delta, region=query.region,
                                 algorithm=algorithm)
            assert a.region.nodes == b.region.nodes, (algorithm, query.keywords)
            assert a.region.edges == b.region.edges
            assert abs(a.weight - b.weight) < 1e-9
            assert abs(a.length - b.length) < 1e-9

    # Cold end-to-end cost on the build-dominated path (greedy): every query
    # rebuilds its window instance, which is exactly what the snapshot speeds up.
    passes = 2 if SMOKE_SCALE else 4

    def run_cold(engine) -> float:
        start = time.perf_counter()
        for _ in range(passes):
            for query in workload:
                engine.query(query.keywords, query.delta, region=query.region,
                             algorithm="greedy")
        return time.perf_counter() - start

    run_cold(dict_engine)  # warm code paths / caches that are not per-query
    run_cold(csr_engine)
    dict_seconds = run_cold(dict_engine)
    csr_seconds = run_cold(csr_engine)
    total = passes * len(workload)
    print()
    print(format_table(
        ["backend", "cold queries", "seconds", "queries/sec"],
        [
            ["dict", total, dict_seconds, total / dict_seconds],
            ["csr snapshot", total, csr_seconds, total / csr_seconds],
        ],
        title=f"end-to-end cold queries, greedy (speedup {dict_seconds / csr_seconds:.2f}x)",
    ))
    assert csr_seconds < dict_seconds, (
        f"frozen bundle must serve cold queries faster: "
        f"dict {dict_seconds:.4f}s vs csr {csr_seconds:.4f}s"
    )
