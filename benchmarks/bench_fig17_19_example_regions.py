"""Figures 17-19: qualitative example — the regions TGEN, APP and Greedy return for
the same query.

The paper's example uses the Bronx with keywords "cafe restaurant" and an 8 km length
constraint: Greedy returns 7 objects (weight 3.6), APP 11 objects (weight 4.8) and
TGEN 15 objects (weight 5.9), all with street-aligned irregular shapes. This bench
runs the same style of query on the NY-like dataset, prints the per-algorithm object
counts and weights, and checks that the qualitative ordering and the irregular-shape
property (the region is a tree along the streets, not a filled block) hold.
"""

from __future__ import annotations

from repro.core import APPSolver, GreedySolver, LCMSRQuery, TGENSolver, build_instance
from repro.evaluation.reporting import format_table
from repro.network.subgraph import Rectangle

from benchmarks.conftest import NY_PARAMS, paper_km_to_bench_meters


def test_fig17_19_example_regions(benchmark, ny_dataset):
    # A neighbourhood-scale window and the paper's "cafe restaurant" query with an
    # 8 km budget (scaled).
    extent = ny_dataset.extent
    cx, cy = extent.center()
    window = Rectangle.square_of_area(cx, cy, 3.0 * 1e6)
    query = LCMSRQuery.create(
        ["cafe", "restaurant"], delta=paper_km_to_bench_meters(8.0), region=window
    )
    instance = build_instance(
        ny_dataset.network, query, grid_index=ny_dataset.grid, mapping=ny_dataset.mapping
    )

    solvers = {
        "TGEN": TGENSolver(),
        "APP": APPSolver(alpha=NY_PARAMS["app_alpha"], beta=NY_PARAMS["app_beta"]),
        "Greedy": GreedySolver(mu=NY_PARAMS["greedy_mu"]),
    }
    rows = []
    results = {}
    for name, solver in solvers.items():
        result = solver.solve(instance)
        results[name] = result
        relevant_objects = sum(
            1
            for node_id in result.region.nodes
            for oid in ny_dataset.mapping.objects_at(node_id)
            if ny_dataset.corpus.get(oid).contains_any(query.keywords)
        )
        rows.append(
            [name, relevant_objects, result.weight, result.length, result.region.num_nodes]
        )

    print()
    print(
        format_table(
            ["algorithm", "relevant objects", "weight", "length (m)", "nodes"],
            rows,
            title="Figures 17-19 (reproduced): example regions for 'cafe restaurant'",
        )
    )

    # Paper shape: Greedy's region is the lightest of the three; the best of APP/TGEN
    # clearly beats it; every region is connected and street-aligned (a subgraph whose
    # edge count stays close to a tree rather than a filled disk).
    best_weight = max(results["APP"].weight, results["TGEN"].weight)
    assert results["Greedy"].weight <= best_weight + 1e-9
    for result in results.values():
        if result.region.num_nodes > 1:
            assert result.region.is_connected()
            assert result.region.num_edges <= result.region.num_nodes + 2

    benchmark.pedantic(lambda: solvers["TGEN"].solve(instance), rounds=1, iterations=1)
