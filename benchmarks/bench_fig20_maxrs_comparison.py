"""Figure 20 / Section 7.5: LCMSR vs. MaxRS region quality.

The paper's procedure: for each query, compute the best 500 m × 500 m MaxRS rectangle,
derive a comparable LCMSR length budget as the minimum road length connecting the
rectangle's relevant objects, run the LCMSR query (TGEN), and have 5 annotators judge
which region is better; LCMSR wins on 90 % of the 20 queries. The reproduction follows
the same procedure with the simulated annotator panel (DESIGN.md §3) and a rectangle
scaled like the other spatial parameters.
"""

from __future__ import annotations

from repro.baselines.maxrs import MaxRSSolver
from repro.core import LCMSRQuery, TGENSolver, build_instance
from repro.datasets.queries import generate_workload
from repro.evaluation.reporting import format_table
from repro.evaluation.survey import RegionJudgement, run_survey
from repro.network.shortest_path import steiner_tree_length

from benchmarks.conftest import NY_DEFAULTS, QUERIES_PER_SETTING, SPATIAL_SCALE

NUM_COMPARISON_QUERIES = max(8, 3 * QUERIES_PER_SETTING)
RECTANGLE_SIDE = 500.0 * SPATIAL_SCALE * 5  # paper: 500 m; kept neighbourhood-sized here


def test_fig20_lcmsr_vs_maxrs(benchmark, ny_dataset):
    workload = generate_workload(
        ny_dataset,
        num_queries=NUM_COMPARISON_QUERIES,
        num_keywords=2,
        delta=NY_DEFAULTS["delta"],
        area_km2=NY_DEFAULTS["area_km2"],
        seed=500,
    )
    maxrs_solver = MaxRSSolver(width=RECTANGLE_SIDE, height=RECTANGLE_SIDE)
    tgen = TGENSolver()
    corpus, mapping, network = ny_dataset.corpus, ny_dataset.mapping, ny_dataset.network

    pairs = []
    rows = []
    for query in workload:
        scores = ny_dataset.grid.score_objects(query.keywords, query.region)
        if not scores:
            continue
        points = {oid: corpus.get(oid).location() for oid in scores}
        maxrs = maxrs_solver.solve(points, scores, window=query.region)
        if maxrs.rectangle is None:
            continue
        terminals = [mapping.node_of(oid) for oid in maxrs.covered_ids]
        budget = max(steiner_tree_length(network, terminals), RECTANGLE_SIDE)
        lcmsr_query = LCMSRQuery.create(query.keywords, delta=budget, region=query.region)
        instance = build_instance(
            network, lcmsr_query, grid_index=ny_dataset.grid, mapping=mapping
        )
        lcmsr = tgen.solve(instance)
        lcmsr_objects = sum(
            1
            for node_id in lcmsr.region.nodes
            for oid in mapping.objects_at(node_id)
            if oid in scores
        )
        pairs.append(
            (
                RegionJudgement(lcmsr_objects, lcmsr.weight, True, max(lcmsr.length, 1.0)),
                RegionJudgement(len(maxrs.covered_ids), maxrs.weight, False, budget),
            )
        )
        rows.append(
            [
                " ".join(query.keywords),
                lcmsr_objects,
                round(lcmsr.weight, 2),
                len(maxrs.covered_ids),
                round(maxrs.weight, 2),
            ]
        )

    result = run_survey(pairs, num_annotators=5, majority=3)
    print()
    print(
        format_table(
            ["query", "LCMSR objects", "LCMSR weight", "MaxRS objects", "MaxRS weight"],
            rows,
            title="Figure 20 / Section 7.5 (reproduced): per-query comparison",
        )
    )
    print(
        f"\nSimulated survey over {result.queries} queries: LCMSR preferred on "
        f"{result.lcmsr_preference_rate:.0%} (paper: 90%); "
        f"MaxRS wins {result.maxrs_wins}, ties {result.ties}"
    )
    assert result.queries >= 5
    # Paper headline: LCMSR regions are preferred on the large majority of queries.
    assert result.lcmsr_preference_rate >= 0.6

    representative = pairs[0]
    benchmark.pedantic(
        lambda: run_survey([representative] * 20), rounds=1, iterations=1
    )
