"""Instance-build throughput: columnar σ_v pipeline vs the scalar paths.

Not a paper figure — this benchmarks the columnar scoring refactor
(:mod:`repro.textindex.columnar`). The claim: building a problem instance (index
probe + per-node weight aggregation) through the frozen columnar index is **at
least 3x faster** than the scalar grid-postings path on the largest
configuration, while producing byte-identical solver results.

Three checks:

1. **Instance-build throughput** — total ``build_instance`` time over a mixed
   windowed / window-less workload for the ``columnar``, ``grid`` and ``scorer``
   backends of :class:`~repro.evaluation.runner.ExperimentRunner`; the ≥3x
   assertion compares columnar against the grid path (the previous engine hot
   path) on the largest configuration.
2. **Fidelity** — σ_v dicts bit-identical (values *and* iteration order) between
   the columnar pipeline and the object-loop reference, and every heuristic
   solver returns byte-identical regions/weights on top of both; the grid path
   agrees on regions with weights equal up to float summation order.
3. **Perf trajectory record** — set ``REPRO_BENCH_JSON=<path>`` (the
   ``make bench-json`` target does) to append the measured numbers as JSON, so
   the repo's performance history is recorded run over run.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scoring.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.core.app import APPSolver
from repro.core.greedy import GreedySolver
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentRunner
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

# (label, rows, cols, objects, clusters): the scalar grid walk pays Python-level
# work per posting and per cell, the columnar pipeline a few array kernels — the
# gap grows with corpus size, so the ≥3x bar is asserted on the largest config.
if FULL_SCALE:
    CONFIGS = [
        ("small", 24, 24, 2000, 10),
        ("medium", 48, 48, 9000, 30),
        ("large", 80, 80, 26000, 70),
    ]
elif SMOKE_SCALE:
    CONFIGS = [("small", 20, 20, 1500, 8)]
else:
    CONFIGS = [
        ("small", 24, 24, 2000, 10),
        ("large", 64, 64, 16000, 55),
    ]

SEED = 42
MIN_SPEEDUP_LARGEST = 3.0
REPEATS = 1 if SMOKE_SCALE else 3


def _build_workload(dataset, num_queries: int):
    """Mixed workload: windowed queries plus their window-less variants."""
    windowed = generate_workload(
        dataset,
        num_queries=num_queries,
        num_keywords=3,
        delta=1200.0,
        area_km2=2.0,
        seed=9,
    )
    return windowed + [query.with_region(None) for query in windowed[: num_queries // 2]]


def _time_builds(runner: ExperimentRunner, queries) -> float:
    """Best-of-REPEATS total instance-build time over the workload."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for query in queries:
            runner.build(query)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_instance_build_columnar_3x():
    rows_out: List[List[object]] = []
    records: List[Dict[str, object]] = []
    speedups: List[float] = []
    for label, rows, cols, objects, clusters in CONFIGS:
        dataset = build_ny_like(
            rows=rows, cols=cols, block_size=120.0,
            num_objects=objects, num_clusters=clusters, seed=SEED,
        )
        bundle = IndexBundle.from_dataset(dataset)
        columnar_runner = ExperimentRunner.from_bundle(bundle, weight_backend="columnar")
        grid_runner = ExperimentRunner.from_bundle(bundle, weight_backend="grid")
        scorer_runner = ExperimentRunner.from_bundle(bundle, weight_backend="scorer")

        num_queries = 2 if SMOKE_SCALE else 6
        queries = _build_workload(dataset, num_queries)

        # --- fidelity first (also warms every path) ---
        solvers = [GreedySolver(), TGENSolver(), APPSolver()]
        for query in queries:
            fast = columnar_runner.build(query)
            reference = scorer_runner.build(query)
            grid = grid_runner.build(query)
            assert list(fast.weights.items()) == list(reference.weights.items()), (
                "columnar σ_v must be bit-identical to the object-loop reference"
            )
            assert set(fast.weights) == set(grid.weights)
            for node_id, weight in grid.weights.items():
                assert abs(fast.weights[node_id] - weight) <= 1e-9 * max(1.0, abs(weight))
            for solver in solvers:
                a = solver.solve(fast)
                b = solver.solve(reference)
                assert a.region.nodes == b.region.nodes, (label, solver.name, query)
                assert a.weight == b.weight and a.length == b.length, (
                    "solver results must be byte-identical across backends"
                )

        columnar_seconds = _time_builds(columnar_runner, queries)
        grid_seconds = _time_builds(grid_runner, queries)
        scorer_seconds = _time_builds(scorer_runner, queries)
        speedup = grid_seconds / columnar_seconds
        speedups.append(speedup)
        rows_out.append([
            f"{label} ({rows}x{cols}, {objects} obj)",
            grid_seconds,
            scorer_seconds,
            columnar_seconds,
            f"{speedup:.1f}x",
        ])
        records.append({
            "config": label,
            "rows": rows,
            "cols": cols,
            "objects": objects,
            "queries": len(queries),
            "repeats": REPEATS,
            "grid_seconds": grid_seconds,
            "scorer_seconds": scorer_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup_vs_grid": speedup,
        })

    print()
    print(format_table(
        ["configuration", "grid (s)", "scorer (s)", "columnar (s)", "speedup vs grid"],
        rows_out,
        title="instance build (index probe + σ_v): scalar vs columnar",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "bench_scoring",
            "smoke": SMOKE_SCALE,
            "full": FULL_SCALE,
            "configs": records,
            "largest_speedup_vs_grid": speedups[-1],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    largest = speedups[-1]
    if SMOKE_SCALE:
        # Smoke scale sanity-checks the direction only; the 3x bar is a
        # large-configuration claim (fixed per-query costs dominate tiny runs).
        assert largest > 1.0, (
            f"columnar instance build must beat the grid path even at smoke "
            f"scale, got {largest:.1f}x"
        )
    else:
        assert largest >= MIN_SPEEDUP_LARGEST, (
            f"columnar instance build must be >= {MIN_SPEEDUP_LARGEST:.0f}x faster "
            f"than the scalar grid path on the largest configuration, got {largest:.1f}x"
        )
