"""Figures 13 and 14: Greedy runtime and result quality as the balance parameter µ varies (NY).

The paper sweeps µ over [0, 1]: µ = 0 ranks frontier nodes purely by weight, µ = 1
purely by edge length, and the combined model in between is reported to beat both
endpoints. Runtime is essentially flat (the expansion does the same amount of work
regardless of µ) and two orders of magnitude below APP/TGEN.
"""

from __future__ import annotations

from repro.core import GreedySolver
from repro.evaluation.reporting import format_series
from repro.evaluation.sweeps import sweep_solver_parameter

MU_VALUES = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def test_fig13_14_greedy_vs_mu(benchmark, ny_runner, ny_default_workload):
    sweep = sweep_solver_parameter(
        ny_runner,
        "mu",
        ny_default_workload,
        lambda mu: GreedySolver(mu=mu),
        MU_VALUES,
    )
    print()
    print(format_series(sweep, "runtime", "Figure 13 (reproduced): Greedy runtime (s) vs mu, NY-like"))
    print()
    print(format_series(sweep, "weight", "Figure 14 (reproduced): Greedy region weight vs mu, NY-like"))

    weights = {point.x: point.weights["Greedy"] for point in sweep.points}
    best_mixed = max(weights[x] for x in (0.2, 0.4, 0.6, 0.8))
    # Paper shape: some mixed µ is at least as good as both pure strategies.
    assert best_mixed >= max(weights[0.0], weights[1.0]) - 1e-9

    runtimes = [point.runtimes["Greedy"] for point in sweep.points]
    assert max(runtimes) < 0.5  # Greedy stays in the milliseconds range

    instance = ny_runner.build(ny_default_workload[0])
    solver = GreedySolver(mu=0.2)
    benchmark.pedantic(lambda: solver.solve(instance), rounds=1, iterations=1)
