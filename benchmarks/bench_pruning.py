"""Bound-based pruning: branch-and-bound top-k and skip-aware heuristics.

Not a paper figure — this benchmarks the bound/skip subsystem
(:mod:`repro.core.bounds` plus the skip branches in the solvers). The claim:
on sparse-relevance instances (few positive-weight nodes, the regime region
queries live in), the Exact solver's branch-and-bound ``solve_topk`` is **at
least 2x faster** than exhaustive enumeration on the largest configuration,
while returning byte-identical results — same k regions, same order, bit-equal
scores.

Three checks:

1. **Top-k branch-and-bound throughput** — ``ExactSolver.solve_topk(k=5)``
   under ``with_pruning("on")`` vs ``with_pruning("off")`` on controlled
   grid instances whose positive weights cluster on a few nodes (anchor
   cones past the last relevant node are skipped wholesale; branches that
   forbid every relevant node die against the k-incumbent heap). The ≥2x
   bar is asserted on the largest configuration; identity is asserted on
   every configuration.
2. **Heuristic skip accounting** — Greedy and TGEN run a real indexed
   workload (NY-like dataset through the engine) pruned vs unpruned;
   identity is asserted and the skip/visit counters the pruned runs report
   (``edges_skipped``, ``greedy_candidates_compacted``, the Exact
   ``exact_*`` counters) are recorded. No speedup bar here — these skips
   are modest by design and the counters are the observable.
3. **Perf trajectory record** — set ``REPRO_BENCH_JSON=<path>`` (the
   ``make bench-json`` target does) to write the measured numbers, including
   the counters, as JSON.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_pruning.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro.core.exact import ExactSolver
from repro.core.greedy import GreedySolver
from repro.core.instance import build_instance
from repro.core.query import LCMSRQuery
from repro.core.tgen import TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.evaluation.reporting import format_table
from repro.network.builders import grid_network
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

SEED = 42
K = 5
MIN_SPEEDUP_LARGEST = 2.0
REPEATS = 1 if SMOKE_SCALE else 3

# (label, rows, cols, positive weights, delta): positive weight clusters on a
# few low-id nodes — the sparse-relevance regime where the suffix bound prunes
# whole anchor cones. The largest window (16 nodes, 3 relevant) is the config
# the ≥2x bar is asserted on.
if SMOKE_SCALE:
    EXACT_CONFIGS = [
        ("3x4", 3, 4, {0: 2.0, 1: 1.5, 4: 1.0}, 600.0),
    ]
else:
    EXACT_CONFIGS = [
        ("3x4", 3, 4, {0: 2.0, 1: 1.5, 4: 1.0}, 600.0),
        ("4x4-sparse2", 4, 4, {0: 2.0, 5: 1.25}, 800.0),
        ("4x4-sparse3", 4, 4, {0: 2.0, 1: 1.5, 4: 1.0}, 800.0),
    ]


def _assert_topk_identical(topk_a, topk_b, context):
    assert len(topk_a.results) == len(topk_b.results), context
    for result_a, result_b in zip(topk_a.results, topk_b.results):
        assert result_a.region.nodes == result_b.region.nodes, context
        assert result_a.region.edges == result_b.region.edges, context
        assert result_a.weight == result_b.weight, context
        assert result_a.length == result_b.length, context


def _time_topk(solver, instance, k: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        solver.solve_topk(instance, k=k)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_exact_topk_branch_and_bound_2x():
    rows_out: List[List[object]] = []
    records: List[Dict[str, object]] = []
    largest_speedup = 0.0
    solver = ExactSolver(max_nodes=16)
    for label, rows, cols, positives, delta in EXACT_CONFIGS:
        network = grid_network(rows, cols, spacing=100.0)
        query = LCMSRQuery.create(["kw"], delta=delta)
        instance = build_instance(network, query, node_weights=dict(positives))
        pruned_instance = instance.with_pruning("on")
        unpruned_instance = instance.with_pruning("off")

        # --- fidelity first (also warms both paths) ---
        pruned = solver.solve_topk(pruned_instance, k=K)
        unpruned = solver.solve_topk(unpruned_instance, k=K)
        _assert_topk_identical(pruned, unpruned, label)

        pruned_seconds = _time_topk(solver, pruned_instance, K)
        unpruned_seconds = _time_topk(solver, unpruned_instance, K)
        speedup = unpruned_seconds / pruned_seconds
        largest_speedup = speedup  # configs are ordered smallest → largest
        considered_pruned = pruned.stats.get("exact_subsets_considered", 0.0)
        considered_full = unpruned.stats.get("exact_subsets_considered", 0.0)
        rows_out.append([
            f"{label} ({rows * cols} nodes, Δ={delta:.0f})",
            unpruned_seconds,
            pruned_seconds,
            f"{speedup:.1f}x",
            f"{considered_pruned:.0f}/{considered_full:.0f}",
        ])
        records.append({
            "config": label,
            "nodes": rows * cols,
            "delta": delta,
            "k": K,
            "repeats": REPEATS,
            "unpruned_seconds": unpruned_seconds,
            "pruned_seconds": pruned_seconds,
            "speedup": speedup,
            "subsets_considered_pruned": considered_pruned,
            "subsets_considered_unpruned": considered_full,
            "branches_pruned": pruned.stats.get("exact_branches_pruned", 0.0),
            "anchors_skipped": pruned.stats.get("exact_anchors_skipped", 0.0),
        })

    print()
    print(format_table(
        ["configuration", "exhaustive (s)", "B&B (s)", "speedup", "considered"],
        rows_out,
        title=f"Exact solve_topk(k={K}): branch-and-bound vs exhaustive enumeration",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload = {
            "benchmark": "bench_pruning",
            "smoke": SMOKE_SCALE,
            "full": FULL_SCALE,
            "exact_topk": records,
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    if SMOKE_SCALE:
        # Smoke scale asserts identity (above) and records the numbers; the 2x
        # bar is a claim about the largest configuration.
        return
    assert largest_speedup >= MIN_SPEEDUP_LARGEST, (
        f"branch-and-bound solve_topk must be >= {MIN_SPEEDUP_LARGEST:.0f}x faster "
        f"than exhaustive enumeration on the largest configuration, got "
        f"{largest_speedup:.1f}x"
    )


def test_bench_heuristic_skip_counters():
    if SMOKE_SCALE:
        dataset = build_ny_like(rows=20, cols=20, block_size=120.0,
                                num_objects=1500, num_clusters=8, seed=SEED)
        delta, area = 900.0, 1.5
    else:
        dataset = build_ny_like(rows=32, cols=32, block_size=120.0,
                                num_objects=4000, num_clusters=18, seed=SEED)
        delta, area = 1400.0, 2.0
    bundle = IndexBundle.from_dataset(dataset)
    engine = LCMSREngine.from_bundle(bundle)
    queries = generate_workload(dataset, num_queries=2 if SMOKE_SCALE else 4,
                                num_keywords=3, delta=delta, area_km2=area, seed=9)
    queries = queries + [query.with_region(None) for query in queries[:1]]

    rows_out: List[List[object]] = []
    totals: Dict[str, float] = {}
    for solver in (GreedySolver(), TGENSolver()):
        pruned_seconds = 0.0
        unpruned_seconds = 0.0
        counters: Dict[str, float] = {}
        for query in queries:
            instance = engine.build_instance(query)
            start = time.perf_counter()
            pruned = solver.solve(instance.with_pruning("on"))
            pruned_seconds += time.perf_counter() - start
            start = time.perf_counter()
            unpruned = solver.solve(instance.with_pruning("off"))
            unpruned_seconds += time.perf_counter() - start
            assert pruned.region.nodes == unpruned.region.nodes, solver.name
            assert pruned.weight == unpruned.weight, solver.name
            assert pruned.length == unpruned.length, solver.name
            for key, value in pruned.stats.items():
                counters[key] = counters.get(key, 0.0) + value
        skip_keys = [key for key in sorted(counters)
                     if "skip" in key or "compact" in key or "scanned" in key]
        rows_out.append([
            solver.name,
            unpruned_seconds,
            pruned_seconds,
            "; ".join(f"{key}={counters[key]:.0f}" for key in skip_keys) or "-",
        ])
        for key in skip_keys:
            totals[f"{solver.name.lower()}_{key}"] = counters[key]

    print()
    print(format_table(
        ["solver", "unpruned (s)", "pruned (s)", "skip counters"],
        rows_out,
        title="heuristic solvers on an indexed NY-like workload: pruned vs unpruned",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        # Merge into the payload the exact-topk bench wrote (same file when both
        # run under one REPRO_BENCH_JSON, e.g. make bench-json).
        payload: Dict[str, object] = {}
        if os.path.exists(json_path):
            try:
                with open(json_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = {}
        payload.setdefault("benchmark", "bench_pruning")
        payload["heuristic_counters"] = totals
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")
