"""Artifact load vs full rebuild: engine-ready time and answer fidelity.

Not a paper figure — this benchmarks the persistence layer
(:mod:`repro.service.persist`). The claim: loading a prebuilt index artifact
(``IndexBundle.load`` / ``LCMSREngine.from_artifact``) makes an engine
query-ready **at least 10x faster** than the status-quo cold start, which pays
dataset assembly plus the full offline indexing pipeline (object → node mapping,
vector-space model, grid + inverted lists, CSR freeze) on every process start.

Three checks:

1. **Engine-ready time** — cold rebuild vs artifact load across three dataset
   scales; the ≥10x assertion applies to the largest configuration of the run
   (the gap *grows* with scale: rebuild is super-linear in dataset size while
   loading stays I/O-bound).
2. **Fidelity** — the loaded engine answers a query workload identically to the
   freshly built engine for every solver.
3. **Artifact cache round trip** — ``ExperimentRunner(..., artifact_cache_dir=...)``
   publishes one content-fingerprinted artifact per dataset and serves the second
   construction from disk (result-identically); the artifact is what later
   processes load without any dataset build.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_persist.py -q -s
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Tuple

from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentRunner
from repro.service.bundle import IndexBundle

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

# (label, rows, cols, objects, clusters): the status-quo cold start scales
# super-linearly in these, the artifact load linearly — the largest config is
# where the ≥10x claim is asserted.
if FULL_SCALE:
    CONFIGS = [
        ("small", 24, 24, 1800, 10),
        ("medium", 48, 48, 8000, 30),
        ("large", 80, 80, 24000, 70),
    ]
elif SMOKE_SCALE:
    CONFIGS = [("small", 20, 20, 1200, 8)]
else:
    CONFIGS = [
        ("small", 24, 24, 1800, 10),
        ("large", 64, 64, 16000, 55),
    ]

SEED = 42
MIN_SPEEDUP_LARGEST = 10.0


def _cold_start(rows: int, cols: int, objects: int, clusters: int) -> Tuple[LCMSREngine, float]:
    """The status-quo path: generate the dataset and index it from raw data."""
    start = time.perf_counter()
    dataset = build_ny_like(rows=rows, cols=cols, block_size=120.0,
                            num_objects=objects, num_clusters=clusters, seed=SEED)
    engine = LCMSREngine(dataset.network, dataset.corpus)
    return engine, time.perf_counter() - start


def _artifact_load(path: Path) -> Tuple[LCMSREngine, float]:
    start = time.perf_counter()
    engine = LCMSREngine.from_artifact(path)
    return engine, time.perf_counter() - start


def test_bench_engine_ready_time_10x(tmp_path):
    rows_out: List[List[object]] = []
    speedups: List[Tuple[str, float]] = []
    for label, rows, cols, objects, clusters in CONFIGS:
        built_engine, rebuild_seconds = _cold_start(rows, cols, objects, clusters)
        artifact_dir = tmp_path / f"ny-{label}"
        built_engine.bundle.save(artifact_dir)

        # Best of two loads: the first pays cold OS page-cache misses the
        # rebuild side never sees (its inputs are generated in memory).
        load_seconds = min(_artifact_load(artifact_dir)[1] for _ in range(2))
        loaded_engine = _artifact_load(artifact_dir)[0]

        # Fidelity: identical answers on windowed queries, every heuristic solver
        # (the full-solver round trip, including exact and top-k, is asserted in
        # tests/service/test_persist.py; windows keep this check cheap at scale).
        workload = generate_workload_from_engine(built_engine, delta=8.0 * 120.0)
        for algorithm in ("greedy", "tgen", "app"):
            for keywords, delta, region in workload:
                a = built_engine.query(keywords, delta, region=region, algorithm=algorithm)
                b = loaded_engine.query(keywords, delta, region=region, algorithm=algorithm)
                assert a.region.nodes == b.region.nodes, (label, algorithm, keywords)
                assert abs(a.weight - b.weight) < 1e-9
                assert abs(a.length - b.length) < 1e-9

        speedup = rebuild_seconds / load_seconds
        speedups.append((label, speedup))
        rows_out.append([
            f"{label} ({rows}x{cols}, {objects} obj)",
            rebuild_seconds,
            load_seconds,
            f"{speedup:.1f}x",
        ])

    print()
    print(format_table(
        ["configuration", "cold rebuild (s)", "artifact load (s)", "speedup"],
        rows_out,
        title="engine-ready time: full rebuild vs mmap artifact load",
    ))

    largest_label, largest_speedup = speedups[-1]
    if SMOKE_SCALE:
        # Smoke scale only sanity-checks the direction; the 10x bar is a
        # large-configuration claim (fixed costs dominate tiny datasets).
        assert largest_speedup > 1.0, (
            f"artifact load must beat rebuild even at smoke scale, "
            f"got {largest_speedup:.1f}x"
        )
    else:
        assert largest_speedup >= MIN_SPEEDUP_LARGEST, (
            f"artifact load must be >= {MIN_SPEEDUP_LARGEST:.0f}x faster than the "
            f"cold rebuild on the largest configuration ({largest_label}), "
            f"got {largest_speedup:.1f}x"
        )


def generate_workload_from_engine(
    engine: LCMSREngine, delta: float, count: int = 4
) -> List[Tuple[List[str], float, object]]:
    """A small deterministic windowed keyword workload from the engine's corpus."""
    from repro.network.subgraph import Rectangle

    frequent = [term for term, _ in engine.corpus.most_frequent_terms(8)]
    min_x, min_y, max_x, max_y = engine.graph_view.bounding_box()
    span_x, span_y = (max_x - min_x), (max_y - min_y)
    workload = []
    for index in range(count):
        keywords = [frequent[index % len(frequent)],
                    frequent[(index + 1) % len(frequent)]]
        fx = (index * 0.29) % 0.6
        fy = (index * 0.41) % 0.6
        window = Rectangle(
            min_x + fx * span_x,
            min_y + fy * span_y,
            min_x + (fx + 0.35) * span_x,
            min_y + (fy + 0.35) * span_y,
        )
        workload.append((keywords, delta, window))
    return workload


def test_bench_runner_artifact_cache(tmp_path):
    """Second ExperimentRunner construction over the same dataset hits the cache."""
    label, rows, cols, objects, clusters = CONFIGS[0]
    dataset = build_ny_like(rows=rows, cols=cols, block_size=120.0,
                            num_objects=objects, num_clusters=clusters, seed=SEED)
    cache = tmp_path / "runner-cache"

    start = time.perf_counter()
    first = ExperimentRunner(dataset, artifact_cache_dir=cache)
    miss_seconds = time.perf_counter() - start

    start = time.perf_counter()
    second = ExperimentRunner(dataset, artifact_cache_dir=cache)
    hit_seconds = time.perf_counter() - start

    queries = generate_workload(dataset, num_queries=2, num_keywords=2,
                                delta=1500.0, area_km2=2.0, seed=9)
    from repro.core.greedy import GreedySolver

    for query in queries:
        a = first.run_single(query, GreedySolver()).result
        b = second.run_single(query, GreedySolver()).result
        assert a.region.nodes == b.region.nodes
        assert abs(a.weight - b.weight) < 1e-9

    print()
    print(format_table(
        ["construction", "seconds"],
        [["first (build + save)", miss_seconds], ["second (artifact hit)", hit_seconds]],
        title=f"ExperimentRunner artifact cache, {label} config",
    ))
    assert second.bundle.network is None, "cache hit must come from disk"
