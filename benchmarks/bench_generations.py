"""Mutable-world serving: overlay query overhead and compaction latency.

Not a paper figure — this benchmarks the generations subsystem
(:mod:`repro.service.generations`). Two claims:

1. **Overlay-serving overhead is bounded** — merging a pending
   :class:`~repro.service.generations.DeltaOverlay` into the node weights at
   query time costs a small constant factor over frozen-world serving (the
   base stays columnar; only the overlay entries are scored scalar-path), not
   a rebuild-per-query.
2. **Compaction is an offline cost** — re-freezing base + delta through
   ``IndexBundle.build`` (plus artifact persistence and the ``CURRENT`` flip)
   takes index-build time, after which serving returns to frozen-world speed
   byte-identically to a cold rebuild of the mutated corpus.

Set ``REPRO_BENCH_JSON=<path>`` (the ``make bench-json`` target does) to
record the measured numbers as JSON.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_generations.py -q -s
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List

from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.engine import LCMSREngine
from repro.evaluation.reporting import format_table
from repro.service.bundle import IndexBundle
from repro.service.generations import (
    Compactor,
    DeltaOverlay,
    append_delta_ops,
    apply_ops,
    resolve_generation,
)

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

SEED = 42
MUTATIONS = 12 if SMOKE_SCALE else 60


def _dataset():
    if FULL_SCALE:
        return build_ny_like(rows=48, cols=48, block_size=120.0, num_objects=9000,
                             num_clusters=40, seed=SEED)
    if SMOKE_SCALE:
        return build_ny_like(rows=16, cols=16, block_size=120.0, num_objects=900,
                             num_clusters=8, seed=SEED)
    return build_ny_like(rows=32, cols=32, block_size=120.0, num_objects=4000,
                         num_clusters=18, seed=SEED)


def _mutation_script(dataset, rng, count):
    """``count`` mixed mutations: ratings, removals, brand-new objects."""
    vocab = [term for term, _ in dataset.corpus.most_frequent_terms(10)]
    min_x, min_y, max_x, max_y = dataset.network.bounding_box()
    touched = rng.sample(sorted(dataset.corpus.object_ids()), count)
    ops = []
    for index, object_id in enumerate(touched):
        kind = index % 3
        if kind == 0:
            ops.append({"op": "rate", "id": object_id,
                        "rating": round(rng.uniform(0.5, 5.0), 2)})
        elif kind == 1:
            ops.append({"op": "remove", "id": object_id})
        else:
            ops.append({"op": "add", "id": 95000 + index,
                        "x": rng.uniform(min_x, max_x),
                        "y": rng.uniform(min_y, max_y),
                        "keywords": rng.sample(vocab, 2),
                        "rating": round(rng.uniform(0.5, 5.0), 2)})
    return ops


def _run_workload(engine, queries) -> float:
    solver = engine.solver("tgen")
    start = time.perf_counter()
    for query in queries:
        solver.solve(engine.build_instance(query))
    return time.perf_counter() - start


def test_bench_overlay_overhead_and_compaction(tmp_path):
    dataset = _dataset()
    rng = random.Random(SEED)
    queries = generate_workload(dataset, num_queries=4 if SMOKE_SCALE else 8,
                                num_keywords=3, delta=900.0, area_km2=1.5,
                                seed=9)
    bundle = IndexBundle.from_dataset(dataset)
    engine = LCMSREngine.from_bundle(bundle)
    repeats = 2 if SMOKE_SCALE else 3

    base_seconds = min(_run_workload(engine, queries) for _ in range(repeats))

    ops = _mutation_script(dataset, rng, MUTATIONS)
    overlay = DeltaOverlay(bundle)
    apply_ops(overlay, ops)
    engine.attach_overlay(overlay)
    overlay_seconds = min(_run_workload(engine, queries) for _ in range(repeats))

    # In-memory compaction (what a live engine pays before the swap)...
    report_memory = Compactor(engine).compact()
    post_seconds = min(_run_workload(engine, queries) for _ in range(repeats))

    # ...and the full on-disk protocol: artifact + delta log -> gen-0001.
    root = tmp_path / "artifact"
    bundle.save(root)
    append_delta_ops(root, ops)
    disk_engine = LCMSREngine.from_artifact(root)
    report_disk = Compactor(disk_engine, root=root).compact()
    assert resolve_generation(root) == root / report_disk.generation

    # Post-compaction serving must be byte-identical to a cold rebuild of the
    # mutated corpus (the tier-1 parity suite proves this exhaustively; the
    # bench keeps one end-to-end assertion so the numbers can't drift from a
    # broken world).
    cold = LCMSREngine.from_bundle(IndexBundle.build(
        dataset.network, overlay.materialize_corpus(),
        grid_resolution=bundle.grid_resolution, scoring_mode=bundle.scoring_mode))
    for query in queries:
        hot = engine.solver("tgen").solve(engine.build_instance(query))
        ref = cold.solver("tgen").solve(cold.build_instance(query))
        assert hot.region.nodes == ref.region.nodes
        assert hot.weight == ref.weight and hot.length == ref.length

    overhead = overlay_seconds / base_seconds if base_seconds > 0 else 1.0
    rows: List[List[object]] = [
        ["frozen base", f"{base_seconds * 1000:.1f}", "-"],
        [f"overlay ({MUTATIONS} pending)", f"{overlay_seconds * 1000:.1f}",
         f"{overhead:.2f}x"],
        ["post-compaction", f"{post_seconds * 1000:.1f}",
         f"{post_seconds / base_seconds:.2f}x" if base_seconds > 0 else "-"],
    ]
    print()
    print(format_table(
        ["serving mode", "workload (ms)", "vs frozen"],
        rows,
        title=f"TGEN workload ({len(queries)} queries) across the mutation lifecycle",
    ))
    print(f"compaction: in-memory {report_memory.seconds:.2f}s, "
          f"on-disk (persist + reshard + CURRENT flip) {report_disk.seconds:.2f}s")

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload: Dict[str, object] = {
            "benchmark": "bench_generations",
            "smoke": SMOKE_SCALE,
            "full": FULL_SCALE,
            "mutations": MUTATIONS,
            "queries": len(queries),
            "workload_seconds": {
                "frozen_base": base_seconds,
                "overlay": overlay_seconds,
                "post_compaction": post_seconds,
            },
            "overlay_overhead_ratio": overhead,
            "compaction_seconds": {
                "in_memory": report_memory.seconds,
                "on_disk": report_disk.seconds,
            },
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    # The overlay path may be slower but must stay within a small constant
    # factor of frozen serving — it merges deltas, it does not rebuild.
    assert overhead < 25.0, (
        f"overlay serving cost {overhead:.1f}x the frozen path; expected a "
        f"bounded merge overhead"
    )
