"""Figures 21 and 22: top-k LCMSR query runtime on NY and USANW.

The paper varies k from 1 to 5 with the default query arguments on both datasets and
reports that all three algorithms slow down only mildly with k, Greedy stays the
fastest, and TGEN stays faster than APP. This bench reruns the sweep and prints the
runtime series per dataset.
"""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import mean
from repro.evaluation.reporting import format_table

from benchmarks.conftest import NY_PARAMS, USANW_PARAMS, default_solvers

K_VALUES = [1, 2, 3, 4, 5]


def run_topk_sweep(runner, workload, params):
    solvers = default_solvers(params)
    rows = []
    per_algorithm = {solver.name: [] for solver in solvers}
    for k in K_VALUES:
        runtimes = {}
        for solver in solvers:
            times = []
            for query in workload:
                instance = runner.build(query.with_k(k))
                result = solver.solve_topk(instance, k)
                times.append(result.runtime_seconds)
            runtimes[solver.name] = mean(times)
            per_algorithm[solver.name].append(mean(times))
        rows.append([k] + [runtimes[s.name] for s in solvers])
    return [s.name for s in solvers], rows, per_algorithm


def test_fig21_topk_ny(benchmark, ny_runner, ny_default_workload):
    names, rows, per_algorithm = run_topk_sweep(ny_runner, ny_default_workload, NY_PARAMS)
    print()
    print(
        format_table(
            ["k"] + names, rows, title="Figure 21 (reproduced): top-k runtime (s), NY-like"
        )
    )
    # Paper shape: Greedy is always the fastest.
    for row in rows:
        greedy_runtime = row[1 + names.index("Greedy")]
        assert greedy_runtime <= min(row[1:]) + 1e-9

    instance = ny_runner.build(ny_default_workload[0].with_k(3))
    tgen = default_solvers(NY_PARAMS)[0]
    benchmark.pedantic(lambda: tgen.solve_topk(instance, 3), rounds=1, iterations=1)


def test_fig22_topk_usanw(benchmark, usanw_runner, usanw_default_workload):
    names, rows, per_algorithm = run_topk_sweep(
        usanw_runner, usanw_default_workload, USANW_PARAMS
    )
    print()
    print(
        format_table(
            ["k"] + names, rows, title="Figure 22 (reproduced): top-k runtime (s), USANW-like"
        )
    )
    for row in rows:
        greedy_runtime = row[1 + names.index("Greedy")]
        assert greedy_runtime <= min(row[1:]) + 1e-9

    instance = usanw_runner.build(usanw_default_workload[0].with_k(3))
    tgen = default_solvers(USANW_PARAMS)[0]
    benchmark.pedantic(lambda: tgen.solve_topk(instance, 3), rounds=1, iterations=1)
