"""Ablation: capping TGEN's per-node tuple arrays (DESIGN.md §5.2).

The tuple arrays are what make TGEN's enumeration polynomial; their size is bounded by
Tmax = Nmax·⌊|VQ|/α⌋ but in dense windows they still dominate the runtime. This
ablation adds a hard per-node cap (keeping the heaviest tuples) and measures the
runtime/accuracy trade-off, which quantifies how much of the array the algorithm
actually needs.
"""

from __future__ import annotations

from repro.core import TGENSolver
from repro.evaluation.reporting import format_table

CAPS = [None, 64, 16, 4]


def test_ablation_tgen_tuple_cap(benchmark, ny_runner, ny_default_workload):
    rows = []
    weights = {}
    for cap in CAPS:
        solver = TGENSolver(max_tuples_per_node=cap)
        runs = ny_runner.run(ny_default_workload, [solver])
        run = runs["TGEN"]
        weights[cap] = run.mean_weight
        rows.append(
            ["unbounded (paper)" if cap is None else cap, run.mean_runtime, run.mean_weight]
        )

    print()
    print(
        format_table(
            ["tuple cap", "runtime (s)", "region weight"],
            rows,
            title="Ablation (reproduced): TGEN per-node tuple cap, NY-like",
        )
    )

    # A tight cap cannot beat the unbounded configuration.
    assert weights[4] <= weights[None] * 1.02 + 1e-9

    instance = ny_runner.build(ny_default_workload[0])
    solver = TGENSolver(max_tuples_per_node=16)
    benchmark.pedantic(lambda: solver.solve(instance), rounds=1, iterations=1)
