"""Ablation: the GW-based quota solver inside APP (DESIGN.md §5.1).

The paper uses Garg's GW-based 3-approximation as the k-MST black box. This ablation
measures what that machinery buys: it compares the candidate trees produced by the
full λ-ladder GW quota solver against a degenerate configuration with a single λ rung
(equivalent to one fixed Lagrangian guess), across a range of quotas, reporting tree
length (lower is better at equal quota) and the end-to-end APP result weight.
"""

from __future__ import annotations

from repro.core import APPSolver
from repro.core.kmst import QuotaTreeSolver
from repro.core.scaling import ScalingContext
from repro.evaluation.reporting import format_table

from benchmarks.conftest import NY_PARAMS


def test_ablation_quota_solver_ladder(benchmark, ny_runner, ny_default_workload):
    instance = ny_runner.build(ny_default_workload[0])
    scaling = ScalingContext.build(
        instance.weights, instance.num_candidate_nodes, NY_PARAMS["app_alpha"]
    )
    scaled = scaling.scale_weights(instance.weights)

    full = QuotaTreeSolver(instance.graph, instance.weights, scaled)
    single_rung = QuotaTreeSolver(
        instance.graph, instance.weights, scaled, lambda_factors=(1.0,)
    )

    total = full.total_scaled_weight()
    quotas = [max(1, int(total * fraction)) for fraction in (0.1, 0.25, 0.5, 0.75)]
    rows = []
    for quota in quotas:
        tree_full = full.solve(quota)
        tree_single = single_rung.solve(quota)
        rows.append(
            [
                quota,
                "-" if tree_full is None else round(tree_full.length, 1),
                "-" if tree_single is None else round(tree_single.length, 1),
            ]
        )
        if tree_full is not None and tree_single is not None:
            # The ladder can only help: at equal quota its tree is never longer by
            # more than a small slack (both use the same GW machinery underneath).
            assert tree_full.length <= tree_single.length * 1.05 + 1e-9

    print()
    print(
        format_table(
            ["quota", "ladder tree length", "single-rung tree length"],
            rows,
            title="Ablation (reproduced): GW quota solver with vs without the lambda ladder",
        )
    )

    # End-to-end effect on APP.
    app_full = APPSolver(alpha=NY_PARAMS["app_alpha"], beta=0.1)
    app_single = APPSolver(alpha=NY_PARAMS["app_alpha"], beta=0.1, lambda_factors=(1.0,))
    result_full = app_full.solve(instance)
    result_single = app_single.solve(instance)
    print(
        f"\nAPP result weight: ladder={result_full.weight:.3f}, "
        f"single rung={result_single.weight:.3f}"
    )
    assert result_full.weight >= result_single.weight * 0.8

    benchmark.pedantic(lambda: app_full.solve(instance), rounds=1, iterations=1)
