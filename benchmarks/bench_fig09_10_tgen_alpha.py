"""Figures 9 and 10: TGEN runtime and result quality as α varies (NY).

The paper sweeps TGEN's α over {50, 100, 200, 400, 800, 1600}: larger α coarsens the
scaled weights, shrinking the per-node tuple arrays, so runtime *and* accuracy drop.
α only matters through the bucket resolution ``⌊|VQ|/α⌋`` it induces, so the bench
expresses the axis through equivalent bucket counts (printed next to the paper's α)
to stay scale-comparable with the paper's |VQ| (DESIGN.md §5.4, EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core import TGENSolver
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentRunner

from benchmarks.conftest import SMOKE_SCALE

# Paper α values and the bucket resolutions they induce at the paper's window sizes
# (|VQ| around 20k): 1600 -> ~12 buckets ... 50 -> ~400 buckets. We keep the same
# resolution ladder, capped for pure-Python runtimes.
PAPER_ALPHAS = [50, 100, 200, 400, 800, 1600]
BUCKETS = [96, 64, 48, 32, 16, 8]


def test_fig09_10_tgen_vs_alpha(benchmark, ny_runner, ny_default_workload):
    rows = []
    runtimes = []
    weights = []
    for paper_alpha, buckets in zip(PAPER_ALPHAS, BUCKETS):
        solver = TGENSolver()
        solver.AUTO_BUCKETS = buckets
        runs = ny_runner.run(ny_default_workload, [solver])
        run = runs["TGEN"]
        runtimes.append(run.mean_runtime)
        weights.append(run.mean_weight)
        rows.append([paper_alpha, buckets, run.mean_runtime, run.mean_weight])

    print()
    print(
        format_table(
            ["paper alpha", "buckets here", "runtime (s)", "region weight"],
            rows,
            title="Figures 9/10 (reproduced): TGEN runtime and weight vs alpha, NY-like",
        )
    )

    # Paper shape: larger alpha (fewer buckets) -> faster and (weakly) less accurate.
    # Shape claims need statistical scale; the smoke gate only checks the sweep runs.
    if not SMOKE_SCALE:
        assert runtimes[-1] <= runtimes[0] * 1.2
        assert weights[-1] <= weights[0] * 1.02 + 1e-9

    instance = ny_runner.build(ny_default_workload[0])
    default_solver = TGENSolver()
    benchmark.pedantic(lambda: default_solver.solve(instance), rounds=1, iterations=1)
