"""Figures 11 and 12: APP runtime and result quality as the binary-search slack β varies (NY).

The paper sweeps β over {0.001, 0.01, 0.1, 0.3, 0.9}: a larger β lets the binary
search terminate earlier (more candidate trees qualify), so runtime drops, and the
approximation ratio (1-α)/(5+5β) loosens, so quality drops slightly.
"""

from __future__ import annotations

from repro.core import APPSolver
from repro.evaluation.reporting import format_series
from repro.evaluation.sweeps import sweep_solver_parameter

from benchmarks.conftest import NY_PARAMS, SMOKE_SCALE

BETA_VALUES = [0.001, 0.01, 0.1, 0.3, 0.9]


def test_fig11_12_app_vs_beta(benchmark, ny_runner, ny_default_workload):
    sweep = sweep_solver_parameter(
        ny_runner,
        "beta",
        ny_default_workload,
        lambda beta: APPSolver(alpha=NY_PARAMS["app_alpha"], beta=beta),
        BETA_VALUES,
    )
    print()
    print(format_series(sweep, "runtime", "Figure 11 (reproduced): APP runtime (s) vs beta, NY-like"))
    print()
    print(format_series(sweep, "weight", "Figure 12 (reproduced): APP region weight vs beta, NY-like"))

    weights = [point.weights["APP"] for point in sweep.points]
    # Paper shape: quality at the largest beta does not exceed quality at the smallest
    # (the ratio loosens), and the small-beta settings saturate (0.001 ~ 0.01).
    # Shape claims need statistical scale; the smoke gate only checks the sweep runs.
    if not SMOKE_SCALE:
        assert weights[-1] <= weights[0] * 1.05 + 1e-9
        assert abs(weights[0] - weights[1]) <= 0.25 * max(weights[0], 1e-9)

    instance = ny_runner.build(ny_default_workload[0])
    solver = APPSolver(alpha=NY_PARAMS["app_alpha"], beta=0.1)
    benchmark.pedantic(lambda: solver.solve(instance), rounds=1, iterations=1)
