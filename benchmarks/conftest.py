"""Shared fixtures and scale handling for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's Section 7. The
paper runs on city-scale road networks in C++; this reproduction runs on scaled-down
synthetic stand-ins in pure Python (DESIGN.md §3), so the absolute axis values are
mapped through a single scale factor:

* spatial scale ``SPATIAL_SCALE = 0.2`` — the paper's ``Q.∆ = 10 km`` becomes 2 km and
  its ``Q.Λ = 100 km²`` becomes 4 km² (0.2² × 100), keeping the ratio between the
  region budget and the query-window diameter identical to the paper's setting;
* TGEN's α axis is expressed through the *bucket resolution* ``⌊|VQ|/α⌋`` it induces,
  because that — not α itself — is what controls accuracy and cost (see
  ``ScalingContext.num_buckets``); the printed tables show both the paper's α and the
  scale-matched value used here.

Set the environment variable ``REPRO_BENCH_QUERIES`` (default 3) to run more queries
per setting, and ``REPRO_BENCH_FULL=1`` to use a larger dataset closer to the paper's
relative scale (slower). ``REPRO_BENCH_SMOKE=1`` does the opposite: one query per
setting on the smallest datasets, so the whole benchmark suite doubles as a quick
regression gate (``make bench-smoke`` runs it under a time cap).
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core import APPSolver, GreedySolver, TGENSolver
from repro.datasets.ny import build_ny_like
from repro.datasets.queries import generate_workload
from repro.datasets.synthetic import SyntheticDataset
from repro.datasets.usanw import build_usanw_like
from repro.evaluation.runner import ExperimentRunner

SPATIAL_SCALE = 0.2
"""Kilometre-scale factor between the paper's workloads and the bench workloads."""

SMOKE_SCALE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
QUERIES_PER_SETTING = (
    1 if SMOKE_SCALE else int(os.environ.get("REPRO_BENCH_QUERIES", "2"))
)
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1" and not SMOKE_SCALE


def paper_km_to_bench_meters(km: float) -> float:
    """Map a paper length axis value (km) to bench meters."""
    return km * 1000.0 * SPATIAL_SCALE


def paper_km2_to_bench_km2(km2: float) -> float:
    """Map a paper area axis value (km²) to bench km²."""
    return km2 * SPATIAL_SCALE * SPATIAL_SCALE


# Default query arguments, mirroring Section 7.2 (NY) and 7.3 (USANW) defaults.
NY_DEFAULTS = {
    "keywords": 3,
    "delta": paper_km_to_bench_meters(10.0),
    "area_km2": paper_km2_to_bench_km2(100.0),
}
USANW_DEFAULTS = {
    "keywords": 3,
    "delta": paper_km_to_bench_meters(15.0),
    "area_km2": paper_km2_to_bench_km2(150.0),
}

# Solver parameter defaults the paper settles on after tuning (Sections 7.2.1 / 7.3).
NY_PARAMS = {"app_alpha": 0.5, "app_beta": 0.1, "greedy_mu": 0.2, "tgen_buckets": 32}
USANW_PARAMS = {"app_alpha": 0.1, "app_beta": 0.1, "greedy_mu": 0.4, "tgen_buckets": 32}


def default_solvers(params: Dict[str, float]) -> list:
    """The three paper algorithms with the tuned parameters for a dataset."""
    tgen = TGENSolver()
    tgen.AUTO_BUCKETS = int(params["tgen_buckets"])
    return [
        TGENSolver(alpha=None),
        APPSolver(alpha=params["app_alpha"], beta=params["app_beta"]),
        GreedySolver(mu=params["greedy_mu"]),
    ]


@pytest.fixture(scope="session")
def ny_dataset() -> SyntheticDataset:
    """The NY-like benchmark dataset."""
    if FULL_SCALE:
        return build_ny_like(rows=70, cols=70, block_size=120.0, num_objects=18000,
                             num_clusters=60, seed=42)
    if SMOKE_SCALE:
        return build_ny_like(rows=26, cols=26, block_size=120.0, num_objects=2200,
                             num_clusters=14, seed=42)
    return build_ny_like(rows=42, cols=42, block_size=120.0, num_objects=6000,
                         num_clusters=28, seed=42)


@pytest.fixture(scope="session")
def usanw_dataset() -> SyntheticDataset:
    """The USANW-like benchmark dataset."""
    if FULL_SCALE:
        return build_usanw_like(num_nodes=6000, extent=28000.0, num_objects=6000,
                                num_clusters=45, seed=97)
    if SMOKE_SCALE:
        return build_usanw_like(num_nodes=900, extent=10000.0, num_objects=900,
                                num_clusters=12, seed=97)
    return build_usanw_like(num_nodes=2200, extent=16000.0, num_objects=2200,
                            num_clusters=22, seed=97)


@pytest.fixture(scope="session")
def ny_runner(ny_dataset) -> ExperimentRunner:
    return ExperimentRunner(ny_dataset)


@pytest.fixture(scope="session")
def usanw_runner(usanw_dataset) -> ExperimentRunner:
    return ExperimentRunner(usanw_dataset)


@pytest.fixture(scope="session")
def ny_default_workload(ny_dataset):
    """The default NY query set (3 keywords, scaled ∆ = 10 km, Λ = 100 km²)."""
    return generate_workload(
        ny_dataset,
        num_queries=QUERIES_PER_SETTING,
        num_keywords=NY_DEFAULTS["keywords"],
        delta=NY_DEFAULTS["delta"],
        area_km2=NY_DEFAULTS["area_km2"],
        seed=7,
    )


@pytest.fixture(scope="session")
def usanw_default_workload(usanw_dataset):
    """The default USANW query set (3 keywords, scaled ∆ = 15 km, Λ = 150 km²)."""
    return generate_workload(
        usanw_dataset,
        num_queries=QUERIES_PER_SETTING,
        num_keywords=USANW_DEFAULTS["keywords"],
        delta=USANW_DEFAULTS["delta"],
        area_km2=USANW_DEFAULTS["area_km2"],
        seed=11,
    )


def workloads_for_axis(
    dataset: SyntheticDataset,
    axis: str,
    values: Sequence[float],
    defaults: Dict[str, float],
    seed: int,
) -> List[Tuple[float, list]]:
    """Build one workload per x-axis value, varying a single query argument."""
    settings: List[Tuple[float, list]] = []
    for index, value in enumerate(values):
        keywords = int(defaults["keywords"])
        delta = defaults["delta"]
        area = defaults["area_km2"]
        if axis == "keywords":
            keywords = int(value)
        elif axis == "delta_km_paper":
            delta = paper_km_to_bench_meters(value)
        elif axis == "lambda_km2_paper":
            area = paper_km2_to_bench_km2(value)
        else:
            raise ValueError(f"unknown axis {axis!r}")
        workload = generate_workload(
            dataset,
            num_queries=QUERIES_PER_SETTING,
            num_keywords=keywords,
            delta=delta,
            area_km2=area,
            seed=seed + index,
        )
        settings.append((float(value), workload))
    return settings
