"""Table 1: the binary-search procedure of APP (Section 4.2.2, Example 4).

The paper's Table 1 is a didactic trace of Function binarySearch — the evolving lower
bound L, upper bound U, probed quota X, the candidate tree's length under X, and under
(1+β)X. This bench reruns the procedure on a real query over the NY-like dataset and
prints the trace in the same column layout, and times one full binary search.
"""

from __future__ import annotations

from repro.core import APPSolver, build_instance
from repro.evaluation.reporting import format_table

from benchmarks.conftest import NY_PARAMS


def test_table1_binary_search_trace(benchmark, ny_runner, ny_default_workload):
    query = ny_default_workload[0]
    instance = ny_runner.build(query)
    solver = APPSolver(alpha=NY_PARAMS["app_alpha"], beta=0.5)

    trace = benchmark.pedantic(
        lambda: solver.trace_binary_search(instance), rounds=1, iterations=1
    )

    rows = []
    for row in trace.rows():
        rows.append(
            [
                row["step"],
                round(row["L"], 1),
                round(row["U"], 1),
                round(row["X"], 1),
                "-" if row["TC.l"] is None else round(row["TC.l"], 1),
                "-" if row["(1+beta)X"] is None else round(row["(1+beta)X"], 1),
                "-" if row["TC'.l"] is None else round(row["TC'.l"], 1),
            ]
        )
    print()
    print(
        format_table(
            ["step", "L", "U", "X", "TC.l", "1.5X", "TC'.l"],
            rows,
            title="Table 1 (reproduced): binary search trace on an NY-like query "
            f"(keywords={query.keywords}, delta={query.delta:.0f} m)",
        )
    )
    assert len(trace) >= 1
    # The invariant behind Table 1: L never exceeds U, and X always lies between them.
    for row in trace.rows():
        assert row["L"] <= row["X"] <= row["U"]
