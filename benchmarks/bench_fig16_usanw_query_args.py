"""Figure 16: varying the query arguments on USANW — runtime and relative ratio.

The same three sweeps as Figure 15, on the sparser USANW-like dataset with the paper's
USANW defaults (3 keywords, ∆ = 15 km, Λ = 150 km², α = 0.1 for APP, µ = 0.4 for
Greedy). The paper reports the same trends as on NY, with Greedy's relative ratio
dropping to roughly 40 %.
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_series
from repro.evaluation.sweeps import sweep_query_arguments

from benchmarks.conftest import (
    SMOKE_SCALE,
    USANW_DEFAULTS,
    USANW_PARAMS,
    default_solvers,
    workloads_for_axis,
)

AXES = [
    ("keywords", [1, 2, 3, 4, 5], "Figure 16(a,b)"),
    ("delta_km_paper", [13, 14, 15, 16, 17], "Figure 16(c,d)"),
    ("lambda_km2_paper", [100, 125, 150, 175, 200], "Figure 16(e,f)"),
]


@pytest.mark.parametrize("axis,values,figure", AXES, ids=[a[0] for a in AXES])
def test_fig16_vary_query_arguments(benchmark, usanw_dataset, usanw_runner, axis, values, figure):
    settings = workloads_for_axis(usanw_dataset, axis, values, USANW_DEFAULTS, seed=200)
    solvers = default_solvers(USANW_PARAMS)
    sweep = sweep_query_arguments(usanw_runner, axis, settings, solvers, reference="TGEN")

    print()
    print(format_series(sweep, "runtime", f"{figure} (reproduced): runtime (s) vs {axis}, USANW-like"))
    print()
    print(format_series(sweep, "ratio", f"{figure} (reproduced): relative ratio vs {axis}, USANW-like"))

    for point in sweep.points:
        # Runtime ordering is noise at smoke scale (microsecond solves on a tiny
        # dataset); the smoke gate only checks the sweep runs end to end.
        if not SMOKE_SCALE:
            assert point.runtimes["Greedy"] <= min(
                point.runtimes["APP"], point.runtimes["TGEN"]
            )
            assert point.ratios["APP"] >= 0.75
        assert point.ratios["TGEN"] == pytest.approx(1.0)

    representative = settings[len(settings) // 2][1][0]
    instance = usanw_runner.build(representative)
    tgen = solvers[0]
    benchmark.pedantic(lambda: tgen.solve(instance), rounds=1, iterations=1)
