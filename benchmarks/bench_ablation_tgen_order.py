"""Ablation: TGEN's edge-processing order (Section 5, DESIGN.md §5.3).

The paper states that processing edges in BFS order is as accurate as processing them
in ascending length order while being faster (no sorting, and processed nodes' tuple
arrays can be discarded). This ablation reruns TGEN under both orders on the default
NY workload and reports runtime and region weight.
"""

from __future__ import annotations

from repro.core import TGENSolver
from repro.evaluation.reporting import format_table


def test_ablation_tgen_edge_order(benchmark, ny_runner, ny_default_workload):
    bfs = TGENSolver(edge_order="bfs")
    by_length = TGENSolver(edge_order="length")
    runs = ny_runner.run(ny_default_workload, [bfs])
    bfs_run = runs["TGEN"]
    runs = ny_runner.run(ny_default_workload, [by_length])
    length_run = runs["TGEN"]

    print()
    print(
        format_table(
            ["edge order", "runtime (s)", "region weight"],
            [
                ["bfs (paper)", bfs_run.mean_runtime, bfs_run.mean_weight],
                ["ascending length", length_run.mean_runtime, length_run.mean_weight],
            ],
            title="Ablation (reproduced): TGEN edge-processing order, NY-like",
        )
    )

    # Paper claim: accuracy only varies slightly between the orders.
    assert bfs_run.mean_weight >= 0.9 * length_run.mean_weight

    instance = ny_runner.build(ny_default_workload[0])
    benchmark.pedantic(lambda: bfs.solve(instance), rounds=1, iterations=1)
