"""Figure 15: varying the query arguments on NY — runtime and relative ratio.

Six sub-figures: (a, b) vary the number of query keywords 1–5, (c, d) vary the length
constraint ∆ over 8–12 km, (e, f) vary the query-region size Λ over 80–120 km², each
reporting the runtime of APP / TGEN / Greedy and the relative ratio of each algorithm
against TGEN (the paper's accuracy measure). The ∆ and Λ axes are mapped through the
bench spatial scale (see benchmarks/conftest.py); the printed tables show the paper's
axis values.
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_series
from repro.evaluation.sweeps import sweep_query_arguments

from benchmarks.conftest import (
    NY_DEFAULTS,
    NY_PARAMS,
    SMOKE_SCALE,
    default_solvers,
    workloads_for_axis,
)

AXES = [
    ("keywords", [1, 2, 3, 4, 5], "Figure 15(a,b)"),
    ("delta_km_paper", [8, 9, 10, 11, 12], "Figure 15(c,d)"),
    ("lambda_km2_paper", [80, 90, 100, 110, 120], "Figure 15(e,f)"),
]


@pytest.mark.parametrize("axis,values,figure", AXES, ids=[a[0] for a in AXES])
def test_fig15_vary_query_arguments(benchmark, ny_dataset, ny_runner, axis, values, figure):
    settings = workloads_for_axis(ny_dataset, axis, values, NY_DEFAULTS, seed=100)
    solvers = default_solvers(NY_PARAMS)
    sweep = sweep_query_arguments(ny_runner, axis, settings, solvers, reference="TGEN")

    print()
    print(format_series(sweep, "runtime", f"{figure} (reproduced): runtime (s) vs {axis}, NY-like"))
    print()
    print(format_series(sweep, "ratio", f"{figure} (reproduced): relative ratio vs {axis}, NY-like"))

    for point in sweep.points:
        # Paper shape: Greedy is the fastest algorithm at every x-axis point, and APP
        # keeps a high relative ratio (> 90 % in the paper; > 80 % at this scale).
        # Shape claims need statistical scale; the smoke gate only checks the sweep runs.
        if not SMOKE_SCALE:
            assert point.runtimes["Greedy"] <= min(
                point.runtimes["APP"], point.runtimes["TGEN"]
            )
            assert point.ratios["APP"] >= 0.8
        assert point.ratios["TGEN"] == pytest.approx(1.0)

    # Benchmark one representative query at the default setting for the timing report.
    representative = settings[len(settings) // 2][1][0]
    instance = ny_runner.build(representative)
    tgen = solvers[0]
    benchmark.pedantic(lambda: tgen.solve(instance), rounds=1, iterations=1)
