"""Serving-layer throughput: thread batching, cache reuse and process scaling.

Not a paper figure — this benchmarks the ``repro.service`` scale-out layer added on
top of the paper's single-query engine. Three claims are exercised:

1. **Throughput**: a warm-cache batch of repeated queries through
   :class:`~repro.service.QueryService` sustains at least 2× the queries/sec of the
   sequential cold-path loop (``engine.query`` per request, every instance rebuilt).
2. **Fidelity**: batching and caching change *no answers* — the batch output is
   result-identical to the sequential loop, request by request.
3. **Process scaling**: the multi-process
   :class:`~repro.service.sharding.ShardedQueryService` gateway over a shared mmap
   artifact reaches at least 2× the batch throughput with 4 worker processes vs 1
   (caches disabled, so every query pays its full solve cost), with every answer
   bit-identical across worker counts and to the in-process reference. Set
   ``REPRO_BENCH_JSON=<path>`` (the ``make bench-json`` target does) to record the
   measured rows.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Sequence

from repro import LCMSREngine, QueryRequest, QueryService
from repro.evaluation.reporting import format_service_stats, format_table

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

ALGORITHM = "tgen"
REPEAT_FACTOR = 8  # each distinct query appears this many times in a batch


def _distinct_requests(workload) -> List[QueryRequest]:
    """Turn a generated query workload into service requests."""
    return [
        QueryRequest.create(q.keywords, q.delta, region=q.region, algorithm=ALGORITHM)
        for q in workload
    ]


def _tile(requests: Sequence[QueryRequest], total: int) -> List[QueryRequest]:
    """Repeat a request list round-robin up to ``total`` entries (a hot workload)."""
    return [requests[i % len(requests)] for i in range(total)]


def _sequential_cold(engine: LCMSREngine, requests: Sequence[QueryRequest]):
    """The pre-service serving path: one query at a time, no reuse anywhere."""
    results = []
    start = time.perf_counter()
    for r in requests:
        results.append(
            engine.query(r.keywords, r.delta, region=r.region, algorithm=r.algorithm)
        )
    return results, time.perf_counter() - start


def test_bench_warm_batch_vs_sequential_cold(ny_dataset, ny_default_workload):
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    distinct = _distinct_requests(ny_default_workload)
    requests = _tile(distinct, len(distinct) * REPEAT_FACTOR)

    sequential_results, cold_seconds = _sequential_cold(engine, requests)
    cold_qps = len(requests) / cold_seconds

    with QueryService(engine, max_workers=4) as service:
        service.run_batch(requests)  # warm both caches
        service.reset_stats()
        start = time.perf_counter()
        batch_results = service.run_batch(requests)
        warm_seconds = time.perf_counter() - start
        warm_qps = len(requests) / warm_seconds
        stats = service.stats()

    print()
    print(format_table(
        ["path", "queries", "seconds", "queries/sec"],
        [
            ["sequential cold loop", len(requests), cold_seconds, cold_qps],
            ["warm-cache batch", len(requests), warm_seconds, warm_qps],
        ],
        title=f"warm batch vs cold loop (speedup {warm_qps / cold_qps:.1f}x)",
    ))
    print(format_service_stats(stats))

    # Fidelity: batching + caching must not change a single answer.
    assert len(batch_results) == len(sequential_results)
    for got, expected in zip(batch_results, sequential_results):
        assert got.region.nodes == expected.region.nodes
        assert abs(got.weight - expected.weight) < 1e-9
        assert abs(got.length - expected.length) < 1e-9

    # Throughput: the acceptance bar is 2x; a fully warm cache clears it by far.
    assert stats.result_hit_rate == 1.0
    assert warm_qps >= 2.0 * cold_qps, (
        f"warm batch {warm_qps:.1f} q/s vs cold loop {cold_qps:.1f} q/s"
    )


def test_bench_throughput_vs_batch_size(ny_dataset, ny_default_workload):
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    distinct = _distinct_requests(ny_default_workload)

    rows = []
    for batch_size in (4, 8, 16, 32, 64):
        requests = _tile(distinct, batch_size)
        with QueryService(engine, max_workers=4) as service:
            start = time.perf_counter()
            service.run_batch(requests)
            seconds = time.perf_counter() - start
            stats = service.stats()
        rows.append([
            batch_size,
            batch_size / seconds,
            stats.result_hit_rate,
            stats.instance_hits,
            seconds,
        ])

    print()
    print(format_table(
        ["batch size", "queries/sec", "result hit rate", "instance hits", "seconds"],
        rows,
        title="cold-start service throughput vs batch size "
              f"({len(distinct)} distinct queries, {ALGORITHM})",
    ))
    # Larger batches repeat the same distinct queries, so the hit rate must
    # rise monotonically with batch size and throughput with it.
    hit_rates = [row[2] for row in rows]
    assert hit_rates == sorted(hit_rates)
    assert rows[-1][1] > rows[0][1]


def test_bench_delta_sweep_instance_reuse(ny_dataset, ny_default_workload):
    """A ∆-sweep over one keyword set: the instance cache removes the build cost."""
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    base = ny_default_workload[0]
    deltas = [base.delta * f for f in (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)]
    requests = [
        QueryRequest.create(base.keywords, d, region=base.region, algorithm=ALGORITHM)
        for d in deltas
    ]

    with QueryService(engine, max_workers=1) as service:
        service.run_batch(requests)
        stats = service.stats()

    print()
    print(format_table(
        ["measure", "value"],
        [
            ["sweep points", len(requests)],
            ["instance builds", stats.instance_cache.misses],
            ["instance reuses", stats.instance_hits],
            ["total build (s)", stats.total_build_seconds],
            ["total solve (s)", stats.total_solve_seconds],
        ],
        title="delta sweep over one keyword set",
    ))
    assert stats.instance_cache.misses == 1
    assert stats.instance_hits == len(requests) - 1


# ---------------------------------------------------------------- process scaling
MIN_PROCESS_SPEEDUP = 2.0
PROCESS_COUNTS = (1, 2, 4)
try:
    AVAILABLE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    AVAILABLE_CPUS = os.cpu_count() or 1


def _result_signature(result) -> tuple:
    """A bit-exact identity key for one answer (region sets + exact scores)."""
    from repro.core.result import TopKResult

    if isinstance(result, TopKResult):
        return tuple(
            (r.region.nodes, r.region.edges, r.weight, r.length) for r in result
        )
    return (result.region.nodes, result.region.edges, result.weight, result.length)


def test_bench_process_scaling(ny_dataset, ny_default_workload, tmp_path):
    """4 worker processes must clear 2x the 1-process batch throughput."""
    from repro.service.bundle import IndexBundle
    from repro.service.sharding import ShardedQueryService

    artifact = tmp_path / "artifact"
    bundle = IndexBundle.from_dataset(ny_dataset)
    bundle.save(artifact)

    # Distinct solve-heavy requests: every (keywords, region) pair runs at a few
    # different budgets so nothing is answerable from a cache even in principle
    # (caches are disabled below — every query pays instance build + solve).
    distinct = _distinct_requests(ny_default_workload)
    factors = (0.5, 0.75, 1.0, 1.25)
    requests = [
        QueryRequest.create(
            r.keywords, r.delta * f, region=r.region, algorithm=ALGORITHM
        )
        for r in distinct
        for f in factors
    ]
    total = 16 if SMOKE_SCALE else 32
    requests = _tile(requests, total)

    reference_engine = LCMSREngine.from_artifact(artifact)
    with QueryService(
        reference_engine, max_workers=1, result_cache_size=0, instance_cache_size=0
    ) as reference:
        expected = [_result_signature(r) for r in reference.run_batch(requests)]

    rows = []
    records = []
    qps_by_procs = {}
    for procs in PROCESS_COUNTS:
        with ShardedQueryService(
            artifact,
            num_workers=procs,
            result_cache_size=0,
            instance_cache_size=0,
            preload_base=True,
        ) as service:
            service.run_batch(requests)  # spawn + warm every worker process
            service.reset_stats()
            start = time.perf_counter()
            results = service.run_batch(requests)
            seconds = time.perf_counter() - start
            stats = service.stats()
        got = [_result_signature(r) for r in results]
        assert got == expected, f"answers changed with {procs} worker process(es)"
        assert stats.queries == len(requests)
        qps = len(requests) / seconds
        qps_by_procs[procs] = qps
        speedup = qps / qps_by_procs[PROCESS_COUNTS[0]]
        rows.append([procs, len(requests), seconds, qps, f"{speedup:.2f}x"])
        records.append({
            "processes": procs,
            "queries": len(requests),
            "seconds": seconds,
            "queries_per_second": qps,
            "speedup_vs_1": speedup,
            "identical_to_reference": True,
        })

    print()
    print(format_table(
        ["processes", "queries", "seconds", "queries/sec", "speedup"],
        rows,
        title="sharded gateway batch throughput vs worker processes "
              f"({ALGORITHM}, caches off)",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload = {}
        if os.path.exists(json_path):
            try:
                with open(json_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = {}
        payload.setdefault("benchmark", "bench_service_throughput")
        payload["smoke"] = SMOKE_SCALE
        payload["full"] = FULL_SCALE
        payload["available_cpus"] = AVAILABLE_CPUS
        payload["scaling_bar_asserted"] = not SMOKE_SCALE and AVAILABLE_CPUS >= 4
        payload["process_scaling"] = records
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    if SMOKE_SCALE:
        # Smoke scale asserts identity (above) and records the numbers; the 2x
        # bar is a claim about the full-size workload.
        return
    if AVAILABLE_CPUS < 4:
        # The scaling bar is a claim about hardware parallelism: on fewer than
        # 4 schedulable cores, 4 processes time-slice one core and can only
        # tie (plus IPC overhead). Identity was still asserted above and the
        # measured rows (with the core count) are recorded in the JSON.
        print(f"scaling bar skipped: only {AVAILABLE_CPUS} schedulable core(s)")
        return
    assert qps_by_procs[4] >= MIN_PROCESS_SPEEDUP * qps_by_procs[1], (
        f"4 processes reached {qps_by_procs[4]:.1f} q/s vs "
        f"{qps_by_procs[1]:.1f} q/s with 1 — below the "
        f"{MIN_PROCESS_SPEEDUP:.0f}x scaling bar"
    )
