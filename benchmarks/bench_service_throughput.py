"""Serving-layer throughput: queries/sec vs. batch size and cache hit rate.

Not a paper figure — this benchmarks the ``repro.service`` scale-out layer added on
top of the paper's single-query engine. Two claims are exercised:

1. **Throughput**: a warm-cache batch of repeated queries through
   :class:`~repro.service.QueryService` sustains at least 2× the queries/sec of the
   sequential cold-path loop (``engine.query`` per request, every instance rebuilt).
2. **Fidelity**: batching and caching change *no answers* — the batch output is
   result-identical to the sequential loop, request by request.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -q -s
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro import LCMSREngine, QueryRequest, QueryService
from repro.evaluation.reporting import format_service_stats, format_table

ALGORITHM = "tgen"
REPEAT_FACTOR = 8  # each distinct query appears this many times in a batch


def _distinct_requests(workload) -> List[QueryRequest]:
    """Turn a generated query workload into service requests."""
    return [
        QueryRequest.create(q.keywords, q.delta, region=q.region, algorithm=ALGORITHM)
        for q in workload
    ]


def _tile(requests: Sequence[QueryRequest], total: int) -> List[QueryRequest]:
    """Repeat a request list round-robin up to ``total`` entries (a hot workload)."""
    return [requests[i % len(requests)] for i in range(total)]


def _sequential_cold(engine: LCMSREngine, requests: Sequence[QueryRequest]):
    """The pre-service serving path: one query at a time, no reuse anywhere."""
    results = []
    start = time.perf_counter()
    for r in requests:
        results.append(
            engine.query(r.keywords, r.delta, region=r.region, algorithm=r.algorithm)
        )
    return results, time.perf_counter() - start


def test_bench_warm_batch_vs_sequential_cold(ny_dataset, ny_default_workload):
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    distinct = _distinct_requests(ny_default_workload)
    requests = _tile(distinct, len(distinct) * REPEAT_FACTOR)

    sequential_results, cold_seconds = _sequential_cold(engine, requests)
    cold_qps = len(requests) / cold_seconds

    with QueryService(engine, max_workers=4) as service:
        service.run_batch(requests)  # warm both caches
        service.reset_stats()
        start = time.perf_counter()
        batch_results = service.run_batch(requests)
        warm_seconds = time.perf_counter() - start
        warm_qps = len(requests) / warm_seconds
        stats = service.stats()

    print()
    print(format_table(
        ["path", "queries", "seconds", "queries/sec"],
        [
            ["sequential cold loop", len(requests), cold_seconds, cold_qps],
            ["warm-cache batch", len(requests), warm_seconds, warm_qps],
        ],
        title=f"warm batch vs cold loop (speedup {warm_qps / cold_qps:.1f}x)",
    ))
    print(format_service_stats(stats))

    # Fidelity: batching + caching must not change a single answer.
    assert len(batch_results) == len(sequential_results)
    for got, expected in zip(batch_results, sequential_results):
        assert got.region.nodes == expected.region.nodes
        assert abs(got.weight - expected.weight) < 1e-9
        assert abs(got.length - expected.length) < 1e-9

    # Throughput: the acceptance bar is 2x; a fully warm cache clears it by far.
    assert stats.result_hit_rate == 1.0
    assert warm_qps >= 2.0 * cold_qps, (
        f"warm batch {warm_qps:.1f} q/s vs cold loop {cold_qps:.1f} q/s"
    )


def test_bench_throughput_vs_batch_size(ny_dataset, ny_default_workload):
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    distinct = _distinct_requests(ny_default_workload)

    rows = []
    for batch_size in (4, 8, 16, 32, 64):
        requests = _tile(distinct, batch_size)
        with QueryService(engine, max_workers=4) as service:
            start = time.perf_counter()
            service.run_batch(requests)
            seconds = time.perf_counter() - start
            stats = service.stats()
        rows.append([
            batch_size,
            batch_size / seconds,
            stats.result_hit_rate,
            stats.instance_hits,
            seconds,
        ])

    print()
    print(format_table(
        ["batch size", "queries/sec", "result hit rate", "instance hits", "seconds"],
        rows,
        title="cold-start service throughput vs batch size "
              f"({len(distinct)} distinct queries, {ALGORITHM})",
    ))
    # Larger batches repeat the same distinct queries, so the hit rate must
    # rise monotonically with batch size and throughput with it.
    hit_rates = [row[2] for row in rows]
    assert hit_rates == sorted(hit_rates)
    assert rows[-1][1] > rows[0][1]


def test_bench_delta_sweep_instance_reuse(ny_dataset, ny_default_workload):
    """A ∆-sweep over one keyword set: the instance cache removes the build cost."""
    engine = LCMSREngine(ny_dataset.network, ny_dataset.corpus)
    base = ny_default_workload[0]
    deltas = [base.delta * f for f in (0.25, 0.5, 0.75, 1.0, 1.25, 1.5)]
    requests = [
        QueryRequest.create(base.keywords, d, region=base.region, algorithm=ALGORITHM)
        for d in deltas
    ]

    with QueryService(engine, max_workers=1) as service:
        service.run_batch(requests)
        stats = service.stats()

    print()
    print(format_table(
        ["measure", "value"],
        [
            ["sweep points", len(requests)],
            ["instance builds", stats.instance_cache.misses],
            ["instance reuses", stats.instance_hits],
            ["total build (s)", stats.total_build_seconds],
            ["total solve (s)", stats.total_solve_seconds],
        ],
        title="delta sweep over one keyword set",
    ))
    assert stats.instance_cache.misses == 1
    assert stats.instance_hits == len(requests) - 1
