"""Continental-scale artifacts: streaming-build memory, compression, cold load.

Not a paper figure — this benchmarks the format-v5 artifact pipeline
(:mod:`repro.service.persist` + :mod:`repro.service.chunked`) on the growth
trajectory toward the paper's real datasets (NY: 0.5 M objects, USANW: 1.2 M
nodes). Three claims:

1. **Streaming builds are bounded-memory** — ``IndexBundle.build_streaming``
   consumes the object generator without materialising eager scoring tables,
   so its peak RSS stays below the full-materialisation baseline
   (``build_ny_like`` + ``IndexBundle.from_dataset``) at every scale.
2. **Chunk compression pays for itself** — the compressed artifact is a
   multiple smaller on disk (≥ 3x at the largest config) while every query
   result stays byte-identical to the raw-memmap artifact.
3. **Cold starts stay cheap** — engine-ready time from a compressed artifact
   is within 1.5x of the raw-memmap load, because the hot offset/bound
   columns are stored raw and payload chunks decode lazily.

Each measured phase runs in its own subprocess so ``ru_maxrss`` isolates that
phase's true peak (the parent's allocations never pollute the numbers).

Scales: smoke 5 K objects, default 60 K, ``REPRO_BENCH_FULL=1`` 1 M objects on
a 250x250 street grid (minutes on one core; this is the committed
``BENCH_artifact.json`` row).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_artifact_scale.py -q -s
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.evaluation.reporting import format_table

from benchmarks.conftest import FULL_SCALE, SMOKE_SCALE

SEED = 42
CODEC, CODEC_LEVEL = "lzma", 6

if FULL_SCALE:
    CONFIG = {"rows": 250, "cols": 250, "objects": 1_000_000, "clusters": 200}
elif SMOKE_SCALE:
    CONFIG = {"rows": 20, "cols": 20, "objects": 5_000, "clusters": 10}
else:
    CONFIG = {"rows": 64, "cols": 64, "objects": 60_000, "clusters": 40}

ARTIFACT_FILES = ("network.npz", "scoring.npz", "index.pkl", "vocabulary.json")


# --------------------------------------------------------- subprocess children
def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def child_eager_build() -> None:
    """Full-materialisation baseline: eager dataset, eager tables, no save."""
    from repro.datasets.ny import build_ny_like
    from repro.service.bundle import IndexBundle

    start = time.perf_counter()
    dataset = build_ny_like(seed=SEED, num_objects=CONFIG["objects"],
                            rows=CONFIG["rows"], cols=CONFIG["cols"],
                            num_clusters=CONFIG["clusters"])
    bundle = IndexBundle.from_dataset(dataset)
    seconds = time.perf_counter() - start
    print(json.dumps({
        "seconds": seconds, "peak_rss_mb": _peak_rss_mb(),
        "objects": len(bundle.corpus),
    }))


def child_stream_build(out_raw: str, out_compressed: str) -> None:
    """Streaming build; persists the same bundle raw and chunk-compressed."""
    from repro.datasets.ny import ny_like_parts
    from repro.service.bundle import IndexBundle

    start = time.perf_counter()
    network, objects = ny_like_parts(seed=SEED, num_objects=CONFIG["objects"],
                                     rows=CONFIG["rows"], cols=CONFIG["cols"],
                                     num_clusters=CONFIG["clusters"])
    bundle = IndexBundle.build_streaming(network, objects)
    build_seconds = time.perf_counter() - start
    # ru_maxrss is monotonic: sampling here isolates the *build* peak from the
    # save phase (the lzma encoder allocates ~100 MB of fixed buffers, which
    # would otherwise mask the bounded-memory claim at small scales).
    build_peak_rss_mb = _peak_rss_mb()
    start = time.perf_counter()
    bundle.save(out_raw)
    save_raw_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bundle.save(out_compressed, compress=CODEC, compress_level=CODEC_LEVEL)
    save_compressed_seconds = time.perf_counter() - start
    print(json.dumps({
        "build_seconds": build_seconds,
        "save_raw_seconds": save_raw_seconds,
        "save_compressed_seconds": save_compressed_seconds,
        "peak_rss_mb": build_peak_rss_mb,
        "total_peak_rss_mb": _peak_rss_mb(),
    }))


def child_cold_query(artifact: str) -> None:
    """Cold start: artifact directory -> engine ready -> one answered query."""
    from repro.engine import LCMSREngine

    start = time.perf_counter()
    engine = LCMSREngine.from_artifact(artifact)
    ready_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = engine.query(["cafe", "restaurant"], delta=700.0, algorithm="tgen")
    query_seconds = time.perf_counter() - start
    print(json.dumps({
        "ready_seconds": ready_seconds,
        "query_seconds": query_seconds,
        "signature": {
            "nodes": sorted(result.region.nodes),
            "weight": result.weight,
            "length": result.length,
        },
    }))


_CHILDREN = {
    "eager": child_eager_build,
    "stream": child_stream_build,
    "cold": child_cold_query,
}


def _run_child(role: str, *args: str) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(["src", "."])
    script = (
        "from benchmarks.bench_artifact_scale import _CHILDREN; "
        f"import sys; _CHILDREN[{role!r}](*sys.argv[1:])"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"benchmark child {role!r} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _artifact_bytes(path: Path) -> Dict[str, int]:
    sizes = {name: (path / name).stat().st_size for name in ARTIFACT_FILES}
    sizes["total"] = sum(sizes.values())
    return sizes


# ------------------------------------------------------------------ benchmark
def test_bench_artifact_scale(tmp_path):
    raw_dir = tmp_path / "raw"
    compressed_dir = tmp_path / "compressed"

    stream = _run_child("stream", str(raw_dir), str(compressed_dir))
    eager = _run_child("eager")
    cold_raw = _run_child("cold", str(raw_dir))
    cold_compressed = _run_child("cold", str(compressed_dir))

    # Byte-identical answers across raw and compressed artifacts.
    assert cold_raw["signature"] == cold_compressed["signature"]

    raw_bytes = _artifact_bytes(raw_dir)
    compressed_bytes = _artifact_bytes(compressed_dir)
    ratio = raw_bytes["total"] / compressed_bytes["total"]
    ready_ratio = (
        cold_compressed["ready_seconds"] / cold_raw["ready_seconds"]
        if cold_raw["ready_seconds"] > 0 else 1.0
    )

    rows: List[List[object]] = [
        ["eager build (baseline)", f"{eager['seconds']:.1f}",
         f"{eager['peak_rss_mb']:.0f}", "-"],
        ["streaming build", f"{stream['build_seconds']:.1f}",
         f"{stream['peak_rss_mb']:.0f}",
         f"{stream['peak_rss_mb'] / eager['peak_rss_mb']:.2f}x"],
    ]
    print()
    print(format_table(
        ["phase", "seconds", "peak RSS (MB)", "vs eager"],
        rows,
        title=f"build at {CONFIG['objects']:,} objects "
              f"({CONFIG['rows']}x{CONFIG['cols']} grid)",
    ))
    print(format_table(
        ["artifact", "bytes", "cold ready (s)", "cold query (s)"],
        [
            ["raw memmap", f"{raw_bytes['total']:,}",
             f"{cold_raw['ready_seconds']:.2f}",
             f"{cold_raw['query_seconds']:.2f}"],
            [f"{CODEC}-{CODEC_LEVEL} chunks", f"{compressed_bytes['total']:,}",
             f"{cold_compressed['ready_seconds']:.2f}",
             f"{cold_compressed['query_seconds']:.2f}"],
        ],
        title=f"on-disk size {ratio:.2f}x smaller, "
              f"cold engine-ready {ready_ratio:.2f}x the raw load",
    ))

    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        payload: Dict[str, object] = {
            "benchmark": "bench_artifact_scale",
            "smoke": SMOKE_SCALE,
            "full": FULL_SCALE,
            "config": dict(CONFIG),
            "codec": {"name": CODEC, "level": CODEC_LEVEL},
            "build": {
                "eager_seconds": eager["seconds"],
                "eager_peak_rss_mb": eager["peak_rss_mb"],
                "stream_seconds": stream["build_seconds"],
                "stream_peak_rss_mb": stream["peak_rss_mb"],
                "stream_total_peak_rss_mb": stream["total_peak_rss_mb"],
                "save_raw_seconds": stream["save_raw_seconds"],
                "save_compressed_seconds": stream["save_compressed_seconds"],
            },
            "artifact_bytes": {
                "raw": raw_bytes,
                "compressed": compressed_bytes,
                "ratio": ratio,
            },
            "cold_start_seconds": {
                "raw_ready": cold_raw["ready_seconds"],
                "compressed_ready": cold_compressed["ready_seconds"],
                "ready_ratio": ready_ratio,
                "raw_query": cold_raw["query_seconds"],
                "compressed_query": cold_compressed["query_seconds"],
            },
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {json_path}")

    # Claim 3: the compressed cold start stays close to the raw-memmap load
    # (small epsilon so millisecond-scale smoke loads don't flake on noise).
    assert cold_compressed["ready_seconds"] <= \
        1.5 * cold_raw["ready_seconds"] + 0.25, (
            f"compressed cold start {cold_compressed['ready_seconds']:.2f}s vs "
            f"raw {cold_raw['ready_seconds']:.2f}s"
        )
    if not SMOKE_SCALE:
        # Claim 1: bounded-memory streaming build.
        assert stream["peak_rss_mb"] < eager["peak_rss_mb"], (
            f"streaming build peaked at {stream['peak_rss_mb']:.0f} MB, above "
            f"the full-materialisation baseline {eager['peak_rss_mb']:.0f} MB"
        )
        # Claim 2: the compression floor (the acceptance bar is the FULL
        # config; the default config must not regress below it either).
        assert ratio >= 3.0, f"compression ratio {ratio:.2f}x fell below 3x"
