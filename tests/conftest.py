"""Shared fixtures for the test suite.

Expensive artefacts (the small NY-like / USANW-like datasets) are session-scoped so
the integration tests and the accuracy tests share one build. The "paper example"
fixtures reproduce the exact graph, weights and parameters of the paper's Figure 2 /
Example 2, which several core tests assert against.
"""

from __future__ import annotations

import random

import pytest

from repro.core import LCMSRQuery, build_instance
from repro.datasets.ny import build_ny_like
from repro.datasets.synthetic import SyntheticDataset, assemble_dataset, generate_objects_on_network
from repro.datasets.usanw import build_usanw_like
from repro.datasets.vocab import PLACES_VOCABULARY
from repro.network.builders import grid_network, manhattan_network, paper_example_network
from repro.network.graph import RoadNetwork
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject


# Figure 2 of the paper: node weights w.r.t. the query (v1..v6) and the length
# constraint used in the running example. The optimal region is {v2, v4, v5, v6}
# with weight 1.1 and length 5.9.
PAPER_EXAMPLE_WEIGHTS = {1: 0.2, 2: 0.3, 3: 0.4, 4: 0.2, 5: 0.2, 6: 0.4}
PAPER_EXAMPLE_DELTA = 6.0
PAPER_EXAMPLE_OPTIMUM_NODES = frozenset({2, 4, 5, 6})
PAPER_EXAMPLE_OPTIMUM_WEIGHT = 1.1
PAPER_EXAMPLE_OPTIMUM_LENGTH = 5.9


@pytest.fixture
def paper_graph() -> RoadNetwork:
    """The 6-node example graph of the paper's Figure 2."""
    return paper_example_network()


@pytest.fixture
def paper_instance(paper_graph):
    """The Figure 2 graph wired into a solver-ready instance (Δ = 6, whole graph)."""
    query = LCMSRQuery.create(["t"], delta=PAPER_EXAMPLE_DELTA)
    return build_instance(paper_graph, query, node_weights=PAPER_EXAMPLE_WEIGHTS)


@pytest.fixture
def small_grid() -> RoadNetwork:
    """A deterministic 4x4 grid network with 100 m blocks (16 nodes, 24 edges)."""
    return grid_network(4, 4, spacing=100.0)


@pytest.fixture
def medium_grid() -> RoadNetwork:
    """A deterministic 8x8 grid network used by mid-size solver tests."""
    return grid_network(8, 8, spacing=100.0)


def make_small_corpus() -> ObjectCorpus:
    """A hand-written 8-object corpus used across index and text tests."""
    corpus = ObjectCorpus()
    descriptions = [
        (0, 50, 50, ["cafe", "coffee", "bakery"]),
        (1, 150, 50, ["cafe", "espresso"]),
        (2, 250, 60, ["restaurant", "pizza", "italian"]),
        (3, 60, 150, ["restaurant", "sushi"]),
        (4, 160, 160, ["bar", "pub", "beer"]),
        (5, 260, 150, ["pharmacy"]),
        (6, 70, 260, ["bookstore", "coffee"]),
        (7, 260, 260, ["museum", "gallery", "art"]),
    ]
    for object_id, x, y, terms in descriptions:
        corpus.add(GeoTextualObject.create(object_id, x, y, terms))
    return corpus


@pytest.fixture
def small_corpus() -> ObjectCorpus:
    """See :func:`make_small_corpus`."""
    return make_small_corpus()


@pytest.fixture(scope="session")
def tiny_ny_dataset() -> SyntheticDataset:
    """A small NY-like dataset (fast to build, shared across the session)."""
    return build_ny_like(rows=20, cols=20, block_size=120.0, num_objects=900,
                         num_clusters=8, seed=3)


@pytest.fixture(scope="session")
def tiny_usanw_dataset() -> SyntheticDataset:
    """A small USANW-like dataset (fast to build, shared across the session)."""
    return build_usanw_like(num_nodes=400, extent=6000.0, num_objects=400,
                            num_clusters=6, seed=5)


def random_weighted_network(seed: int, num_nodes: int = 12):
    """A small random connected network plus random node weights (for oracle tests)."""
    rng = random.Random(seed)
    rows = 3
    cols = max(2, num_nodes // rows)
    network = grid_network(rows, cols, spacing=1.0, jitter=0.2, rng=rng)
    weights = {}
    for node in network.nodes():
        if rng.random() < 0.6:
            weights[node.node_id] = round(rng.uniform(0.05, 1.0), 3)
    if not weights:
        weights[next(network.node_ids())] = 0.5
    return network, weights
