"""Tests for the high-level LCMSREngine facade."""

from __future__ import annotations

import pytest

from repro import LCMSREngine, Rectangle
from repro.core.greedy import GreedySolver
from repro.exceptions import QueryError
from repro.textindex.relevance import ScoringMode


@pytest.fixture(scope="module")
def engine(tiny_ny_dataset):
    return LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus)


class TestConfiguration:
    def test_unknown_default_algorithm_rejected(self, tiny_ny_dataset):
        with pytest.raises(QueryError):
            LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus, default_algorithm="nope")

    @pytest.mark.parametrize("resolution", [0, -1, 2.5, "48"])
    def test_invalid_grid_resolution_rejected_at_init(self, tiny_ny_dataset, resolution):
        with pytest.raises(QueryError):
            LCMSREngine(tiny_ny_dataset.network, tiny_ny_dataset.corpus,
                        grid_resolution=resolution)

    def test_config_errors_raised_before_index_build(self, tiny_ny_dataset):
        # Fail-fast ordering proof: an empty corpus makes the index build raise
        # IndexError_, so getting QueryError shows validation ran before any
        # build work started.
        from repro.objects.corpus import ObjectCorpus

        with pytest.raises(QueryError):
            LCMSREngine(tiny_ny_dataset.network, ObjectCorpus(),
                        grid_resolution=0, default_algorithm="tgen")
        with pytest.raises(QueryError):
            LCMSREngine(tiny_ny_dataset.network, ObjectCorpus(),
                        default_algorithm="nope")

    def test_default_algorithm_property(self, engine):
        assert engine.default_algorithm == "tgen"

    def test_unknown_algorithm_at_query_time(self, engine):
        with pytest.raises(QueryError):
            engine.solver("does-not-exist")

    def test_configure_solver_overrides(self, engine):
        engine.configure_solver("greedy", GreedySolver(mu=0.7))
        assert engine.solver("greedy").mu == 0.7

    def test_configure_solver_is_copy_on_write(self, engine):
        # Readers snapshot the registry dict without the lock; writers must
        # therefore replace the dict instead of mutating it in place.
        before = engine._solvers
        engine.configure_solver("greedy", GreedySolver(mu=0.9))
        assert engine._solvers is not before
        assert before["greedy"].mu != 0.9  # the old snapshot is untouched

    def test_reader_snapshots_survive_new_key_configuration(self, engine):
        # The hazard the copy-on-write fix closes: a reader snapshots the
        # registry, then a writer registers a NEW name (the mutation that
        # would grow/rehash an in-place dict under the reader). The snapshot
        # must stay intact and iterable; the live registry must resolve the
        # new name.
        snapshot = engine._solvers
        names_before = sorted(snapshot)
        engine.configure_solver("custom", GreedySolver(mu=0.3))
        assert sorted(snapshot) == names_before  # reader's view is unchanged
        assert engine.solver("custom").mu == 0.3

    def test_accessors(self, engine, tiny_ny_dataset):
        assert engine.network is tiny_ny_dataset.network
        assert engine.corpus is tiny_ny_dataset.corpus
        assert engine.mapping.num_mapped == len(tiny_ny_dataset.corpus)
        assert engine.grid.num_nonempty_cells > 0


class TestQuerying:
    def test_query_returns_feasible_region(self, engine):
        result = engine.query(["restaurant", "cafe"], delta=1200.0, algorithm="tgen")
        assert result.region.satisfies(1200.0)
        assert result.weight > 0
        result.region.validate(engine.network)

    def test_query_with_window(self, engine, tiny_ny_dataset):
        extent = tiny_ny_dataset.extent
        window = Rectangle(extent.min_x, extent.min_y,
                           extent.min_x + 1200.0, extent.min_y + 1200.0)
        result = engine.query(["restaurant"], delta=800.0, region=window, algorithm="greedy")
        for node_id in result.region.nodes:
            node = engine.network.node(node_id)
            assert window.contains(node.x, node.y)

    def test_algorithms_agree_on_rough_quality(self, engine):
        tgen = engine.query(["cafe", "coffee"], delta=1200.0, algorithm="tgen")
        greedy = engine.query(["cafe", "coffee"], delta=1200.0, algorithm="greedy")
        app = engine.query(["cafe", "coffee"], delta=1200.0, algorithm="app")
        best = max(tgen.weight, greedy.weight, app.weight)
        assert best > 0
        assert greedy.weight <= best + 1e-9
        assert app.weight >= 0.5 * best  # APP carries an approximation guarantee

    def test_query_with_unknown_keywords_returns_empty(self, engine):
        result = engine.query(["zzzz-not-a-term"], delta=1000.0, algorithm="tgen")
        assert result.is_empty

    def test_topk_query(self, engine):
        topk = engine.query_topk(["restaurant"], delta=1000.0, k=3, algorithm="tgen")
        assert 1 <= len(topk) <= 3
        node_sets = [r.region.nodes for r in topk]
        assert len(set(node_sets)) == len(node_sets)

    def test_rating_scoring_mode(self, tiny_ny_dataset):
        engine = LCMSREngine(
            tiny_ny_dataset.network,
            tiny_ny_dataset.corpus,
            scoring_mode=ScoringMode.RATING_IF_MATCH,
        )
        result = engine.query(["restaurant"], delta=1000.0, algorithm="greedy")
        assert result.weight >= 0.0
