"""Tests for the synthetic network builders."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import GraphError
from repro.network.builders import (
    grid_network,
    manhattan_network,
    paper_example_network,
    path_network,
    random_geometric_network,
    star_network,
)
from repro.network.stats import compute_stats


class TestGridNetwork:
    def test_shape_and_counts(self):
        network = grid_network(3, 4, spacing=10.0)
        assert network.num_nodes == 12
        # 3 rows x 4 cols grid: 3*3 horizontal + 2*4 vertical edges.
        assert network.num_edges == 3 * 3 + 2 * 4

    def test_spacing_controls_edge_lengths(self):
        network = grid_network(2, 2, spacing=50.0)
        assert network.edge_length(0, 1) == pytest.approx(50.0)
        assert network.edge_length(0, 2) == pytest.approx(50.0)

    def test_single_node_grid(self):
        network = grid_network(1, 1)
        assert network.num_nodes == 1
        assert network.num_edges == 0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GraphError):
            grid_network(0, 3)
        with pytest.raises(GraphError):
            grid_network(3, 3, spacing=0.0)

    def test_jitter_preserves_connectivity(self):
        network = grid_network(5, 5, spacing=100.0, jitter=30.0, rng=random.Random(1))
        assert network.is_connected()


class TestManhattanNetwork:
    def test_connected_and_deterministic(self):
        a = manhattan_network(10, 10, seed=5)
        b = manhattan_network(10, 10, seed=5)
        assert a.is_connected()
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges

    def test_different_seed_changes_topology(self):
        a = manhattan_network(10, 10, seed=5)
        b = manhattan_network(10, 10, seed=6)
        assert {e.key() for e in a.edges()} != {e.key() for e in b.edges()}

    def test_realistic_degree(self):
        network = manhattan_network(15, 15, seed=2)
        stats = compute_stats(network)
        assert 2.0 <= stats.average_degree <= 4.5


class TestRandomGeometricNetwork:
    def test_connected_with_target_degree(self):
        network = random_geometric_network(200, extent=5000.0, target_degree=3.0, seed=9)
        assert network.num_nodes == 200
        assert network.is_connected()
        stats = compute_stats(network)
        assert 1.5 <= stats.average_degree <= 4.5

    def test_metric_edges(self):
        network = random_geometric_network(60, extent=1000.0, seed=4)
        for edge in network.edges():
            assert edge.length == pytest.approx(network.euclidean(edge.u, edge.v), rel=1e-6)

    def test_needs_at_least_one_node(self):
        with pytest.raises(GraphError):
            random_geometric_network(0)


class TestSimpleShapes:
    def test_star_network(self):
        network = star_network(5, edge_length=2.0)
        assert network.num_nodes == 6
        assert network.num_edges == 5
        assert network.degree(0) == 5
        assert all(network.edge_length(0, leaf) == 2.0 for leaf in range(1, 6))

    def test_path_network(self):
        network = path_network(4, edge_length=3.0)
        assert network.num_nodes == 4
        assert network.num_edges == 3
        assert network.total_length() == pytest.approx(9.0)

    def test_path_network_single_node(self):
        network = path_network(1)
        assert network.num_edges == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(GraphError):
            star_network(-1)
        with pytest.raises(GraphError):
            path_network(0)


class TestPaperExample:
    def test_matches_figure_2(self):
        network = paper_example_network()
        assert network.num_nodes == 6
        assert network.num_edges == 8
        # The optimal region's edges from the running example.
        assert network.edge_length(2, 6) == pytest.approx(1.5)
        assert network.edge_length(5, 6) == pytest.approx(2.8)
        assert network.edge_length(4, 5) == pytest.approx(1.6)
        assert network.edge_length(2, 6) + network.edge_length(5, 6) + network.edge_length(
            4, 5
        ) == pytest.approx(5.9)
