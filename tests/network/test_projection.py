"""Tests for the geographic projection helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.network.projection import (
    equirectangular_to_meters,
    haversine_meters,
    project_points,
)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_meters(40.7, -74.0, 40.7, -74.0) == 0.0

    def test_one_degree_latitude_is_about_111km(self):
        distance = haversine_meters(40.0, -74.0, 41.0, -74.0)
        assert distance == pytest.approx(111_195, rel=0.01)

    def test_known_city_pair(self):
        # New York City to Philadelphia is roughly 130 km great-circle.
        distance = haversine_meters(40.7128, -74.0060, 39.9526, -75.1652)
        assert 120_000 < distance < 140_000

    def test_symmetry(self):
        a = haversine_meters(10.0, 20.0, 30.0, 40.0)
        b = haversine_meters(30.0, 40.0, 10.0, 20.0)
        assert a == pytest.approx(b)


class TestEquirectangular:
    def test_origin_maps_to_zero(self):
        assert equirectangular_to_meters(40.7, -74.0, 40.7, -74.0) == (0.0, 0.0)

    def test_close_to_haversine_for_city_extent(self):
        origin = (40.7128, -74.0060)
        point = (40.7628, -73.9360)  # ~8 km away
        x, y = equirectangular_to_meters(point[0], point[1], origin[0], origin[1])
        planar = math.hypot(x, y)
        great_circle = haversine_meters(origin[0], origin[1], point[0], point[1])
        assert planar == pytest.approx(great_circle, rel=0.005)

    def test_axes_orientation(self):
        # North of the origin: positive y. East of the origin: positive x.
        _, y = equirectangular_to_meters(41.0, -74.0, 40.0, -74.0)
        x, _ = equirectangular_to_meters(40.0, -73.0, 40.0, -74.0)
        assert y > 0
        assert x > 0

    @given(
        lat=st.floats(-60, 60),
        lon=st.floats(-179, 179),
        dlat=st.floats(-0.05, 0.05),
        dlon=st.floats(-0.05, 0.05),
    )
    def test_small_offsets_agree_with_haversine(self, lat, lon, dlat, dlon):
        x, y = equirectangular_to_meters(lat + dlat, lon + dlon, lat, lon)
        planar = math.hypot(x, y)
        great_circle = haversine_meters(lat, lon, lat + dlat, lon + dlon)
        assert planar == pytest.approx(great_circle, rel=0.02, abs=1.0)


class TestProjectPoints:
    def test_empty(self):
        assert project_points([]) == []

    def test_centroid_origin_by_default(self):
        points = [(40.0, -74.0), (40.2, -74.0)]
        projected = project_points(points)
        # Symmetric around the centroid: y coordinates are opposite.
        assert projected[0][1] == pytest.approx(-projected[1][1], rel=1e-9)

    def test_explicit_origin(self):
        projected = project_points([(40.0, -74.0)], origin=(40.0, -74.0))
        assert projected == [(0.0, 0.0)]
