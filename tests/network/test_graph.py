"""Unit tests for the road-network graph model."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.network.graph import Edge, RoadNetwork, edge_key


def build_triangle() -> RoadNetwork:
    network = RoadNetwork()
    network.add_node(1, 0.0, 0.0)
    network.add_node(2, 3.0, 0.0)
    network.add_node(3, 0.0, 4.0)
    network.add_edge(1, 2, 3.0)
    network.add_edge(1, 3, 4.0)
    network.add_edge(2, 3, 5.0)
    return network


class TestNodeAndEdgeBasics:
    def test_add_and_lookup_node(self):
        network = RoadNetwork()
        node = network.add_node(7, 1.5, -2.5)
        assert node.coords() == (1.5, -2.5)
        assert 7 in network
        assert network.node(7).x == 1.5

    def test_duplicate_node_rejected(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        with pytest.raises(GraphError):
            network.add_node(1, 1, 1)

    def test_unknown_node_lookup_raises(self):
        network = RoadNetwork()
        with pytest.raises(NodeNotFoundError):
            network.node(99)

    def test_edge_requires_existing_endpoints(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        with pytest.raises(NodeNotFoundError):
            network.add_edge(1, 2, 1.0)

    def test_self_loop_rejected(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        with pytest.raises(GraphError):
            network.add_edge(1, 1, 1.0)

    def test_negative_length_rejected(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        with pytest.raises(GraphError):
            network.add_edge(1, 2, -1.0)

    def test_default_length_is_euclidean(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 3, 4)
        network.add_edge(1, 2)
        assert network.edge_length(1, 2) == pytest.approx(5.0)

    def test_parallel_edge_keeps_shorter_length(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        network.add_edge(1, 2, 5.0)
        network.add_edge(1, 2, 3.0)
        assert network.edge_length(1, 2) == 3.0
        assert network.num_edges == 1
        network.add_edge(2, 1, 7.0)
        assert network.edge_length(1, 2) == 3.0

    def test_edge_key_normalisation(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_edge_other_endpoint(self):
        edge = Edge.make(4, 2, 1.0)
        assert edge.other(2) == 4
        assert edge.other(4) == 2
        with pytest.raises(GraphError):
            edge.other(9)


class TestTopologyQueries:
    def test_counts_and_lengths(self):
        network = build_triangle()
        assert network.num_nodes == 3
        assert network.num_edges == 3
        assert network.total_length() == pytest.approx(12.0)
        assert network.min_edge_length() == 3.0
        assert network.max_edge_length() == 5.0

    def test_neighbors_and_degree(self):
        network = build_triangle()
        assert sorted(network.neighbors(1)) == [2, 3]
        assert network.degree(1) == 2
        assert dict(network.neighbor_items(2)) == {1: 3.0, 3: 5.0}

    def test_coords_and_contains(self):
        network = build_triangle()
        assert network.contains(1)
        assert not network.contains(99)
        assert network.coords(1) == network.node(1).coords()

    def test_length_stats_invalidate_on_add_edge(self):
        network = build_triangle()
        assert network.total_length() == pytest.approx(12.0)  # prime the cache
        network.add_node(4, 100.0, 0.0)
        network.add_edge(1, 4, 50.0)
        assert network.total_length() == pytest.approx(62.0)
        assert network.max_edge_length() == 50.0

    def test_length_stats_invalidate_on_remove_edge(self):
        network = build_triangle()
        assert network.max_edge_length() == 5.0  # prime the cache
        network.remove_edge(2, 3)  # the length-5 edge
        assert network.max_edge_length() == 4.0
        assert network.total_length() == pytest.approx(7.0)

    def test_length_stats_invalidate_when_parallel_edge_shortens(self):
        network = build_triangle()
        assert network.min_edge_length() == 3.0  # prime the cache
        network.add_edge(1, 2, 0.5)  # parallel segment keeps the shorter length
        assert network.min_edge_length() == 0.5
        assert network.num_edges == 3

    def test_length_stats_invalidate_on_remove_node(self):
        network = build_triangle()
        assert network.total_length() == pytest.approx(12.0)  # prime the cache
        network.remove_node(3)
        assert network.total_length() == pytest.approx(3.0)

    def test_edges_reported_once(self):
        network = build_triangle()
        edges = list(network.edges())
        assert len(edges) == 3
        assert all(edge.u < edge.v for edge in edges)

    def test_remove_edge_and_node(self):
        network = build_triangle()
        network.remove_edge(1, 2)
        assert not network.has_edge(1, 2)
        assert network.num_edges == 2
        network.remove_node(3)
        assert network.num_nodes == 2
        assert network.num_edges == 0
        with pytest.raises(EdgeNotFoundError):
            network.edge_length(1, 3)

    def test_remove_missing_edge_raises(self):
        network = build_triangle()
        with pytest.raises(EdgeNotFoundError):
            network.remove_edge(1, 99)

    def test_bounding_box(self):
        network = build_triangle()
        assert network.bounding_box() == (0.0, 0.0, 3.0, 4.0)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(GraphError):
            RoadNetwork().bounding_box()

    def test_euclidean_distance(self):
        network = build_triangle()
        assert network.euclidean(2, 3) == pytest.approx(5.0)


class TestTraversalAndCopies:
    def test_bfs_order_reaches_all_connected_nodes(self):
        network = build_triangle()
        order = network.bfs_order(1)
        assert set(order) == {1, 2, 3}
        assert order[0] == 1

    def test_connected_components(self):
        network = build_triangle()
        network.add_node(10, 50, 50)
        network.add_node(11, 51, 50)
        network.add_edge(10, 11, 1.0)
        components = network.connected_components()
        assert len(components) == 2
        assert {1, 2, 3} in components
        assert {10, 11} in components
        assert not network.is_connected()

    def test_empty_network_is_connected(self):
        assert RoadNetwork().is_connected()

    def test_copy_is_independent(self):
        network = build_triangle()
        clone = network.copy()
        clone.remove_edge(1, 2)
        assert network.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_subgraph_induces_only_internal_edges(self):
        network = build_triangle()
        sub = network.subgraph([1, 2])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)
