"""Tests for rectangles and spatial windowing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import QueryError
from repro.network.builders import grid_network
from repro.network.subgraph import (
    Rectangle,
    induced_subgraph,
    largest_component_subgraph,
    nodes_in_rectangle,
)


class TestRectangle:
    def test_basic_geometry(self):
        rect = Rectangle(0, 0, 4, 3)
        assert rect.width == 4
        assert rect.height == 3
        assert rect.area == 12
        assert rect.center() == (2.0, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(QueryError):
            Rectangle(5, 0, 1, 1)

    def test_contains_includes_borders(self):
        rect = Rectangle(0, 0, 2, 2)
        assert rect.contains(0, 0)
        assert rect.contains(2, 2)
        assert not rect.contains(2.001, 1)

    def test_intersects(self):
        a = Rectangle(0, 0, 2, 2)
        assert a.intersects(Rectangle(1, 1, 3, 3))
        assert a.intersects(Rectangle(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rectangle(3, 3, 4, 4))

    def test_expanded(self):
        rect = Rectangle(1, 1, 2, 2).expanded(1.0)
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == (0, 0, 3, 3)

    def test_from_center(self):
        rect = Rectangle.from_center(10, 10, 4, 2)
        assert (rect.min_x, rect.max_x) == (8, 12)
        assert (rect.min_y, rect.max_y) == (9, 11)

    def test_square_of_area(self):
        rect = Rectangle.square_of_area(0, 0, 100.0)
        assert rect.width == pytest.approx(10.0)
        assert rect.area == pytest.approx(100.0)

    def test_square_of_area_rejects_non_positive(self):
        with pytest.raises(QueryError):
            Rectangle.square_of_area(0, 0, 0.0)

    @given(
        cx=st.floats(-1e4, 1e4),
        cy=st.floats(-1e4, 1e4),
        area=st.floats(1e-3, 1e8),
    )
    def test_square_of_area_property(self, cx, cy, area):
        rect = Rectangle.square_of_area(cx, cy, area)
        assert rect.area == pytest.approx(area, rel=1e-9)
        assert rect.contains(cx, cy)


class TestWindowing:
    def test_nodes_in_rectangle(self):
        network = grid_network(4, 4, spacing=10.0)
        window = Rectangle(0, 0, 15, 15)
        inside = nodes_in_rectangle(network, window)
        assert len(inside) == 4  # the 2x2 corner of the grid

    def test_induced_subgraph_keeps_internal_edges_only(self):
        network = grid_network(4, 4, spacing=10.0)
        window = Rectangle(0, 0, 15, 15)
        sub = induced_subgraph(network, window)
        assert sub.num_nodes == 4
        assert sub.num_edges == 4  # a 2x2 block has 4 internal edges

    def test_empty_window(self):
        network = grid_network(3, 3, spacing=10.0)
        sub = induced_subgraph(network, Rectangle(100, 100, 110, 110))
        assert sub.num_nodes == 0
        assert sub.num_edges == 0

    def test_window_covering_everything(self):
        network = grid_network(3, 3, spacing=10.0)
        sub = induced_subgraph(network, Rectangle(-1, -1, 100, 100))
        assert sub.num_nodes == network.num_nodes
        assert sub.num_edges == network.num_edges

    def test_largest_component(self):
        network = grid_network(3, 3, spacing=10.0)
        network.add_node(100, 500.0, 500.0)
        largest = largest_component_subgraph(network)
        assert largest.num_nodes == 9
        assert 100 not in largest
