"""Tests for DIMACS / edge-list loading and saving (round-trip properties)."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import DatasetError
from repro.network.builders import grid_network
from repro.network.io import (
    load_dimacs,
    load_edge_list,
    load_ways,
    save_dimacs,
    save_edge_list,
)


class TestDimacsRoundTrip:
    def test_round_trip_preserves_structure(self, tmp_path):
        original = grid_network(4, 4, spacing=75.0)
        gr = os.fspath(tmp_path / "net.gr")
        co = os.fspath(tmp_path / "net.co")
        save_dimacs(original, gr, co)
        loaded = load_dimacs(gr, co)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_edges == original.num_edges
        for edge in original.edges():
            assert loaded.edge_length(edge.u, edge.v) == pytest.approx(edge.length, rel=1e-6)

    def test_length_scale_applies(self, tmp_path):
        original = grid_network(2, 2, spacing=10.0)
        gr = os.fspath(tmp_path / "net.gr")
        co = os.fspath(tmp_path / "net.co")
        save_dimacs(original, gr, co)
        loaded = load_dimacs(gr, co, length_scale=0.1)
        assert loaded.edge_length(0, 1) == pytest.approx(1.0)

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dimacs(os.fspath(tmp_path / "missing.gr"), os.fspath(tmp_path / "missing.co"))

    def test_malformed_coordinate_line_raises(self, tmp_path):
        co = tmp_path / "bad.co"
        gr = tmp_path / "bad.gr"
        co.write_text("v 1 0.0\n")
        gr.write_text("")
        with pytest.raises(DatasetError):
            load_dimacs(os.fspath(gr), os.fspath(co))

    def test_arc_referencing_unknown_node_raises(self, tmp_path):
        co = tmp_path / "bad.co"
        gr = tmp_path / "bad.gr"
        co.write_text("v 1 0.0 0.0\nv 2 1.0 0.0\n")
        gr.write_text("a 1 3 5.0\n")
        with pytest.raises(DatasetError):
            load_dimacs(os.fspath(gr), os.fspath(co))

    def test_comments_and_headers_ignored(self, tmp_path):
        co = tmp_path / "ok.co"
        gr = tmp_path / "ok.gr"
        co.write_text("c comment\np aux sp co 2\nv 1 0.0 0.0\nv 2 1.0 0.0\n")
        gr.write_text("c comment\np sp 2 2\na 1 2 7.5\na 2 1 7.5\n")
        network = load_dimacs(os.fspath(gr), os.fspath(co))
        assert network.num_nodes == 2
        assert network.num_edges == 1
        assert network.edge_length(1, 2) == pytest.approx(7.5)


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path):
        original = grid_network(3, 3, spacing=40.0)
        path = os.fspath(tmp_path / "net.txt")
        save_edge_list(original, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_edges == original.num_edges

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("# header\n\nn 1 0 0\nn 2 10 0\ne 1 2 10\n")
        network = load_edge_list(os.fspath(path))
        assert network.num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "net.txt"
        path.write_text("n 1 0 0\nx broken line\n")
        with pytest.raises(DatasetError):
            load_edge_list(os.fspath(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_edge_list(os.fspath(tmp_path / "missing.txt"))


class TestWaysFormat:
    def test_polylines_become_edges_with_geometric_lengths(self, tmp_path):
        path = tmp_path / "roads.txt"
        path.write_text(
            "# toy extract\n"
            "node 1 0.0 0.0\n"
            "node 2 3.0 4.0\n"
            "node 3 3.0 8.0\n"
            "node 4 10.0 8.0\n"
            "way 100 1 2 3\n"
            "way 200 3 4\n"
        )
        network = load_ways(os.fspath(path))
        assert network.num_nodes == 4
        assert network.num_edges == 3
        assert network.edge_length(1, 2) == pytest.approx(5.0)
        assert network.edge_length(2, 3) == pytest.approx(4.0)
        assert network.edge_length(3, 4) == pytest.approx(7.0)

    def test_overlapping_ways_and_duplicate_points_deduplicate(self, tmp_path):
        path = tmp_path / "roads.txt"
        path.write_text(
            "node 1 0.0 0.0\n"
            "node 2 6.0 0.0\n"
            "node 3 6.0 6.0\n"
            "way 100 1 2 2 3\n"  # consecutive duplicate => zero-length skipped
            "way 200 2 1\n"      # re-declares edge (1, 2)
        )
        network = load_ways(os.fspath(path))
        assert network.num_edges == 2
        assert network.edge_length(1, 2) == pytest.approx(6.0)

    def test_undeclared_node_raises_with_location(self, tmp_path):
        path = tmp_path / "roads.txt"
        path.write_text("node 1 0.0 0.0\nway 100 1 9\n")
        with pytest.raises(DatasetError, match=r"roads\.txt:2: .*undeclared node \(9\)"):
            load_ways(os.fspath(path))

    def test_malformed_line_and_missing_file_raise(self, tmp_path):
        path = tmp_path / "roads.txt"
        path.write_text("node 1 0.0 0.0\nway 100\n")  # a way needs >= 2 nodes
        with pytest.raises(DatasetError):
            load_ways(os.fspath(path))
        with pytest.raises(DatasetError):
            load_ways(os.fspath(tmp_path / "missing.txt"))
