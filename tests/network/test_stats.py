"""Tests for the network statistics helper."""

from __future__ import annotations

import pytest

from repro.network.builders import grid_network, path_network
from repro.network.graph import RoadNetwork
from repro.network.stats import compute_stats


class TestComputeStats:
    def test_empty_network(self):
        stats = compute_stats(RoadNetwork())
        assert stats.num_nodes == 0
        assert stats.num_edges == 0
        assert stats.total_length == 0.0
        assert stats.num_components == 0

    def test_path_network_values(self):
        stats = compute_stats(path_network(4, edge_length=2.0))
        assert stats.num_nodes == 4
        assert stats.num_edges == 3
        assert stats.total_length == pytest.approx(6.0)
        assert stats.mean_edge_length == pytest.approx(2.0)
        assert stats.min_edge_length == pytest.approx(2.0)
        assert stats.max_edge_length == pytest.approx(2.0)
        assert stats.average_degree == pytest.approx(1.5)
        assert stats.num_components == 1

    def test_components_counted(self):
        network = path_network(3, edge_length=1.0)
        network.add_node(50, 100.0, 0.0)
        stats = compute_stats(network)
        assert stats.num_components == 2

    def test_bounding_box_area(self):
        stats = compute_stats(grid_network(3, 5, spacing=10.0))
        assert stats.bounding_box_area == pytest.approx(40.0 * 20.0)

    def test_as_dict_round_trip(self):
        stats = compute_stats(grid_network(2, 2, spacing=1.0))
        payload = stats.as_dict()
        assert payload["num_nodes"] == 4
        assert payload["num_edges"] == 4
        assert set(payload) == {
            "num_nodes",
            "num_edges",
            "average_degree",
            "min_edge_length",
            "max_edge_length",
            "mean_edge_length",
            "total_length",
            "num_components",
            "bounding_box_area",
        }
