"""Tests for Dijkstra, path reconstruction and the Steiner-length approximation."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError, SolverError
from repro.network.builders import grid_network, path_network
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_length,
    steiner_tree_length,
)


@pytest.fixture
def weighted_square() -> RoadNetwork:
    """A square with one expensive side plus a diagonal shortcut."""
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (1, 0), (1, 1), (0, 1)]):
        network.add_node(node_id, float(x), float(y))
    network.add_edge(0, 1, 1.0)
    network.add_edge(1, 2, 1.0)
    network.add_edge(2, 3, 1.0)
    network.add_edge(3, 0, 10.0)
    network.add_edge(0, 2, 2.5)
    return network


class TestDijkstra:
    def test_distances_and_parents(self, weighted_square):
        dist, parent = dijkstra(weighted_square, 0)
        assert dist[0] == 0.0
        assert dist[1] == 1.0
        assert dist[2] == 2.0
        assert dist[3] == 3.0
        assert parent[3] == 2

    def test_unknown_source_raises(self, weighted_square):
        with pytest.raises(NodeNotFoundError):
            dijkstra(weighted_square, 77)

    def test_early_termination_with_targets(self, weighted_square):
        dist, _ = dijkstra(weighted_square, 0, targets={1})
        assert dist[1] == 1.0

    def test_max_distance_prunes_far_nodes(self, weighted_square):
        dist, _ = dijkstra(weighted_square, 0, max_distance=1.5)
        assert 1 in dist
        assert 3 not in dist

    def test_grid_distance_matches_manhattan(self):
        network = grid_network(5, 5, spacing=10.0)
        assert shortest_path_length(network, 0, 24) == pytest.approx(80.0)


class TestShortestPath:
    def test_path_nodes(self, weighted_square):
        assert shortest_path(weighted_square, 0, 3) == [0, 1, 2, 3]

    def test_path_on_line(self):
        network = path_network(5, edge_length=2.0)
        assert shortest_path(network, 0, 4) == [0, 1, 2, 3, 4]
        assert shortest_path_length(network, 0, 4) == pytest.approx(8.0)

    def test_unreachable_target_raises(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        with pytest.raises(SolverError):
            shortest_path(network, 1, 2)


class TestSteinerLength:
    def test_fewer_than_two_terminals_is_zero(self, weighted_square):
        assert steiner_tree_length(weighted_square, []) == 0.0
        assert steiner_tree_length(weighted_square, [0]) == 0.0

    def test_pair_equals_shortest_path(self, weighted_square):
        assert steiner_tree_length(weighted_square, [0, 3]) == pytest.approx(3.0)

    def test_three_terminals_on_a_line(self):
        network = path_network(5, edge_length=1.0)
        assert steiner_tree_length(network, [0, 2, 4]) == pytest.approx(4.0)

    def test_duplicates_and_unknown_terminals_ignored(self, weighted_square):
        assert steiner_tree_length(weighted_square, [0, 0, 3, 99]) == pytest.approx(3.0)

    def test_disconnected_terminals_counted_per_component(self):
        network = path_network(3, edge_length=1.0)
        network.add_node(10, 100, 0)
        network.add_node(11, 101, 0)
        network.add_edge(10, 11, 1.0)
        # Two separate components: 0-2 (length 2) and 10-11 (length 1).
        assert steiner_tree_length(network, [0, 2, 10, 11]) == pytest.approx(3.0)


class TestEccentricity:
    def test_eccentricity_on_path(self):
        network = path_network(4, edge_length=1.0)
        assert eccentricity(network, 0) == pytest.approx(3.0)
        assert eccentricity(network, 1) == pytest.approx(2.0)
