"""Tests for Dijkstra, path reconstruction and the Steiner-length approximation."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NodeNotFoundError, SolverError
from repro.network.builders import grid_network, path_network, random_geometric_network
from repro.network.compact import CompactNetwork
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    dijkstra,
    eccentricity,
    shortest_path,
    shortest_path_length,
    steiner_tree_length,
)


def both_backends(network: RoadNetwork):
    """The same graph under both backends (dict and frozen CSR)."""
    return [network, CompactNetwork.from_network(network)]


@pytest.fixture
def weighted_square() -> RoadNetwork:
    """A square with one expensive side plus a diagonal shortcut."""
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (1, 0), (1, 1), (0, 1)]):
        network.add_node(node_id, float(x), float(y))
    network.add_edge(0, 1, 1.0)
    network.add_edge(1, 2, 1.0)
    network.add_edge(2, 3, 1.0)
    network.add_edge(3, 0, 10.0)
    network.add_edge(0, 2, 2.5)
    return network


class TestDijkstra:
    def test_distances_and_parents(self, weighted_square):
        dist, parent = dijkstra(weighted_square, 0)
        assert dist[0] == 0.0
        assert dist[1] == 1.0
        assert dist[2] == 2.0
        assert dist[3] == 3.0
        assert parent[3] == 2

    def test_unknown_source_raises(self, weighted_square):
        with pytest.raises(NodeNotFoundError):
            dijkstra(weighted_square, 77)

    def test_early_termination_with_targets(self, weighted_square):
        dist, _ = dijkstra(weighted_square, 0, targets={1})
        assert dist[1] == 1.0

    def test_max_distance_prunes_far_nodes(self, weighted_square):
        dist, _ = dijkstra(weighted_square, 0, max_distance=1.5)
        assert 1 in dist
        assert 3 not in dist

    def test_grid_distance_matches_manhattan(self):
        network = grid_network(5, 5, spacing=10.0)
        assert shortest_path_length(network, 0, 24) == pytest.approx(80.0)


class TestDijkstraEdgeCases:
    """Cutoff exactness, early exit, disconnection — on both backends."""

    def test_max_distance_cutoff_is_inclusive(self):
        # Nodes at distance exactly max_distance must be kept; strictly beyond, dropped.
        network = path_network(5, edge_length=2.0)
        for graph in both_backends(network):
            dist, parent = dijkstra(graph, 0, max_distance=4.0)
            assert dist == {0: 0.0, 1: 2.0, 2: 4.0}
            assert parent == {1: 0, 2: 1}

    def test_max_distance_just_below_edge_sum_excludes(self):
        network = path_network(4, edge_length=1.0)
        for graph in both_backends(network):
            dist, _ = dijkstra(graph, 0, max_distance=2.0 - 1e-12)
            assert set(dist) == {0, 1}

    def test_early_exit_when_all_targets_settle(self):
        # With target {1} settled at distance 2, the search must stop before
        # relaxing anything beyond node 2's neighbours: node 4 stays unvisited.
        network = path_network(6, edge_length=2.0)
        for graph in both_backends(network):
            dist, _ = dijkstra(graph, 0, targets={1})
            assert dist[1] == 2.0
            assert 4 not in dist and 5 not in dist

    def test_unknown_target_never_settles_no_early_exit(self):
        # A target id missing from the graph can never settle; the search then
        # degrades to a full exploration rather than stopping early or raising.
        network = path_network(4, edge_length=1.0)
        for graph in both_backends(network):
            dist, _ = dijkstra(graph, 0, targets={999})
            assert set(dist) == {0, 1, 2, 3}

    def test_disconnected_source_reaches_only_its_component(self):
        network = path_network(3, edge_length=1.0)
        network.add_node(10, 50.0, 0.0)
        network.add_node(11, 51.0, 0.0)
        network.add_edge(10, 11, 1.0)
        for graph in both_backends(network):
            dist, parent = dijkstra(graph, 10)
            assert dist == {10: 0.0, 11: 1.0}
            assert parent == {11: 10}

    def test_isolated_source(self):
        network = RoadNetwork()
        network.add_node(7, 0.0, 0.0)
        for graph in both_backends(network):
            dist, parent = dijkstra(graph, 7)
            assert dist == {7: 0.0}
            assert parent == {}

    def test_source_is_its_own_target(self):
        network = path_network(4, edge_length=1.0)
        for graph in both_backends(network):
            dist, parent = dijkstra(graph, 2, targets={2})
            assert dist == {2: 0.0}
            assert parent == {}

    def test_csr_unknown_source_raises(self):
        graph = CompactNetwork.from_network(path_network(3, edge_length=1.0))
        with pytest.raises(NodeNotFoundError):
            dijkstra(graph, 77)


class TestDijkstraBackendParity:
    """Property-style check: dict and CSR Dijkstra agree exactly on random graphs."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_graph_parity(self, seed):
        rng = random.Random(seed)
        network = random_geometric_network(
            num_nodes=rng.randint(40, 120), extent=1000.0, seed=seed
        )
        compact = CompactNetwork.from_network(network)
        node_ids = list(network.node_ids())
        diameter_hint = 1000.0 * 2
        for _ in range(8):
            source = rng.choice(node_ids)
            targets = (
                set(rng.sample(node_ids, rng.randint(1, min(5, len(node_ids)))))
                if rng.random() < 0.5
                else None
            )
            max_distance = rng.uniform(0.05, 1.0) * diameter_hint if rng.random() < 0.5 else None
            dist_d, parent_d = dijkstra(network, source, targets=targets, max_distance=max_distance)
            dist_c, parent_c = dijkstra(compact, source, targets=targets, max_distance=max_distance)
            # Not merely equal distances: the parent trees must match too, so
            # downstream path reconstruction is backend-independent.
            assert dist_d == dist_c
            assert parent_d == parent_c

    @pytest.mark.parametrize("seed", [11, 12])
    def test_uniform_length_grid_parity(self, seed):
        # Grids maximise shortest-path ties; parents must still agree because both
        # backends relax neighbours in the same order and tie-break heaps by id.
        network = grid_network(7, 9, spacing=5.0)
        compact = CompactNetwork.from_network(network)
        rng = random.Random(seed)
        for _ in range(5):
            source = rng.randrange(7 * 9)
            dist_d, parent_d = dijkstra(network, source)
            dist_c, parent_c = dijkstra(compact, source)
            assert dist_d == dist_c
            assert parent_d == parent_c


class TestShortestPath:
    def test_path_nodes(self, weighted_square):
        assert shortest_path(weighted_square, 0, 3) == [0, 1, 2, 3]

    def test_path_on_line(self):
        network = path_network(5, edge_length=2.0)
        assert shortest_path(network, 0, 4) == [0, 1, 2, 3, 4]
        assert shortest_path_length(network, 0, 4) == pytest.approx(8.0)

    def test_unreachable_target_raises(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        network.add_node(2, 1, 0)
        with pytest.raises(SolverError):
            shortest_path(network, 1, 2)


class TestSteinerLength:
    def test_fewer_than_two_terminals_is_zero(self, weighted_square):
        assert steiner_tree_length(weighted_square, []) == 0.0
        assert steiner_tree_length(weighted_square, [0]) == 0.0

    def test_pair_equals_shortest_path(self, weighted_square):
        assert steiner_tree_length(weighted_square, [0, 3]) == pytest.approx(3.0)

    def test_three_terminals_on_a_line(self):
        network = path_network(5, edge_length=1.0)
        assert steiner_tree_length(network, [0, 2, 4]) == pytest.approx(4.0)

    def test_duplicates_and_unknown_terminals_ignored(self, weighted_square):
        assert steiner_tree_length(weighted_square, [0, 0, 3, 99]) == pytest.approx(3.0)

    def test_disconnected_terminals_counted_per_component(self):
        network = path_network(3, edge_length=1.0)
        network.add_node(10, 100, 0)
        network.add_node(11, 101, 0)
        network.add_edge(10, 11, 1.0)
        # Two separate components: 0-2 (length 2) and 10-11 (length 1).
        assert steiner_tree_length(network, [0, 2, 10, 11]) == pytest.approx(3.0)


class TestEccentricity:
    def test_eccentricity_on_path(self):
        network = path_network(4, edge_length=1.0)
        assert eccentricity(network, 0) == pytest.approx(3.0)
        assert eccentricity(network, 1) == pytest.approx(2.0)
