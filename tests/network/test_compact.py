"""Tests for the frozen CSR network snapshot and the GraphView protocol."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.network.builders import grid_network, random_geometric_network
from repro.network.compact import CompactNetwork, GraphView
from repro.network.graph import RoadNetwork
from repro.network.subgraph import (
    Rectangle,
    induced_subgraph,
    largest_component_subgraph,
    nodes_in_rectangle,
)


@pytest.fixture
def small_network() -> RoadNetwork:
    """A 5-node network with non-uniform lengths and a degree-0 node."""
    network = RoadNetwork()
    network.add_node(10, 0.0, 0.0)
    network.add_node(20, 3.0, 0.0)
    network.add_node(30, 3.0, 4.0)
    network.add_node(40, 0.0, 4.0)
    network.add_node(50, 10.0, 10.0)  # isolated
    network.add_edge(10, 20, 3.0)
    network.add_edge(20, 30, 4.0)
    network.add_edge(30, 40, 3.0)
    network.add_edge(40, 10, 4.0)
    network.add_edge(10, 30, 5.0)
    return network


class TestRoundTrip:
    """Tier-1 smoke: freezing must round-trip nodes / edges / lengths exactly."""

    def test_small_network_round_trips_exactly(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        assert compact.num_nodes == small_network.num_nodes
        assert compact.num_edges == small_network.num_edges
        assert list(compact.node_ids()) == list(small_network.node_ids())
        for node in small_network.nodes():
            assert compact.coords(node.node_id) == (node.x, node.y)
            assert compact.node(node.node_id) == node
            assert compact.degree(node.node_id) == small_network.degree(node.node_id)
            assert list(compact.neighbor_items(node.node_id)) == list(
                small_network.neighbor_items(node.node_id)
            )
        assert {(e.u, e.v, e.length) for e in compact.edges()} == {
            (e.u, e.v, e.length) for e in small_network.edges()
        }

    def test_random_network_round_trips_exactly(self):
        network = random_geometric_network(num_nodes=150, extent=2000.0, seed=9)
        compact = CompactNetwork.from_network(network)
        thawed = compact.to_network()
        assert set(thawed.node_ids()) == set(network.node_ids())
        assert {(e.u, e.v, e.length) for e in thawed.edges()} == {
            (e.u, e.v, e.length) for e in network.edges()
        }
        for node_id in network.node_ids():
            assert compact.edge_length(
                node_id, next(iter(network.neighbors(node_id)))
            ) == network.edge_length(node_id, next(iter(network.neighbors(node_id))))

    def test_freeze_shorthand_and_idempotence(self, small_network):
        compact = small_network.freeze()
        assert isinstance(compact, CompactNetwork)
        assert CompactNetwork.from_network(compact) is compact

    def test_empty_network(self):
        compact = CompactNetwork.from_network(RoadNetwork())
        assert compact.num_nodes == 0
        assert compact.num_edges == 0
        assert compact.total_length() == 0.0
        assert compact.is_connected()
        with pytest.raises(GraphError):
            compact.bounding_box()


class TestProtocol:
    def test_both_backends_satisfy_graphview(self, small_network):
        assert isinstance(small_network, GraphView)
        assert isinstance(CompactNetwork.from_network(small_network), GraphView)

    def test_contains_and_membership(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        assert compact.contains(10) and 10 in compact
        assert not compact.contains(999) and 999 not in compact
        assert len(compact) == 5


class TestReadApi:
    def test_edge_lookups(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        assert compact.edge_length(10, 30) == 5.0
        assert compact.edge_length(30, 10) == 5.0
        assert compact.has_edge(20, 30)
        assert not compact.has_edge(20, 40)
        with pytest.raises(EdgeNotFoundError):
            compact.edge_length(20, 40)
        with pytest.raises(EdgeNotFoundError):
            compact.edge_length(999, 10)

    def test_unknown_node_raises(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        with pytest.raises(NodeNotFoundError):
            compact.node(999)
        with pytest.raises(NodeNotFoundError):
            compact.neighbor_items(999)
        with pytest.raises(NodeNotFoundError):
            compact.degree(999)

    def test_length_aggregates_match_dict_backend(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        assert compact.total_length() == pytest.approx(small_network.total_length())
        assert compact.min_edge_length() == small_network.min_edge_length()
        assert compact.max_edge_length() == small_network.max_edge_length()
        assert compact.bounding_box() == small_network.bounding_box()
        assert compact.euclidean(10, 30) == pytest.approx(small_network.euclidean(10, 30))

    def test_traversal_matches_dict_backend(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        assert compact.bfs_order(10) == small_network.bfs_order(10)
        assert sorted(map(sorted, compact.connected_components())) == sorted(
            map(sorted, small_network.connected_components())
        )
        assert compact.is_connected() == small_network.is_connected()


class TestWindowing:
    def test_window_view_equals_dict_induced_subgraph(self):
        network = random_geometric_network(num_nodes=300, extent=3000.0, seed=4)
        compact = CompactNetwork.from_network(network)
        rng = random.Random(17)
        for _ in range(10):
            cx, cy = rng.uniform(0, 3000), rng.uniform(0, 3000)
            side = rng.uniform(300, 1500)
            window = Rectangle.from_center(cx, cy, side, side)
            dict_sub = induced_subgraph(network, window)
            csr_sub = induced_subgraph(compact, window)
            assert isinstance(csr_sub, CompactNetwork)
            assert set(csr_sub.node_ids()) == set(dict_sub.node_ids())
            assert {(e.u, e.v, e.length) for e in csr_sub.edges()} == {
                (e.u, e.v, e.length) for e in dict_sub.edges()
            }
            assert set(nodes_in_rectangle(compact, window)) == set(
                nodes_in_rectangle(network, window)
            )

    def test_window_view_preserves_snapshot_order(self):
        network = grid_network(4, 4, spacing=1.0)
        compact = CompactNetwork.from_network(network)
        window = Rectangle(0.0, 0.0, 2.0, 2.0)
        view = compact.window_view(window)
        kept = [nid for nid in compact.node_ids() if nid in view]
        assert list(view.node_ids()) == kept

    def test_empty_window(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        view = compact.window_view(Rectangle(100.0, 100.0, 101.0, 101.0))
        assert view.num_nodes == 0
        assert view.num_edges == 0

    def test_subgraph_keeps_only_internal_edges(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        sub = compact.subgraph([10, 20, 30])
        assert set(sub.node_ids()) == {10, 20, 30}
        assert {(e.u, e.v) for e in sub.edges()} == {(10, 20), (20, 30), (10, 30)}

    def test_subgraph_unknown_node_raises(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        with pytest.raises(NodeNotFoundError):
            compact.subgraph([10, 999])

    def test_largest_component_on_compact(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        largest = largest_component_subgraph(compact)
        assert isinstance(largest, CompactNetwork)
        assert set(largest.node_ids()) == {10, 20, 30, 40}

    def test_nested_window_views(self):
        network = grid_network(6, 6, spacing=1.0)
        compact = CompactNetwork.from_network(network)
        outer = compact.window_view(Rectangle(0.0, 0.0, 4.0, 4.0))
        inner = outer.window_view(Rectangle(0.0, 0.0, 2.0, 2.0))
        direct = compact.window_view(Rectangle(0.0, 0.0, 2.0, 2.0))
        assert set(inner.node_ids()) == set(direct.node_ids())
        assert {(e.u, e.v, e.length) for e in inner.edges()} == {
            (e.u, e.v, e.length) for e in direct.edges()
        }


class TestSnapshotSemantics:
    def test_pickle_round_trip(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        clone = pickle.loads(pickle.dumps(compact))
        assert list(clone.node_ids()) == list(compact.node_ids())
        assert {(e.u, e.v, e.length) for e in clone.edges()} == {
            (e.u, e.v, e.length) for e in compact.edges()
        }
        assert list(clone.neighbor_items(10)) == list(compact.neighbor_items(10))

    def test_snapshot_is_decoupled_from_later_mutation(self, small_network):
        compact = CompactNetwork.from_network(small_network)
        small_network.add_node(60, 1.0, 1.0)
        small_network.add_edge(60, 10, 1.0)
        small_network.remove_edge(10, 30)
        assert 60 not in compact
        assert compact.has_edge(10, 30)
        assert compact.num_edges == 5

    def test_iteration_order_replicates_source(self):
        # Snapshot rows and per-row neighbour order must equal the source
        # network's iteration order — this is what makes traversal tie-breaking
        # backend-independent.
        network = RoadNetwork()
        for node_id in (5, 3, 9, 1):  # deliberately not sorted
            network.add_node(node_id, float(node_id), 0.0)
        network.add_edge(5, 9, 1.0)
        network.add_edge(5, 3, 1.0)
        network.add_edge(5, 1, 1.0)
        compact = CompactNetwork.from_network(network)
        assert list(compact.node_ids()) == [5, 3, 9, 1]
        assert [v for v, _ in compact.neighbor_items(5)] == [9, 3, 1]
