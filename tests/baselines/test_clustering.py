"""Tests for the query-independent clustering strawman (paper Section 2, Figure 3)."""

from __future__ import annotations

import pytest

from repro.baselines.clustering import SpatialTextualClustering
from repro.exceptions import SolverError
from repro.objects.corpus import ObjectCorpus
from repro.objects.geoobject import GeoTextualObject

from tests.conftest import make_small_corpus


def two_cluster_corpus() -> ObjectCorpus:
    """Two clearly separated spatial groups with different vocabularies."""
    corpus = ObjectCorpus()
    for i in range(6):
        corpus.add(GeoTextualObject.create(i, float(i), float(i % 2), ["cafe", "coffee"]))
    for i in range(6, 12):
        corpus.add(GeoTextualObject.create(i, 1000.0 + i, float(i % 2), ["museum", "art"]))
    return corpus


class TestValidation:
    def test_invalid_parameters(self):
        corpus = make_small_corpus()
        with pytest.raises(SolverError):
            SpatialTextualClustering(corpus, num_clusters=0)
        with pytest.raises(SolverError):
            SpatialTextualClustering(corpus, text_weight=1.5)
        with pytest.raises(SolverError):
            SpatialTextualClustering(ObjectCorpus())


class TestClustering:
    def test_every_object_assigned_exactly_once(self):
        corpus = make_small_corpus()
        clustering = SpatialTextualClustering(corpus, num_clusters=3, seed=1)
        assigned = [oid for cluster in clustering.clusters for oid in cluster.object_ids]
        assert sorted(assigned) == sorted(corpus.object_ids())

    def test_k_capped_at_corpus_size(self):
        corpus = make_small_corpus()
        clustering = SpatialTextualClustering(corpus, num_clusters=100, seed=1)
        assert len(clustering.clusters) <= len(corpus)

    def test_separated_groups_split(self):
        clustering = SpatialTextualClustering(two_cluster_corpus(), num_clusters=2, seed=1)
        cluster_sets = [set(c.object_ids) for c in clustering.clusters if c.object_ids]
        assert set(range(6)) in cluster_sets
        assert set(range(6, 12)) in cluster_sets

    def test_best_cluster_is_query_dependent_choice_only(self):
        """The clusters themselves never change with the query — only the pick does."""
        clustering = SpatialTextualClustering(two_cluster_corpus(), num_clusters=2, seed=1)
        cafe_cluster = clustering.best_cluster(["cafe"])
        museum_cluster = clustering.best_cluster(["museum"])
        assert set(cafe_cluster.object_ids) == set(range(6))
        assert set(museum_cluster.object_ids) == set(range(6, 12))

    def test_cluster_relevance_positive_for_matching_terms(self):
        clustering = SpatialTextualClustering(two_cluster_corpus(), num_clusters=2, seed=1)
        cluster = clustering.best_cluster(["cafe"])
        assert clustering.cluster_relevance(cluster, ["cafe"]) > 0
        assert clustering.cluster_relevance(cluster, ["museum"]) == 0.0

    def test_figure3_drawback_cluster_mixes_irrelevant_objects(self):
        """The chosen cluster drags along objects irrelevant to the query.

        That is the paper's first argument against pre-clustering: the cluster is built
        from mutual similarity, not from query relevance.
        """
        corpus = ObjectCorpus()
        # One spatial blob containing both relevant and irrelevant objects.
        for i in range(5):
            corpus.add(GeoTextualObject.create(i, float(i), 0.0, ["cafe"]))
        for i in range(5, 10):
            corpus.add(GeoTextualObject.create(i, float(i - 5), 1.0, ["pharmacy"]))
        clustering = SpatialTextualClustering(corpus, num_clusters=2, seed=2)
        best = clustering.best_cluster(["cafe"])
        irrelevant = [oid for oid in best.object_ids if "cafe" not in corpus.get(oid).terms]
        assert irrelevant, "the spatially built cluster should contain irrelevant objects"
