"""Tests for the MaxRS fixed-rectangle baseline."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.maxrs import MaxRSSolver
from repro.exceptions import SolverError
from repro.network.subgraph import Rectangle


def brute_force_maxrs(points, weights, width, height):
    """Reference: try every (right, top) corner pair of point coordinates."""
    best = 0.0
    ids = list(points)
    for right_id, top_id in itertools.product(ids, repeat=2):
        right = points[right_id][0]
        top = points[top_id][1]
        rect = Rectangle(right - width, top - height, right, top)
        total = sum(
            weights.get(pid, 0.0)
            for pid, (x, y) in points.items()
            if weights.get(pid, 0.0) > 0 and rect.contains(x, y)
        )
        best = max(best, total)
    return best


class TestValidation:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(SolverError):
            MaxRSSolver(width=0.0)
        with pytest.raises(SolverError):
            MaxRSSolver(height=-1.0)


class TestSolve:
    def test_empty_input(self):
        result = MaxRSSolver(10, 10).solve({}, {})
        assert result.rectangle is None
        assert result.weight == 0.0
        assert result.covered_ids == ()

    def test_single_point(self):
        result = MaxRSSolver(10, 10).solve({1: (5.0, 5.0)}, {1: 2.0})
        assert result.weight == 2.0
        assert result.covered_ids == (1,)
        assert result.rectangle.contains(5.0, 5.0)

    def test_cluster_beats_isolated_heavy_point(self):
        points = {1: (0, 0), 2: (1, 1), 3: (2, 0), 4: (100, 100)}
        weights = {1: 1.0, 2: 1.0, 3: 1.0, 4: 2.5}
        result = MaxRSSolver(5, 5).solve(points, weights)
        assert result.weight == pytest.approx(3.0)
        assert set(result.covered_ids) == {1, 2, 3}

    def test_window_restriction(self):
        points = {1: (0, 0), 2: (100, 100)}
        weights = {1: 1.0, 2: 5.0}
        window = Rectangle(-10, -10, 10, 10)
        result = MaxRSSolver(5, 5).solve(points, weights, window=window)
        assert set(result.covered_ids) == {1}

    def test_non_positive_weights_ignored(self):
        points = {1: (0, 0), 2: (1, 0)}
        weights = {1: 0.0, 2: -1.0}
        result = MaxRSSolver(5, 5).solve(points, weights)
        assert result.weight == 0.0
        assert result.rectangle is None

    def test_rectangle_size_matters(self):
        # Two clusters 100 apart; a small rectangle covers one, a huge one covers both.
        points = {i: (float(i), 0.0) for i in range(3)}
        points.update({10 + i: (100.0 + i, 0.0) for i in range(3)})
        weights = {pid: 1.0 for pid in points}
        small = MaxRSSolver(5, 5).solve(points, weights)
        big = MaxRSSolver(200, 5).solve(points, weights)
        assert small.weight == pytest.approx(3.0)
        assert big.weight == pytest.approx(6.0)

    @settings(max_examples=30, deadline=None)
    @given(
        raw_points=st.lists(
            st.tuples(st.floats(0, 50), st.floats(0, 50), st.floats(0.1, 3.0)),
            min_size=1,
            max_size=25,
        ),
        width=st.floats(1.0, 30.0),
        height=st.floats(1.0, 30.0),
    )
    def test_matches_brute_force(self, raw_points, width, height):
        points = {i: (x, y) for i, (x, y, _) in enumerate(raw_points)}
        weights = {i: w for i, (_, _, w) in enumerate(raw_points)}
        solver = MaxRSSolver(width, height)
        result = solver.solve(points, weights)
        expected = brute_force_maxrs(points, weights, width, height)
        assert result.weight == pytest.approx(expected, rel=1e-9)
